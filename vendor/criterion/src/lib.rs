//! Offline, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! Supports the API subset the `pm-bench` benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the group tuning knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`).
//!
//! Measurement model: each benchmark is warmed up for `warm_up_time`, then
//! timed for `sample_size` samples (each sample sized so one sample takes
//! roughly `measurement_time / sample_size`); the median, min and max
//! per-iteration times are printed. When the harness is invoked with
//! `--test` (the CI bench-smoke mode), every benchmark body runs exactly
//! once so the job only checks that the benches still execute.

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(parameter)`.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Benchmark names may be plain strings or `BenchmarkId`s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures (mirrors
/// `criterion::Bencher`).
pub struct Bencher<'a> {
    mode: &'a Mode,
    /// Filled by `iter`: per-iteration wall-clock samples in seconds.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its return value alive via `black_box` so
    /// the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.samples.push(0.0);
            }
            Mode::Measure {
                sample_size,
                measurement_time,
                warm_up_time,
            } => {
                // Warm-up: run until the warm-up budget elapses, measuring
                // a rough per-iteration cost on the way.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < *warm_up_time || warm_iters == 0 {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
                let budget = measurement_time.as_secs_f64() / *sample_size as f64;
                let iters_per_sample = (budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;
                for _ in 0..*sample_size {
                    let t = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    self.samples
                        .push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
                }
            }
        }
    }
}

enum Mode {
    /// `--test`: run every body once, no timing (CI smoke mode).
    Test,
    Measure {
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
    },
}

/// The harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // Cargo passes `--bench`; criterion's own quick mode is `--test`.
        // Any other non-flag argument is a substring filter, as upstream.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Upstream-compatible no-op: argument handling happens in `default()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks `routine` under `id` with default group settings.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = id.into_benchmark_id();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &self,
        full_name: &str,
        settings: (usize, Duration, Duration),
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mode = if self.test_mode {
            Mode::Test
        } else {
            Mode::Measure {
                sample_size: settings.0,
                measurement_time: settings.1,
                warm_up_time: settings.2,
            }
        };
        let mut bencher = Bencher {
            mode: &mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{full_name}: ok (test mode)");
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{full_name}: no samples (b.iter never called)");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{full_name}: median {} (min {}, max {}, {} samples)",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
            samples.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A group of benchmarks sharing tuning knobs (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    fn full_name(&self, id: &str) -> String {
        if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        }
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = self.full_name(&id.into_benchmark_id());
        let settings = (self.sample_size, self.measurement_time, self.warm_up_time);
        self.criterion.run_one(&full, settings, f);
        self
    }

    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher<'_>, &In),
    {
        let full = self.full_name(&id.into_benchmark_id());
        let settings = (self.sample_size, self.measurement_time, self.warm_up_time);
        self.criterion.run_one(&full, settings, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running each target (mirrors criterion's
/// macro of the same name).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running each group (mirrors criterion's macro
/// of the same name).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn bencher_runs_routine_in_test_mode() {
        let mode = Mode::Test;
        let mut b = Bencher {
            mode: &mode,
            samples: Vec::new(),
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn bencher_collects_samples_in_measure_mode() {
        let mode = Mode::Measure {
            sample_size: 5,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
        };
        let mut b = Bencher {
            mode: &mode,
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.pow(7)));
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }
}
