//! Offline, dependency-free stand-in for the `rayon` data-parallelism API
//! subset used by `pm-bench`: `into_par_iter()` / `par_iter()` followed by
//! `map(..)` and `collect::<Vec<_>>()`, plus `current_num_threads()`.
//!
//! Implementation: the items are materialized into a `Vec`, and a shared
//! atomic index distributes them over `std::thread::scope` workers (one per
//! available core, capped by the item count). Results are written back into
//! their original slots, so ordering semantics match rayon's indexed
//! collect. This is a coarse-grained fork-join — exactly the granularity of
//! the Figure 11 sweep, where each work item is an LP-heavy report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call will use for `n` items.
fn threads_for(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .max(1)
}

/// Mirrors `rayon::current_num_threads` (the pool size a fresh parallel
/// call would get for an unbounded workload).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Conversion into a parallel iterator (mirrors
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Borrowing conversion (mirrors `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Registers the mapping stage; execution happens in `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map stage on scoped worker threads and collects the results
    /// in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromParallel<R>,
    {
        let ParMap { items, f } = self;
        let n = items.len();
        let threads = threads_for(n);
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        if threads <= 1 {
            for (slot, item) in results.iter_mut().zip(items) {
                *slot = Some(f(item));
            }
        } else {
            // A locked pool of pending items plus a locked result store: the
            // work items of this workspace (one LP-heavy sweep report each)
            // are far coarser than the lock overhead.
            let pool: Vec<Mutex<Option<T>>> =
                items.into_iter().map(|it| Mutex::new(Some(it))).collect();
            let next = AtomicUsize::new(0);
            let done = Mutex::new(Vec::with_capacity(n));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= pool.len() {
                            break;
                        }
                        let item = pool[i]
                            .lock()
                            .expect("work slot poisoned")
                            .take()
                            .expect("work slot claimed twice");
                        let r = f(item);
                        done.lock().expect("result store poisoned").push((i, r));
                    });
                }
            });
            for (i, r) in done.into_inner().expect("result store poisoned") {
                results[i] = Some(r);
            }
        }
        C::from_ordered(
            results
                .into_iter()
                .map(|r| r.expect("worker filled every slot")),
        )
    }
}

/// Ordered collection target (mirrors rayon's `FromParallelIterator` for the
/// containers the workspace collects into).
pub trait FromParallel<R> {
    fn from_ordered<I: Iterator<Item = R>>(iter: I) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_ordered<I: Iterator<Item = R>>(iter: I) -> Self {
        iter.collect()
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..64).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[9], 1);
        assert_eq!(lens[10], 2);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
