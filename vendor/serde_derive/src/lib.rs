//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! manifests mirror the upstream sources, but no code path serializes
//! through serde (JSON/CSV emission in `pm-bench` is hand-rolled). These
//! derives therefore expand to nothing; swapping the real serde back in is
//! a one-line change in the workspace manifest.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
