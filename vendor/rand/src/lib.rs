//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The container that builds this workspace has no network access and an
//! empty registry cache, so the real `rand` cannot be fetched. This crate
//! reimplements exactly the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` and
//! `seq::SliceRandom::{choose, shuffle}` — on top of a SplitMix64-seeded
//! xoshiro256** generator.
//!
//! Determinism notice: streams differ from the real `rand` crate, but are
//! stable across runs and platforms, which is what the reproducibility
//! story of the benchmarks depends on.

/// Core random-generator abstraction: a source of `u64` words plus the
/// derived sampling helpers used throughout the workspace.
pub trait RngCore {
    /// Returns the next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit word of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers on top of [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, as in `rand`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.sample_f64() < p
    }

    /// Samples a value of type `T`; implemented for the primitives the
    /// workspace draws without an explicit range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn sample_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable without an explicit range (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (`rand::distributions::uniform`
/// collapsed to the cases the workspace needs).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // u64 domain which no caller of this workspace requests.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if end < <$t>::MAX {
                    (start..end + 1).sample_single(rng)
                } else if start > <$t>::MIN {
                    (start - 1..end).sample_single(rng).wrapping_add(1)
                } else {
                    // Full domain.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the exclusive endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with SplitMix64 as the
    /// real `rand` does for small seeds.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::SeedableRng;

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic and portable.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; nudge it.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Returns a uniformly chosen reference, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// `rand::prelude` equivalent for glob imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..4.0);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((35_000..45_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
    }
}
