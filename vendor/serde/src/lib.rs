//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the sibling
//! `serde_derive` stub. The trait items below exist only so that generic
//! bounds would still name-resolve; nothing in the workspace serializes
//! through serde (see `pm-bench`'s hand-rolled JSON/CSV writers).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// does not implement it).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods; the no-op
/// derive does not implement it).
pub trait DeserializeMarker {}
