//! Offline, dependency-free stand-in for the `proptest` property-testing
//! framework, covering the subset this workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * range strategies (`1usize..6`, `0u64..1_000_000`, `1.0f64..10.0`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] soft assertions.
//!
//! Differences from upstream: cases are generated from a fixed seed (so
//! every run explores the same inputs — CI-friendly) and failing cases are
//! reported with their concrete arguments but not shrunk.

pub use rand;

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields we honour).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A soft failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A value generator (upstream's `Strategy`, collapsed to direct
    /// sampling — no shrinking).
    pub trait Strategy {
        type Value: std::fmt::Debug + Clone;
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

    /// `prop_oneof`-style choice over a fixed value list (upstream's
    /// `sample::select`).
    pub struct Select<T: std::fmt::Debug + Clone>(pub Vec<T>);

    impl<T: std::fmt::Debug + Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            assert!(!self.0.is_empty(), "select from empty list");
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Everything the `use proptest::prelude::*;` glob is expected to bring in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular `#[test]` that samples `cases` inputs from a fixed
/// seed and runs the body on each.
#[macro_export]
macro_rules! proptest {
    // NOTE: the `@cfg` worker arm must come first — the final arm is a
    // token-tree catch-all and would match `@cfg ...` recursively.
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::rand::SeedableRng as _;
                let config: $crate::test_runner::Config = $config;
                // Fixed seed derived from the property name: deterministic
                // across runs, distinct across properties.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
                }
                let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(&$strategy, &mut rng);
                    )+
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "property {} failed at case {}/{} with inputs {:?}:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            ($(&$arg),+ ,),
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Soft assertion inside a `proptest!` body: reports the failing inputs
/// instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError {
                message: format!($($fmt)+),
            });
        }
    };
}

/// Soft equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Soft inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 1usize..6, b in 0u64..1_000, x in 1.0f64..10.0) {
            prop_assert!((1..6).contains(&a));
            prop_assert!(b < 1_000);
            prop_assert!((1.0..10.0).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u32..100) {
            prop_assert!(v < 100);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_reports_inputs() {
        proptest! {
            @cfg (ProptestConfig::with_cases(4))
            fn inner(v in 0u32..10) {
                prop_assert!(v > 1_000, "v = {v} is never above 1000");
            }
        }
        inner();
    }
}
