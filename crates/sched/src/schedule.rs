//! Explicit periodic schedules for the series of multicasts.
//!
//! A periodic schedule describes what every node does during one period of
//! the steady state. It is built from a [`WeightedTreeSet`] (or, more
//! generally, from any list of per-edge communication durations) through the
//! weighted edge coloring of [`crate::coloring`], and can be validated and
//! replayed by the `pm-sim` discrete-event simulator.

use crate::coloring::{schedule_tasks, CommTask};
use crate::load::OnePortLoads;
use crate::tree::WeightedTreeSet;
use pm_platform::graph::{NodeId, Platform};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Errors raised while building or validating a periodic schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The requested communications cannot fit in the requested period (their
    /// maximum port load exceeds it).
    PeriodTooShort {
        /// The requested period.
        period: f64,
        /// The minimum feasible period (maximum port load).
        required: f64,
    },
    /// A slot violates the one-port constraint.
    OnePortViolation {
        /// Index of the offending slot.
        slot: usize,
        /// The node sending or receiving more than one message in the slot.
        node: NodeId,
    },
    /// The slots overflow the period.
    SlotsExceedPeriod,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::PeriodTooShort { period, required } => {
                write!(f, "period {period} is shorter than the required {required}")
            }
            ScheduleError::OnePortViolation { slot, node } => {
                write!(f, "one-port violation in slot {slot} at node {node}")
            }
            ScheduleError::SlotsExceedPeriod => write!(f, "slots overflow the period"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One communication carried out during a slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Time spent on this transfer within the slot.
    pub duration: f64,
    /// Index of the multicast tree (or flow) this transfer belongs to.
    pub tree: usize,
}

/// A slot of the periodic schedule: all its transfers run in parallel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSlot {
    /// Offset of the slot from the start of the period.
    pub offset: f64,
    /// Length of the slot (every transfer inside lasts at most this long).
    pub duration: f64,
    /// The parallel transfers of the slot.
    pub transfers: Vec<Transfer>,
}

/// A periodic schedule: during each period of length `period`, the listed
/// slots are executed in order; `multicasts_per_period` messages are fully
/// multicast per period in steady state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicSchedule {
    /// Length of one period.
    pub period: f64,
    /// Number of multicasts completed per period in steady state.
    pub multicasts_per_period: f64,
    /// The slots of one period, sorted by offset.
    pub slots: Vec<ScheduleSlot>,
}

impl PeriodicSchedule {
    /// Builds the schedule realizing one period of a weighted tree set.
    ///
    /// During a period of length `period`, tree `k` carries
    /// `weight_k * period` messages, occupying each of its edges `(u, v)` for
    /// `weight_k * period * c(u, v)` time-units. The weighted edge coloring
    /// packs all those occupations into `period` time-units; this fails with
    /// [`ScheduleError::PeriodTooShort`] if the tree set is infeasible.
    pub fn from_weighted_trees(
        platform: &Platform,
        trees: &WeightedTreeSet,
        period: f64,
    ) -> Result<Self, ScheduleError> {
        let mut tasks = Vec::new();
        for (k, (tree, &w)) in trees.trees().iter().zip(trees.weights()).enumerate() {
            if w <= 0.0 {
                continue;
            }
            for &e in tree.edges() {
                let edge = platform.edge(e);
                tasks.push(CommTask {
                    src: edge.src,
                    dst: edge.dst,
                    duration: w * period * edge.cost,
                    tag: k,
                });
            }
        }
        Self::from_comm_tasks(platform, &tasks, period, trees.throughput() * period)
    }

    /// Builds a schedule from raw communication tasks. `multicasts` is the
    /// number of multicasts completed per period (only used for reporting the
    /// throughput of the schedule).
    pub fn from_comm_tasks(
        platform: &Platform,
        tasks: &[CommTask],
        period: f64,
        multicasts: f64,
    ) -> Result<Self, ScheduleError> {
        let mut loads = OnePortLoads::new(platform.node_count());
        for t in tasks {
            loads.add_transfer(t.src, t.dst, t.duration);
        }
        let required = loads.max_load();
        if required > period * (1.0 + 1e-9) + 1e-9 {
            return Err(ScheduleError::PeriodTooShort { period, required });
        }
        let colored = schedule_tasks(platform.node_count(), tasks);
        if colored.makespan > period * (1.0 + 1e-6) + 1e-6 {
            return Err(ScheduleError::PeriodTooShort {
                period,
                required: colored.makespan,
            });
        }
        let mut slots = Vec::with_capacity(colored.slots.len());
        let mut offset = 0.0;
        for slot in &colored.slots {
            let transfers = slot
                .assignments
                .iter()
                .map(|&(task_idx, used)| Transfer {
                    src: tasks[task_idx].src,
                    dst: tasks[task_idx].dst,
                    duration: used,
                    tree: tasks[task_idx].tag,
                })
                .collect();
            slots.push(ScheduleSlot {
                offset,
                duration: slot.duration,
                transfers,
            });
            offset += slot.duration;
        }
        Ok(PeriodicSchedule {
            period,
            multicasts_per_period: multicasts,
            slots,
        })
    }

    /// Builds one *super-period* schedule interleaving several weighted tree
    /// sets — one per commodity of a multi-commodity workload — and returns
    /// the half-open range of transfer tags each group occupies.
    ///
    /// During a super-period of length `period`, tree `k` of group `c`
    /// carries `weight * period` messages of commodity `c`; all groups'
    /// occupations share the same weighted König coloring, so the one-port
    /// capacity of every node is split across commodities exactly as the
    /// joint packing prescribed. Tags are global: group `c`'s trees occupy
    /// the contiguous tag range returned at index `c` (zero-weight trees
    /// still consume a tag, keeping tag minus range-start a stable index
    /// into the group's tree set). The reported `multicasts_per_period` is
    /// the sum of all groups' throughput shares.
    pub fn from_weighted_tree_groups(
        platform: &Platform,
        groups: &[&WeightedTreeSet],
        period: f64,
    ) -> Result<(Self, Vec<(usize, usize)>), ScheduleError> {
        let mut tasks = Vec::new();
        let mut ranges = Vec::with_capacity(groups.len());
        let mut next_tag = 0usize;
        let mut multicasts = 0.0;
        for trees in groups {
            let start = next_tag;
            for (tree, &w) in trees.trees().iter().zip(trees.weights()) {
                let tag = next_tag;
                next_tag += 1;
                if w <= 0.0 {
                    continue;
                }
                for &e in tree.edges() {
                    let edge = platform.edge(e);
                    tasks.push(CommTask {
                        src: edge.src,
                        dst: edge.dst,
                        duration: w * period * edge.cost,
                        tag,
                    });
                }
            }
            multicasts += trees.throughput() * period;
            ranges.push((start, next_tag));
        }
        let schedule = Self::from_comm_tasks(platform, &tasks, period, multicasts)?;
        Ok((schedule, ranges))
    }

    /// The sub-schedule carrying only the transfers whose tree tag falls in
    /// the half-open range `tags`, re-labelled as completing `multicasts`
    /// messages per period.
    ///
    /// Slot offsets and durations are preserved (empty slots are dropped),
    /// so the sub-schedule replays each surviving transfer at the exact
    /// instant it runs inside the parent super-period — this is how a
    /// multi-commodity realization verifies every commodity's own rate
    /// against its own target set without re-coloring anything.
    pub fn restricted_to_tags(
        &self,
        tags: std::ops::Range<usize>,
        multicasts: f64,
    ) -> PeriodicSchedule {
        let slots = self
            .slots
            .iter()
            .filter_map(|slot| {
                let transfers: Vec<Transfer> = slot
                    .transfers
                    .iter()
                    .filter(|t| tags.contains(&t.tree))
                    .cloned()
                    .collect();
                (!transfers.is_empty()).then_some(ScheduleSlot {
                    offset: slot.offset,
                    duration: slot.duration,
                    transfers,
                })
            })
            .collect();
        PeriodicSchedule {
            period: self.period,
            multicasts_per_period: multicasts,
            slots,
        }
    }

    /// The steady-state throughput of the schedule (multicasts per time-unit).
    pub fn throughput(&self) -> f64 {
        self.multicasts_per_period / self.period
    }

    /// Total busy time of the schedule (sum of slot durations).
    pub fn busy_time(&self) -> f64 {
        self.slots.iter().map(|s| s.duration).sum()
    }

    /// Checks the structural invariants of the schedule:
    /// * slots fit within the period,
    /// * within every slot, every node sends to at most one neighbour and
    ///   receives from at most one neighbour (one-port model),
    /// * transfer durations never exceed their slot duration.
    pub fn validate(&self, platform: &Platform) -> Result<(), ScheduleError> {
        let tol = 1e-6;
        if self.busy_time() > self.period * (1.0 + tol) + tol {
            return Err(ScheduleError::SlotsExceedPeriod);
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let mut senders: HashSet<NodeId> = HashSet::new();
            let mut receivers: HashSet<NodeId> = HashSet::new();
            for t in &slot.transfers {
                if t.duration > slot.duration * (1.0 + tol) + tol {
                    return Err(ScheduleError::SlotsExceedPeriod);
                }
                if !senders.insert(t.src) {
                    return Err(ScheduleError::OnePortViolation {
                        slot: i,
                        node: t.src,
                    });
                }
                if !receivers.insert(t.dst) {
                    return Err(ScheduleError::OnePortViolation {
                        slot: i,
                        node: t.dst,
                    });
                }
                let _ = platform; // transfers need not follow platform edges in tests
            }
        }
        Ok(())
    }

    /// Per-node port occupation over one period.
    pub fn loads(&self, num_nodes: usize) -> OnePortLoads {
        let mut loads = OnePortLoads::new(num_nodes);
        for slot in &self.slots {
            for t in &slot.transfers {
                loads.add_transfer(t.src, t.dst, t.duration);
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MulticastTree;
    use pm_platform::graph::PlatformBuilder;
    use pm_platform::instances::{figure1_instance, MulticastInstance};

    fn diamond_instance() -> MulticastInstance {
        let mut b = PlatformBuilder::new();
        let s = b.add_named_node("s");
        let a = b.add_named_node("a");
        let bb = b.add_named_node("b");
        let t = b.add_named_node("t");
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(s, bb, 1.0).unwrap();
        b.add_edge(a, t, 0.5).unwrap();
        b.add_edge(bb, t, 0.5).unwrap();
        let platform = b.build().unwrap();
        MulticastInstance::new(platform, s, vec![t]).unwrap()
    }

    fn two_tree_set(inst: &MulticastInstance) -> WeightedTreeSet {
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let t1 = MulticastTree::new(inst, vec![e(0, 1), e(1, 3)]).unwrap();
        let t2 = MulticastTree::new(inst, vec![e(0, 2), e(2, 3)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(t1, 0.5).unwrap();
        set.push(t2, 0.5).unwrap();
        set
    }

    #[test]
    fn schedule_from_weighted_trees_is_valid() {
        let inst = diamond_instance();
        let set = two_tree_set(&inst);
        let sched = PeriodicSchedule::from_weighted_trees(&inst.platform, &set, 1.0).unwrap();
        assert!((sched.throughput() - 1.0).abs() < 1e-9);
        sched.validate(&inst.platform).unwrap();
        // Source send load over a period is 1 (saturated), target receive 0.5.
        let loads = sched.loads(inst.platform.node_count());
        assert!((loads.send(NodeId(0)) - 1.0).abs() < 1e-9);
        assert!((loads.recv(NodeId(3)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn infeasible_tree_set_is_rejected() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e(0, 1), e(1, 3)]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(t1, 2.0).unwrap(); // source send load would be 2 > 1
        let err = PeriodicSchedule::from_weighted_trees(g, &set, 1.0).unwrap_err();
        assert!(matches!(err, ScheduleError::PeriodTooShort { .. }));
    }

    #[test]
    fn figure1_optimal_solution_is_schedulable_at_period_one() {
        let inst = figure1_instance();
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        let tree_a = MulticastTree::new(
            &inst,
            vec![
                e(0, 1),
                e(0, 3),
                e(3, 4),
                e(4, 5),
                e(5, 6),
                e(6, 7),
                e(7, 8),
                e(7, 9),
                e(7, 10),
                e(1, 11),
                e(11, 12),
                e(11, 13),
            ],
        )
        .unwrap();
        let tree_b = MulticastTree::new(
            &inst,
            vec![
                e(0, 3),
                e(3, 2),
                e(2, 1),
                e(2, 6),
                e(6, 7),
                e(7, 8),
                e(7, 9),
                e(7, 10),
                e(1, 11),
                e(11, 12),
                e(11, 13),
            ],
        )
        .unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree_a, 0.5).unwrap();
        set.push(tree_b, 0.5).unwrap();
        let sched = PeriodicSchedule::from_weighted_trees(g, &set, 1.0).unwrap();
        sched.validate(g).unwrap();
        assert!((sched.throughput() - 1.0).abs() < 1e-9);
        // The busy time cannot exceed one period, and the bottleneck ports
        // (e.g. the source) are saturated.
        assert!(sched.busy_time() <= 1.0 + 1e-6);
        let loads = sched.loads(g.node_count());
        assert!((loads.send(NodeId(0)) - 1.0).abs() < 1e-6);
        assert!((loads.recv(NodeId(7)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tree_groups_interleave_into_one_valid_super_period() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e = |a: u32, b: u32| g.find_edge(NodeId(a), NodeId(b)).unwrap();
        // Commodity 0: both diamond paths at rate 0.25 each; commodity 1:
        // a single path at rate 0.5. Total source send load = 1.0.
        let t1 = MulticastTree::new(&inst, vec![e(0, 1), e(1, 3)]).unwrap();
        let t2 = MulticastTree::new(&inst, vec![e(0, 2), e(2, 3)]).unwrap();
        let mut c0 = WeightedTreeSet::new();
        c0.push(t1.clone(), 0.25).unwrap();
        c0.push(t2.clone(), 0.25).unwrap();
        let mut c1 = WeightedTreeSet::new();
        c1.push(t2, 0.5).unwrap();
        let (sched, ranges) =
            PeriodicSchedule::from_weighted_tree_groups(g, &[&c0, &c1], 2.0).unwrap();
        sched.validate(g).unwrap();
        assert_eq!(ranges, vec![(0, 2), (2, 3)]);
        // 0.5 + 0.5 messages per unit time over a super-period of 2.
        assert!((sched.multicasts_per_period - 2.0).abs() < 1e-9);
        // The tag-restricted sub-schedules carry exactly their group's
        // transfers at the parent's offsets, and their loads sum back to
        // the parent's.
        let sub0 = sched.restricted_to_tags(0..2, 1.0);
        let sub1 = sched.restricted_to_tags(2..3, 1.0);
        assert!((sub0.throughput() - 0.5).abs() < 1e-9);
        let n = g.node_count();
        let (all, l0, l1) = (sched.loads(n), sub0.loads(n), sub1.loads(n));
        for v in (0..n as u32).map(NodeId) {
            assert!((l0.send(v) + l1.send(v) - all.send(v)).abs() < 1e-9);
            assert!((l0.recv(v) + l1.recv(v) - all.recv(v)).abs() < 1e-9);
        }
        for slot in sub1.slots {
            assert!(slot.transfers.iter().all(|t| t.tree == 2));
            let parent = sched
                .slots
                .iter()
                .find(|s| (s.offset - slot.offset).abs() < 1e-12)
                .expect("sub-schedule slots keep parent offsets");
            assert_eq!(parent.duration, slot.duration);
        }
    }

    #[test]
    fn validate_catches_one_port_violations() {
        let inst = diamond_instance();
        let bad = PeriodicSchedule {
            period: 1.0,
            multicasts_per_period: 1.0,
            slots: vec![ScheduleSlot {
                offset: 0.0,
                duration: 0.5,
                transfers: vec![
                    Transfer {
                        src: NodeId(0),
                        dst: NodeId(1),
                        duration: 0.5,
                        tree: 0,
                    },
                    Transfer {
                        src: NodeId(0),
                        dst: NodeId(2),
                        duration: 0.5,
                        tree: 1,
                    },
                ],
            }],
        };
        assert!(matches!(
            bad.validate(&inst.platform),
            Err(ScheduleError::OnePortViolation {
                node: NodeId(0),
                ..
            })
        ));
    }

    #[test]
    fn validate_catches_period_overflow() {
        let inst = diamond_instance();
        let bad = PeriodicSchedule {
            period: 0.5,
            multicasts_per_period: 1.0,
            slots: vec![
                ScheduleSlot {
                    offset: 0.0,
                    duration: 0.4,
                    transfers: vec![Transfer {
                        src: NodeId(0),
                        dst: NodeId(1),
                        duration: 0.4,
                        tree: 0,
                    }],
                },
                ScheduleSlot {
                    offset: 0.4,
                    duration: 0.4,
                    transfers: vec![Transfer {
                        src: NodeId(0),
                        dst: NodeId(2),
                        duration: 0.4,
                        tree: 0,
                    }],
                },
            ],
        };
        assert_eq!(
            bad.validate(&inst.platform),
            Err(ScheduleError::SlotsExceedPeriod)
        );
    }
}
