//! One-port port-occupation accounting.
//!
//! Under the one-port model, a node can be busy sending to at most one
//! neighbour and receiving from at most one neighbour at any instant. Over a
//! period of one time-unit, the total time a node spends sending (resp.
//! receiving) therefore cannot exceed 1. This module accumulates those
//! occupations from per-edge message rates.

use pm_platform::graph::{NodeId, Platform};
use serde::{Deserialize, Serialize};

/// Per-node send-port and receive-port occupation (in time-units per
/// time-unit of steady state, i.e. a value of 1 means the port is saturated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnePortLoads {
    send: Vec<f64>,
    recv: Vec<f64>,
}

impl OnePortLoads {
    /// Creates zero loads for a platform with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        OnePortLoads {
            send: vec![0.0; num_nodes],
            recv: vec![0.0; num_nodes],
        }
    }

    /// Accumulates loads from per-edge message rates: `rate[e]` messages per
    /// time-unit on edge `e` occupy the sender and receiver ports for
    /// `rate[e] * cost(e)` each.
    pub fn from_edge_rates(platform: &Platform, rates: &[f64]) -> Self {
        assert_eq!(rates.len(), platform.edge_count(), "one rate per edge");
        let mut loads = OnePortLoads::new(platform.node_count());
        for (id, edge) in platform.edges() {
            let occupation = rates[id.index()] * edge.cost;
            loads.send[edge.src.index()] += occupation;
            loads.recv[edge.dst.index()] += occupation;
        }
        loads
    }

    /// Adds `occupation` time-units of sending at `src` and receiving at `dst`.
    pub fn add_transfer(&mut self, src: NodeId, dst: NodeId, occupation: f64) {
        self.send[src.index()] += occupation;
        self.recv[dst.index()] += occupation;
    }

    /// Send-port occupation of a node.
    pub fn send(&self, node: NodeId) -> f64 {
        self.send[node.index()]
    }

    /// Receive-port occupation of a node.
    pub fn recv(&self, node: NodeId) -> f64 {
        self.recv[node.index()]
    }

    /// The largest port occupation over all nodes and both port kinds.
    ///
    /// For a set of communications to be schedulable within `T` time-units,
    /// `max_load() <= T` is necessary; the weighted König edge-coloring shows
    /// it is also sufficient (see [`crate::coloring`]).
    pub fn max_load(&self) -> f64 {
        let s = self.send.iter().copied().fold(0.0, f64::max);
        let r = self.recv.iter().copied().fold(0.0, f64::max);
        s.max(r)
    }

    /// Whether all port occupations are at most `budget` (+ `tol`).
    pub fn fits_within(&self, budget: f64, tol: f64) -> bool {
        self.max_load() <= budget + tol
    }

    /// Returns a copy with every occupation multiplied by `factor` (e.g. to
    /// turn absolute busy times into utilizations).
    pub fn scaled(&self, factor: f64) -> OnePortLoads {
        OnePortLoads {
            send: self.send.iter().map(|v| v * factor).collect(),
            recv: self.recv.iter().map(|v| v * factor).collect(),
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.send.len()
    }

    /// Whether the structure tracks zero nodes.
    pub fn is_empty(&self) -> bool {
        self.send.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::graph::PlatformBuilder;

    fn path3() -> Platform {
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(3);
        b.add_edge(v[0], v[1], 2.0).unwrap();
        b.add_edge(v[1], v[2], 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn accumulates_from_edge_rates() {
        let g = path3();
        let loads = OnePortLoads::from_edge_rates(&g, &[0.25, 1.0]);
        assert_eq!(loads.send(NodeId(0)), 0.5);
        assert_eq!(loads.recv(NodeId(1)), 0.5);
        assert_eq!(loads.send(NodeId(1)), 0.5);
        assert_eq!(loads.recv(NodeId(2)), 0.5);
        assert_eq!(loads.max_load(), 0.5);
        assert!(loads.fits_within(0.5, 1e-12));
        assert!(!loads.fits_within(0.4, 1e-12));
    }

    #[test]
    fn add_transfer_accumulates_both_ports() {
        let mut loads = OnePortLoads::new(3);
        loads.add_transfer(NodeId(0), NodeId(1), 0.3);
        loads.add_transfer(NodeId(0), NodeId(2), 0.4);
        loads.add_transfer(NodeId(2), NodeId(1), 0.5);
        assert_eq!(loads.send(NodeId(0)), 0.7);
        assert_eq!(loads.recv(NodeId(1)), 0.8);
        assert_eq!(loads.send(NodeId(2)), 0.5);
        assert_eq!(loads.max_load(), 0.8);
    }

    #[test]
    #[should_panic(expected = "one rate per edge")]
    fn rejects_wrong_rate_arity() {
        let g = path3();
        let _ = OnePortLoads::from_edge_rates(&g, &[1.0]);
    }
}
