//! Multicast trees and weighted combinations of trees.
//!
//! A *multicast tree* is a tree rooted at the source, built from platform
//! edges, that spans every target (Section 3 of the paper). Used alone for a
//! series of multicasts at rate `ρ`, it occupies the send port of each node
//! `Pi` for `ρ · Σ_{(i,j) ∈ tree} c_{i,j}` per time-unit and its receive port
//! for `ρ · c_{parent(i), i}`; the best sustainable rate is therefore the
//! inverse of the largest such occupation for `ρ = 1`, which is what
//! [`MulticastTree::period`] computes.
//!
//! The paper's key observation (Section 3) is that a *weighted combination*
//! of trees — [`WeightedTreeSet`] — can beat every single tree; Theorem 4
//! shows an optimal combination with at most `2|E|` trees always exists.

use crate::load::OnePortLoads;
use pm_platform::graph::{EdgeId, NodeId, Platform};
use pm_platform::instances::MulticastInstance;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Errors raised while validating a multicast tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// An edge id does not exist in the platform.
    UnknownEdge(EdgeId),
    /// Two tree edges enter the same node (the edge set is not a tree).
    MultipleParents(NodeId),
    /// The source has an incoming tree edge.
    SourceHasParent,
    /// A tree edge's origin is not connected to the source through tree edges.
    Disconnected(NodeId),
    /// A target is not covered by the tree.
    TargetNotCovered(NodeId),
    /// A tree weight is negative or not finite.
    InvalidWeight(f64),
    /// A flow handed to [`WeightedTreeSet::from_flows`] cannot be decomposed
    /// (wrong shape, or a target's demand is not routable in its support).
    InvalidFlow(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            TreeError::MultipleParents(n) => write!(f, "node {n} has several parents"),
            TreeError::SourceHasParent => write!(f, "the source has an incoming tree edge"),
            TreeError::Disconnected(n) => {
                write!(f, "tree edge from {n} is not connected to the source")
            }
            TreeError::TargetNotCovered(n) => write!(f, "target {n} is not covered by the tree"),
            TreeError::InvalidWeight(w) => write!(f, "invalid tree weight {w}"),
            TreeError::InvalidFlow(msg) => write!(f, "invalid flow: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A multicast tree: a set of platform edges forming a tree rooted at the
/// source and spanning every target of the instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastTree {
    /// Root of the tree (the multicast source).
    pub source: NodeId,
    /// The tree edges, as platform edge ids.
    edges: Vec<EdgeId>,
}

impl MulticastTree {
    /// Builds and validates a multicast tree from a set of platform edges.
    ///
    /// The edge set must form a tree rooted at `instance.source` (each
    /// non-root node involved has exactly one incoming edge, every edge is
    /// reachable from the root through tree edges) and must cover every
    /// target of the instance.
    pub fn new(instance: &MulticastInstance, edges: Vec<EdgeId>) -> Result<Self, TreeError> {
        let platform = &instance.platform;
        let n = platform.node_count();
        let mut parent: Vec<Option<EdgeId>> = vec![None; n];
        let mut edge_set: HashSet<EdgeId> = HashSet::with_capacity(edges.len());
        for &e in &edges {
            if e.index() >= platform.edge_count() {
                return Err(TreeError::UnknownEdge(e));
            }
            if !edge_set.insert(e) {
                continue; // ignore duplicates
            }
            let dst = platform.edge(e).dst;
            if dst == instance.source {
                return Err(TreeError::SourceHasParent);
            }
            if parent[dst.index()].is_some() {
                return Err(TreeError::MultipleParents(dst));
            }
            parent[dst.index()] = Some(e);
        }
        let edges: Vec<EdgeId> = edge_set.into_iter().collect();
        // Connectivity: walk up from each edge's source until the root; every
        // node on the way must have a parent (or be the root).
        let mut reach_cache: Vec<bool> = vec![false; n];
        reach_cache[instance.source.index()] = true;
        for &e in &edges {
            let mut cur = platform.edge(e).src;
            let mut chain = Vec::new();
            while !reach_cache[cur.index()] {
                chain.push(cur);
                match parent[cur.index()] {
                    Some(pe) => cur = platform.edge(pe).src,
                    None => return Err(TreeError::Disconnected(platform.edge(e).src)),
                }
                if chain.len() > n {
                    return Err(TreeError::Disconnected(platform.edge(e).src));
                }
            }
            for v in chain {
                reach_cache[v.index()] = true;
            }
        }
        // Coverage of targets.
        for &t in &instance.targets {
            if parent[t.index()].is_none() {
                return Err(TreeError::TargetNotCovered(t));
            }
        }
        let mut sorted = edges;
        sorted.sort_unstable();
        Ok(MulticastTree {
            source: instance.source,
            edges: sorted,
        })
    }

    /// The tree edges (sorted by edge id).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges in the tree.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the tree has no edges (only possible when the source is the
    /// only covered node, which a valid instance never allows).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `node` is covered by the tree (it is the root or has a parent
    /// edge).
    pub fn covers(&self, platform: &Platform, node: NodeId) -> bool {
        node == self.source || self.edges.iter().any(|&e| platform.edge(e).dst == node)
    }

    /// The parent edge of `node` in the tree, if any.
    pub fn parent_edge(&self, platform: &Platform, node: NodeId) -> Option<EdgeId> {
        self.edges
            .iter()
            .copied()
            .find(|&e| platform.edge(e).dst == node)
    }

    /// One-port loads induced by using this tree at a rate of one multicast
    /// per time-unit.
    pub fn unit_loads(&self, platform: &Platform) -> OnePortLoads {
        let mut loads = OnePortLoads::new(platform.node_count());
        for &e in &self.edges {
            let edge = platform.edge(e);
            loads.add_transfer(edge.src, edge.dst, edge.cost);
        }
        loads
    }

    /// The steady-state period of this tree: the time needed per multicast
    /// when this tree alone carries the whole series. It is the largest
    /// one-port port occupation at rate 1.
    pub fn period(&self, platform: &Platform) -> f64 {
        self.unit_loads(platform).max_load()
    }

    /// The steady-state throughput of this tree (`1 / period`).
    pub fn throughput(&self, platform: &Platform) -> f64 {
        1.0 / self.period(platform)
    }

    /// The classical Steiner cost of the tree: the sum of its edge costs.
    /// Not the metric optimized in the paper, but the baseline metric of the
    /// Steiner-tree heuristics revisited in Section 6.
    pub fn steiner_cost(&self, platform: &Platform) -> f64 {
        self.edges.iter().map(|&e| platform.cost(e)).sum()
    }
}

/// Removes all circulation from an edge-flow vector: repeatedly finds a
/// directed cycle in the support (edges with flow above `eps`) and subtracts
/// the cycle's minimum flow from every cycle edge.
///
/// Cycles carry no net demand, so cancelling them never changes what a flow
/// delivers — it only lowers edge loads. Both the tree decomposition of
/// [`WeightedTreeSet::from_flows`] and the multi-source flow composition in
/// `pm-core` rely on an acyclic support. Deterministic: the DFS follows node
/// and edge ids in order.
pub fn cancel_flow_cycles(platform: &Platform, flow: &mut [f64], eps: f64) {
    let n = platform.node_count();
    loop {
        // Colors: 0 = unvisited, 1 = on the current DFS path, 2 = done.
        let mut color = vec![0u8; n];
        // The support out-edge taken to reach each on-path node.
        let mut path: Vec<EdgeId> = Vec::new();
        let mut cycle: Option<Vec<EdgeId>> = None;
        'search: for root in platform.nodes() {
            if color[root.index()] != 0 {
                continue;
            }
            // Iterative DFS; the stack holds (node, next out-edge offset).
            let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
            color[root.index()] = 1;
            while let Some(&(u, next)) = stack.last() {
                let out = platform.out_edges(u);
                if next >= out.len() {
                    color[u.index()] = 2;
                    stack.pop();
                    path.pop();
                    continue;
                }
                stack.last_mut().expect("stack is non-empty").1 += 1;
                let e = out[next];
                if flow[e.index()] <= eps {
                    continue;
                }
                let v = platform.edge(e).dst;
                match color[v.index()] {
                    0 => {
                        color[v.index()] = 1;
                        path.push(e);
                        stack.push((v, 0));
                    }
                    1 => {
                        // Back edge: the cycle is e plus the path suffix
                        // starting at v (each DFS-path node appears as the
                        // source of at most one path edge).
                        let start = path
                            .iter()
                            .position(|&pe| platform.edge(pe).src == v)
                            .unwrap_or(path.len());
                        let mut edges: Vec<EdgeId> = path[start..].to_vec();
                        edges.push(e);
                        cycle = Some(edges);
                        break 'search;
                    }
                    _ => {}
                }
            }
        }
        let Some(edges) = cycle else { break };
        let w = edges
            .iter()
            .map(|&e| flow[e.index()])
            .fold(f64::INFINITY, f64::min);
        for &e in &edges {
            flow[e.index()] -= w;
            if flow[e.index()] <= eps {
                flow[e.index()] = 0.0;
            }
        }
    }
}

/// A weighted combination of multicast trees: tree `k` carries `weight[k]`
/// multicasts per time-unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTreeSet {
    trees: Vec<MulticastTree>,
    weights: Vec<f64>,
}

impl WeightedTreeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        WeightedTreeSet {
            trees: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Adds a tree with the given weight (multicasts per time-unit).
    pub fn push(&mut self, tree: MulticastTree, weight: f64) -> Result<(), TreeError> {
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(TreeError::InvalidWeight(weight));
        }
        self.trees.push(tree);
        self.weights.push(weight);
        Ok(())
    }

    /// The trees in the set.
    pub fn trees(&self) -> &[MulticastTree] {
        &self.trees
    }

    /// The weights, aligned with [`WeightedTreeSet::trees`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the set contains no tree.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Total throughput `Σ_k y_k` (multicasts initiated per time-unit).
    pub fn throughput(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Aggregated one-port loads per time-unit of steady state.
    pub fn loads(&self, platform: &Platform) -> OnePortLoads {
        let mut loads = OnePortLoads::new(platform.node_count());
        for (tree, &w) in self.trees.iter().zip(&self.weights) {
            for &e in tree.edges() {
                let edge = platform.edge(e);
                loads.add_transfer(edge.src, edge.dst, w * edge.cost);
            }
        }
        loads
    }

    /// Whether the combination respects the one-port constraints (every port
    /// occupied at most one time-unit per time-unit).
    pub fn is_feasible(&self, platform: &Platform, tol: f64) -> bool {
        self.loads(platform).fits_within(1.0, tol)
    }

    /// Scales every weight by the same factor so that the most loaded port is
    /// exactly saturated; returns the scaled set and the resulting
    /// throughput. A set with zero load is returned unchanged.
    pub fn scaled_to_feasible(&self, platform: &Platform) -> (WeightedTreeSet, f64) {
        let max_load = self.loads(platform).max_load();
        if max_load <= f64::EPSILON {
            return (self.clone(), self.throughput());
        }
        let factor = 1.0 / max_load;
        let scaled = WeightedTreeSet {
            trees: self.trees.clone(),
            weights: self.weights.iter().map(|w| w * factor).collect(),
        };
        let throughput = scaled.throughput();
        (scaled, throughput)
    }

    /// Scales every weight by the same factor so that the total throughput
    /// `Σ_k y_k` equals `throughput` (period-normalized scaling: exactly one
    /// multicast is carried per period of length `1 / throughput`). A set
    /// with zero total weight is returned unchanged.
    pub fn scaled_to_throughput(&self, throughput: f64) -> WeightedTreeSet {
        let total = self.throughput();
        if total <= f64::EPSILON {
            return self.clone();
        }
        let factor = throughput / total;
        WeightedTreeSet {
            trees: self.trees.clone(),
            weights: self.weights.iter().map(|w| w * factor).collect(),
        }
    }

    /// Decomposes per-target steady-state flows into a weighted set of
    /// multicast trees — the constructive step of the paper's realization
    /// argument (a steady-state solution *is* a weighted combination of
    /// trees, Theorem 4).
    ///
    /// `target_flows[i][e]` is the fraction of the message destined to
    /// `instance.targets[i]` crossing edge `e`; each row must be a ≈unit
    /// flow from `instance.source` to its target (exactly what the LP
    /// formulations of `pm-core` produce). Rows are cycle-cancelled, then
    /// trees are peeled off round by round: every round grows one multicast
    /// tree whose per-target paths follow the remaining flow supports
    /// (riding already-chosen tree edges for free, which is how overlapping
    /// target flows share a single message copy), takes the largest weight
    /// the supports allow, and subtracts it from every routed flow.
    ///
    /// The returned weights are *fractions of one multicast* (they sum to
    /// ≈1, minus a ≤1e-7 numerical residue); scale the set to the desired
    /// rate with [`WeightedTreeSet::scaled_to_throughput`] or saturate it
    /// with [`WeightedTreeSet::scaled_to_feasible`]. Each round zeroes a
    /// support edge or exhausts the demand, so at most `O(|T| · |E|)` trees
    /// are peeled before deduplication; well-behaved flows (broadcast-like
    /// overlap) produce far fewer.
    ///
    /// Errors with [`TreeError::InvalidFlow`] when the row count does not
    /// match the target count or a target is unreachable in its own support
    /// before anything was peeled. A mid-decomposition dead end (possible on
    /// adversarial numerics) stops the peeling instead; the missing demand
    /// shows up as a total weight below one.
    ///
    /// ```
    /// use pm_platform::graph::PlatformBuilder;
    /// use pm_platform::instances::MulticastInstance;
    /// use pm_sched::WeightedTreeSet;
    ///
    /// // A diamond: S -> A -> T and S -> B -> T, each path carrying half
    /// // of the broadcast to the single target T.
    /// let mut b = PlatformBuilder::new();
    /// let s = b.add_node();
    /// let a = b.add_node();
    /// let t = b.add_node();
    /// let b2 = b.add_node();
    /// b.add_edge(s, a, 1.0).unwrap(); // edge 0
    /// b.add_edge(a, t, 1.0).unwrap(); // edge 1
    /// b.add_edge(s, b2, 1.0).unwrap(); // edge 2
    /// b.add_edge(b2, t, 1.0).unwrap(); // edge 3
    /// let instance = MulticastInstance::new(b.build().unwrap(), s, vec![t]).unwrap();
    ///
    /// let flows = vec![vec![0.5, 0.5, 0.5, 0.5]];
    /// let set = WeightedTreeSet::from_flows(&instance, &flows).unwrap();
    /// // Two path-trees, each carrying half of the message.
    /// assert_eq!(set.trees().len(), 2);
    /// assert!((set.throughput() - 1.0).abs() < 1e-7);
    /// ```
    pub fn from_flows(
        instance: &MulticastInstance,
        target_flows: &[Vec<f64>],
    ) -> Result<WeightedTreeSet, TreeError> {
        let order: Vec<usize> = (0..instance.targets.len()).collect();
        Self::from_flows_with_order(instance, target_flows, &order)
    }

    /// Per-commodity decomposition: [`WeightedTreeSet::from_flows`] applied
    /// to several commodities of a shared platform, each with its *own*
    /// source, target set and flow matrix (normalized to one message of
    /// that commodity). Returns one tree set per commodity, in input order;
    /// the first failing commodity aborts the whole decomposition.
    ///
    /// The instances must be built on the same platform (same edge ids);
    /// this is the decomposition half of the multi-commodity super-period
    /// pipeline, whose packing and coloring halves live in `pm-core` and
    /// [`crate::schedule::PeriodicSchedule::from_weighted_tree_groups`].
    pub fn from_flow_groups(
        groups: &[(&MulticastInstance, &[Vec<f64>])],
    ) -> Result<Vec<WeightedTreeSet>, TreeError> {
        groups
            .iter()
            .map(|(instance, rows)| Self::from_flows(instance, rows))
            .collect()
    }

    /// [`WeightedTreeSet::from_flows`] with an explicit target processing
    /// order (a permutation of `0..targets.len()`). The order decides which
    /// target's path lays down the skeleton each peeling round — different
    /// orders peel different (equally valid) tree sets, which is how the
    /// realization pipeline enriches its candidate pool.
    pub fn from_flows_with_order(
        instance: &MulticastInstance,
        target_flows: &[Vec<f64>],
        order: &[usize],
    ) -> Result<WeightedTreeSet, TreeError> {
        const FLOW_EPS: f64 = 1e-9;
        const DEMAND_EPS: f64 = 1e-7;
        let platform = &instance.platform;
        let n = platform.node_count();
        let m = platform.edge_count();
        let t = instance.targets.len();
        if target_flows.len() != t {
            return Err(TreeError::InvalidFlow(format!(
                "{} flow rows for {t} targets",
                target_flows.len()
            )));
        }
        {
            let mut seen = vec![false; t];
            if order.len() != t
                || !order
                    .iter()
                    .all(|&i| i < t && !std::mem::replace(&mut seen[i], true))
            {
                return Err(TreeError::InvalidFlow(
                    "order is not a permutation of the targets".to_string(),
                ));
            }
        }
        let mut x: Vec<Vec<f64>> = Vec::with_capacity(t);
        for row in target_flows {
            if row.len() != m {
                return Err(TreeError::InvalidFlow(format!(
                    "flow row has {} entries for {m} edges",
                    row.len()
                )));
            }
            let mut row: Vec<f64> = row
                .iter()
                .map(|&v| if v > FLOW_EPS { v } else { 0.0 })
                .collect();
            cancel_flow_cycles(platform, &mut row, FLOW_EPS);
            x.push(row);
        }

        let mut remaining = 1.0_f64;
        let max_rounds = 2 * (t * m + t) + 8;
        // Accumulated (canonical edge set, weight) rounds, deduplicated.
        let mut peeled: Vec<(MulticastTree, f64)> = Vec::new();
        for round in 0..max_rounds {
            if remaining <= DEMAND_EPS {
                break;
            }
            // Grow one tree covering every target, following the supports.
            let mut in_tree = vec![false; n];
            in_tree[instance.source.index()] = true;
            let mut depth = vec![0usize; n];
            let mut parent: Vec<Option<EdgeId>> = vec![None; n];
            let mut tree_edges: Vec<EdgeId> = Vec::new();
            // Per target: the new edges its path added (they cap the round
            // weight) and its full source→target tree path (it is charged).
            let mut added: Vec<Vec<EdgeId>> = vec![Vec::new(); t];
            let mut dead_end: Option<NodeId> = None;
            for &i in order {
                let target = instance.targets[i];
                if in_tree[target.index()] {
                    continue;
                }
                // BFS from the whole current tree through the remaining
                // support of x[i], never re-entering the tree (every node
                // keeps a single parent). Seeds are ordered deepest-first:
                // among equally short attachments, the one extending the
                // longest shared prefix wins — pairing each target's path
                // with the round skeleton instead of falling back to the
                // source is what lets consecutive rounds specialize into
                // complementary trees (the Figure 1 optimum needs it).
                let mut pred: Vec<Option<EdgeId>> = vec![None; n];
                let mut seen = vec![false; n];
                let mut seeds: Vec<NodeId> = (0..n)
                    .map(|v| NodeId(v as u32))
                    .filter(|&v| in_tree[v.index()])
                    .collect();
                seeds.sort_by_key(|&v| (std::cmp::Reverse(depth[v.index()]), v.index()));
                let mut queue: std::collections::VecDeque<NodeId> = seeds.into();
                for v in queue.iter() {
                    seen[v.index()] = true;
                }
                while let Some(u) = queue.pop_front() {
                    if u == target {
                        break;
                    }
                    for &e in platform.out_edges(u) {
                        let v = platform.edge(e).dst;
                        if x[i][e.index()] > FLOW_EPS && !seen[v.index()] && !in_tree[v.index()] {
                            seen[v.index()] = true;
                            pred[v.index()] = Some(e);
                            queue.push_back(v);
                        }
                    }
                }
                if pred[target.index()].is_none() {
                    dead_end = Some(target);
                    break;
                }
                // Walk the new suffix back to the attachment point.
                let mut suffix: Vec<EdgeId> = Vec::new();
                let mut cur = target;
                while let Some(e) = pred[cur.index()] {
                    suffix.push(e);
                    cur = platform.edge(e).src;
                }
                for &e in suffix.iter().rev() {
                    let edge = platform.edge(e);
                    in_tree[edge.dst.index()] = true;
                    depth[edge.dst.index()] = depth[edge.src.index()] + 1;
                    parent[edge.dst.index()] = Some(e);
                    tree_edges.push(e);
                    added[i].push(e);
                }
            }
            if let Some(target) = dead_end {
                if round == 0 {
                    return Err(TreeError::InvalidFlow(format!(
                        "no routable support for target {target}"
                    )));
                }
                break;
            }
            // Round weight: the demand still owed, capped by the remaining
            // flow on every newly added edge (free rides on existing tree
            // edges do not constrain it).
            let mut w = remaining;
            for (i, edges) in added.iter().enumerate() {
                for &e in edges {
                    w = w.min(x[i][e.index()]);
                }
            }
            if w <= FLOW_EPS {
                break;
            }
            // Charge every target's full tree path (clamped at zero: riding
            // an edge another target paid for is what the max-accounting
            // overlap allows).
            for (i, &target) in instance.targets.iter().enumerate() {
                let mut cur = target;
                while let Some(e) = parent[cur.index()] {
                    let f = &mut x[i][e.index()];
                    *f = if *f - w > FLOW_EPS { *f - w } else { 0.0 };
                    cur = platform.edge(e).src;
                }
            }
            remaining -= w;
            let tree = MulticastTree::new(instance, tree_edges).map_err(|e| {
                TreeError::InvalidFlow(format!("peeled edge set is not a tree: {e}"))
            })?;
            match peeled.iter_mut().find(|(p, _)| p.edges() == tree.edges()) {
                Some((_, pw)) => *pw += w,
                None => peeled.push((tree, w)),
            }
        }

        let mut set = WeightedTreeSet::new();
        for (tree, w) in peeled {
            set.push(tree, w)?;
        }
        Ok(set)
    }

    /// Per-edge message rates (messages per time-unit) aggregated over trees.
    pub fn edge_rates(&self, platform: &Platform) -> Vec<f64> {
        let mut rates = vec![0.0; platform.edge_count()];
        for (tree, &w) in self.trees.iter().zip(&self.weights) {
            for &e in tree.edges() {
                rates[e.index()] += w;
            }
        }
        rates
    }
}

impl Default for WeightedTreeSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::graph::PlatformBuilder;
    use pm_platform::instances::{figure1_instance, MulticastInstance};

    /// source -> a (1), source -> b (1), a -> t (0.5), b -> t (0.5)
    fn diamond_instance() -> MulticastInstance {
        let mut b = PlatformBuilder::new();
        let s = b.add_named_node("s");
        let a = b.add_named_node("a");
        let bb = b.add_named_node("b");
        let t = b.add_named_node("t");
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(s, bb, 1.0).unwrap();
        b.add_edge(a, t, 0.5).unwrap();
        b.add_edge(bb, t, 0.5).unwrap();
        let platform = b.build().unwrap();
        MulticastInstance::new(platform, s, vec![t]).unwrap()
    }

    #[test]
    fn tree_validation_accepts_valid_tree() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        assert_eq!(tree.len(), 2);
        assert!(tree.covers(g, NodeId(3)));
        assert!(!tree.covers(g, NodeId(2)));
        assert_eq!(tree.parent_edge(g, NodeId(3)), Some(e_at));
        assert_eq!(tree.steiner_cost(g), 1.5);
        // Loads: s sends 1, a receives 1 and sends 0.5, t receives 0.5.
        assert!((tree.period(g) - 1.0).abs() < 1e-12);
        assert!((tree.throughput(g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_validation_rejects_bad_trees() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_sb = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let e_bt = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        // Two parents for t.
        assert_eq!(
            MulticastTree::new(&inst, vec![e_sa, e_sb, e_at, e_bt]),
            Err(TreeError::MultipleParents(NodeId(3)))
        );
        // Target not covered.
        assert_eq!(
            MulticastTree::new(&inst, vec![e_sa]),
            Err(TreeError::TargetNotCovered(NodeId(3)))
        );
        // Disconnected from the source.
        assert_eq!(
            MulticastTree::new(&inst, vec![e_at]),
            Err(TreeError::Disconnected(NodeId(1)))
        );
        // Unknown edge id.
        assert_eq!(
            MulticastTree::new(&inst, vec![EdgeId(99)]),
            Err(TreeError::UnknownEdge(EdgeId(99)))
        );
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e_sa, e_at, e_sa]).unwrap();
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn weighted_tree_set_throughput_and_feasibility() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let e_sb = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let e_bt = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        let t2 = MulticastTree::new(&inst, vec![e_sb, e_bt]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(t1, 0.5).unwrap();
        set.push(t2, 0.5).unwrap();
        assert_eq!(set.len(), 2);
        assert!((set.throughput() - 1.0).abs() < 1e-12);
        // Source sends 0.5 to a and 0.5 to b: saturated but feasible;
        // t receives 0.25 + 0.25.
        assert!(set.is_feasible(g, 1e-12));
        let loads = set.loads(g);
        assert!((loads.send(NodeId(0)) - 1.0).abs() < 1e-12);
        assert!((loads.recv(NodeId(3)) - 0.5).abs() < 1e-12);
        let rates = set.edge_rates(g);
        assert_eq!(rates, vec![0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn scaling_to_feasibility_saturates_the_bottleneck() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(t1, 4.0).unwrap(); // wildly infeasible
        assert!(!set.is_feasible(g, 1e-12));
        let (scaled, thr) = set.scaled_to_feasible(g);
        assert!((thr - 1.0).abs() < 1e-12);
        assert!(scaled.is_feasible(g, 1e-12));
        assert!((scaled.loads(g).max_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        let mut set = WeightedTreeSet::new();
        assert!(matches!(
            set.push(t1.clone(), -0.5),
            Err(TreeError::InvalidWeight(_))
        ));
        assert!(matches!(
            set.push(t1, f64::NAN),
            Err(TreeError::InvalidWeight(_))
        ));
    }

    #[test]
    fn cycle_cancellation_removes_circulation_only() {
        // s -> a -> t plus a 2-cycle a <-> b carrying circulation.
        let mut b = PlatformBuilder::new();
        let s = b.add_node();
        let a = b.add_node();
        let bb = b.add_node();
        let t = b.add_node();
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, t, 1.0).unwrap();
        b.add_edge(a, bb, 1.0).unwrap();
        b.add_edge(bb, a, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut flow = vec![1.0, 1.0, 0.4, 0.4];
        cancel_flow_cycles(&g, &mut flow, 1e-9);
        assert_eq!(flow, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn from_flows_splits_the_diamond_into_two_paths() {
        let inst = diamond_instance();
        let g = &inst.platform;
        // Half the message goes through a, half through b.
        let flows = vec![vec![0.5, 0.5, 0.5, 0.5]];
        let set = WeightedTreeSet::from_flows(&inst, &flows).unwrap();
        assert_eq!(set.len(), 2);
        assert!((set.throughput() - 1.0).abs() < 1e-7);
        for (tree, &w) in set.trees().iter().zip(set.weights()) {
            assert_eq!(tree.len(), 2);
            assert!((w - 0.5).abs() < 1e-7);
        }
        // The decomposition reproduces the flow's edge loads exactly.
        let rates = set.edge_rates(g);
        for r in rates {
            assert!((r - 0.5).abs() < 1e-7);
        }
    }

    #[test]
    fn from_flows_single_path_yields_the_path_tree() {
        let inst = diamond_instance();
        let flows = vec![vec![1.0, 0.0, 1.0, 0.0]];
        let set = WeightedTreeSet::from_flows(&inst, &flows).unwrap();
        assert_eq!(set.len(), 1);
        assert!((set.weights()[0] - 1.0).abs() < 1e-7);
        assert_eq!(set.trees()[0].len(), 2);
    }

    #[test]
    fn from_flows_shares_edges_across_overlapping_targets() {
        // Figure 5: source -> relay -> n targets; every target's unit flow
        // rides the same source -> relay edge, so a single tree is peeled.
        let inst = pm_platform::instances::figure5_instance(3);
        let g = &inst.platform;
        let mut flows = Vec::new();
        for &t in &inst.targets {
            let mut row = vec![0.0; g.edge_count()];
            row[g.find_edge(NodeId(0), NodeId(1)).unwrap().index()] = 1.0;
            row[g.find_edge(NodeId(1), t).unwrap().index()] = 1.0;
            flows.push(row);
        }
        let set = WeightedTreeSet::from_flows(&inst, &flows).unwrap();
        assert_eq!(set.len(), 1);
        assert!((set.throughput() - 1.0).abs() < 1e-7);
        // One shared copy crosses the relay link: the tree set's period is
        // the broadcast optimum 1, not the scatter value n.
        assert!((set.loads(g).max_load() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn from_flows_rejects_bad_shapes_and_unroutable_targets() {
        let inst = diamond_instance();
        assert!(matches!(
            WeightedTreeSet::from_flows(&inst, &[]),
            Err(TreeError::InvalidFlow(_))
        ));
        assert!(matches!(
            WeightedTreeSet::from_flows(&inst, &[vec![0.0; 2]]),
            Err(TreeError::InvalidFlow(_))
        ));
        // A zero flow cannot route the target.
        assert!(matches!(
            WeightedTreeSet::from_flows(&inst, &[vec![0.0; 4]]),
            Err(TreeError::InvalidFlow(_))
        ));
    }

    #[test]
    fn scaled_to_throughput_normalizes_the_total_weight() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(t1, 0.25).unwrap();
        let scaled = set.scaled_to_throughput(0.8);
        assert!((scaled.throughput() - 0.8).abs() < 1e-12);
        assert_eq!(scaled.len(), 1);
    }

    #[test]
    fn figure1_two_tree_solution_reaches_throughput_one() {
        // The optimal two-tree solution described in Section 3 of the paper.
        let inst = figure1_instance();
        let g = &inst.platform;
        let edge = |s: u32, d: u32| g.find_edge(NodeId(s), NodeId(d)).unwrap();
        // Tree A: messages that use the direct Psource -> P1 link and reach
        // the P7 cluster through P3 -> P4 -> P5 -> P6.
        let tree_a = MulticastTree::new(
            &inst,
            vec![
                edge(0, 1),
                edge(0, 3),
                edge(3, 4),
                edge(4, 5),
                edge(5, 6),
                edge(6, 7),
                edge(7, 8),
                edge(7, 9),
                edge(7, 10),
                edge(1, 11),
                edge(11, 12),
                edge(11, 13),
            ],
        )
        .unwrap();
        // Tree B: messages relayed through P3 -> P2, reaching P1 through P2
        // and the P7 cluster through P2 -> P6.
        let tree_b = MulticastTree::new(
            &inst,
            vec![
                edge(0, 3),
                edge(3, 2),
                edge(2, 1),
                edge(2, 6),
                edge(6, 7),
                edge(7, 8),
                edge(7, 9),
                edge(7, 10),
                edge(1, 11),
                edge(11, 12),
                edge(11, 13),
            ],
        )
        .unwrap();
        // Each tree alone sustains at most half a multicast per time-unit...
        assert!(tree_a.throughput(g) <= 0.5 + 1e-9);
        // ... but together, with weight 1/2 each, they reach throughput 1.
        let mut set = WeightedTreeSet::new();
        set.push(tree_a, 0.5).unwrap();
        set.push(tree_b, 0.5).unwrap();
        assert!((set.throughput() - 1.0).abs() < 1e-12);
        assert!(set.is_feasible(g, 1e-9));
    }
}
