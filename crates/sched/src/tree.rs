//! Multicast trees and weighted combinations of trees.
//!
//! A *multicast tree* is a tree rooted at the source, built from platform
//! edges, that spans every target (Section 3 of the paper). Used alone for a
//! series of multicasts at rate `ρ`, it occupies the send port of each node
//! `Pi` for `ρ · Σ_{(i,j) ∈ tree} c_{i,j}` per time-unit and its receive port
//! for `ρ · c_{parent(i), i}`; the best sustainable rate is therefore the
//! inverse of the largest such occupation for `ρ = 1`, which is what
//! [`MulticastTree::period`] computes.
//!
//! The paper's key observation (Section 3) is that a *weighted combination*
//! of trees — [`WeightedTreeSet`] — can beat every single tree; Theorem 4
//! shows an optimal combination with at most `2|E|` trees always exists.

use crate::load::OnePortLoads;
use pm_platform::graph::{EdgeId, NodeId, Platform};
use pm_platform::instances::MulticastInstance;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Errors raised while validating a multicast tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// An edge id does not exist in the platform.
    UnknownEdge(EdgeId),
    /// Two tree edges enter the same node (the edge set is not a tree).
    MultipleParents(NodeId),
    /// The source has an incoming tree edge.
    SourceHasParent,
    /// A tree edge's origin is not connected to the source through tree edges.
    Disconnected(NodeId),
    /// A target is not covered by the tree.
    TargetNotCovered(NodeId),
    /// A tree weight is negative or not finite.
    InvalidWeight(f64),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            TreeError::MultipleParents(n) => write!(f, "node {n} has several parents"),
            TreeError::SourceHasParent => write!(f, "the source has an incoming tree edge"),
            TreeError::Disconnected(n) => {
                write!(f, "tree edge from {n} is not connected to the source")
            }
            TreeError::TargetNotCovered(n) => write!(f, "target {n} is not covered by the tree"),
            TreeError::InvalidWeight(w) => write!(f, "invalid tree weight {w}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A multicast tree: a set of platform edges forming a tree rooted at the
/// source and spanning every target of the instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastTree {
    /// Root of the tree (the multicast source).
    pub source: NodeId,
    /// The tree edges, as platform edge ids.
    edges: Vec<EdgeId>,
}

impl MulticastTree {
    /// Builds and validates a multicast tree from a set of platform edges.
    ///
    /// The edge set must form a tree rooted at `instance.source` (each
    /// non-root node involved has exactly one incoming edge, every edge is
    /// reachable from the root through tree edges) and must cover every
    /// target of the instance.
    pub fn new(instance: &MulticastInstance, edges: Vec<EdgeId>) -> Result<Self, TreeError> {
        let platform = &instance.platform;
        let n = platform.node_count();
        let mut parent: Vec<Option<EdgeId>> = vec![None; n];
        let mut edge_set: HashSet<EdgeId> = HashSet::with_capacity(edges.len());
        for &e in &edges {
            if e.index() >= platform.edge_count() {
                return Err(TreeError::UnknownEdge(e));
            }
            if !edge_set.insert(e) {
                continue; // ignore duplicates
            }
            let dst = platform.edge(e).dst;
            if dst == instance.source {
                return Err(TreeError::SourceHasParent);
            }
            if parent[dst.index()].is_some() {
                return Err(TreeError::MultipleParents(dst));
            }
            parent[dst.index()] = Some(e);
        }
        let edges: Vec<EdgeId> = edge_set.into_iter().collect();
        // Connectivity: walk up from each edge's source until the root; every
        // node on the way must have a parent (or be the root).
        let mut reach_cache: Vec<bool> = vec![false; n];
        reach_cache[instance.source.index()] = true;
        for &e in &edges {
            let mut cur = platform.edge(e).src;
            let mut chain = Vec::new();
            while !reach_cache[cur.index()] {
                chain.push(cur);
                match parent[cur.index()] {
                    Some(pe) => cur = platform.edge(pe).src,
                    None => return Err(TreeError::Disconnected(platform.edge(e).src)),
                }
                if chain.len() > n {
                    return Err(TreeError::Disconnected(platform.edge(e).src));
                }
            }
            for v in chain {
                reach_cache[v.index()] = true;
            }
        }
        // Coverage of targets.
        for &t in &instance.targets {
            if parent[t.index()].is_none() {
                return Err(TreeError::TargetNotCovered(t));
            }
        }
        let mut sorted = edges;
        sorted.sort_unstable();
        Ok(MulticastTree {
            source: instance.source,
            edges: sorted,
        })
    }

    /// The tree edges (sorted by edge id).
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges in the tree.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the tree has no edges (only possible when the source is the
    /// only covered node, which a valid instance never allows).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `node` is covered by the tree (it is the root or has a parent
    /// edge).
    pub fn covers(&self, platform: &Platform, node: NodeId) -> bool {
        node == self.source || self.edges.iter().any(|&e| platform.edge(e).dst == node)
    }

    /// The parent edge of `node` in the tree, if any.
    pub fn parent_edge(&self, platform: &Platform, node: NodeId) -> Option<EdgeId> {
        self.edges
            .iter()
            .copied()
            .find(|&e| platform.edge(e).dst == node)
    }

    /// One-port loads induced by using this tree at a rate of one multicast
    /// per time-unit.
    pub fn unit_loads(&self, platform: &Platform) -> OnePortLoads {
        let mut loads = OnePortLoads::new(platform.node_count());
        for &e in &self.edges {
            let edge = platform.edge(e);
            loads.add_transfer(edge.src, edge.dst, edge.cost);
        }
        loads
    }

    /// The steady-state period of this tree: the time needed per multicast
    /// when this tree alone carries the whole series. It is the largest
    /// one-port port occupation at rate 1.
    pub fn period(&self, platform: &Platform) -> f64 {
        self.unit_loads(platform).max_load()
    }

    /// The steady-state throughput of this tree (`1 / period`).
    pub fn throughput(&self, platform: &Platform) -> f64 {
        1.0 / self.period(platform)
    }

    /// The classical Steiner cost of the tree: the sum of its edge costs.
    /// Not the metric optimized in the paper, but the baseline metric of the
    /// Steiner-tree heuristics revisited in Section 6.
    pub fn steiner_cost(&self, platform: &Platform) -> f64 {
        self.edges.iter().map(|&e| platform.cost(e)).sum()
    }
}

/// A weighted combination of multicast trees: tree `k` carries `weight[k]`
/// multicasts per time-unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTreeSet {
    trees: Vec<MulticastTree>,
    weights: Vec<f64>,
}

impl WeightedTreeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        WeightedTreeSet {
            trees: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Adds a tree with the given weight (multicasts per time-unit).
    pub fn push(&mut self, tree: MulticastTree, weight: f64) -> Result<(), TreeError> {
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(TreeError::InvalidWeight(weight));
        }
        self.trees.push(tree);
        self.weights.push(weight);
        Ok(())
    }

    /// The trees in the set.
    pub fn trees(&self) -> &[MulticastTree] {
        &self.trees
    }

    /// The weights, aligned with [`WeightedTreeSet::trees`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the set contains no tree.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Total throughput `Σ_k y_k` (multicasts initiated per time-unit).
    pub fn throughput(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Aggregated one-port loads per time-unit of steady state.
    pub fn loads(&self, platform: &Platform) -> OnePortLoads {
        let mut loads = OnePortLoads::new(platform.node_count());
        for (tree, &w) in self.trees.iter().zip(&self.weights) {
            for &e in tree.edges() {
                let edge = platform.edge(e);
                loads.add_transfer(edge.src, edge.dst, w * edge.cost);
            }
        }
        loads
    }

    /// Whether the combination respects the one-port constraints (every port
    /// occupied at most one time-unit per time-unit).
    pub fn is_feasible(&self, platform: &Platform, tol: f64) -> bool {
        self.loads(platform).fits_within(1.0, tol)
    }

    /// Scales every weight by the same factor so that the most loaded port is
    /// exactly saturated; returns the scaled set and the resulting
    /// throughput. A set with zero load is returned unchanged.
    pub fn scaled_to_feasible(&self, platform: &Platform) -> (WeightedTreeSet, f64) {
        let max_load = self.loads(platform).max_load();
        if max_load <= f64::EPSILON {
            return (self.clone(), self.throughput());
        }
        let factor = 1.0 / max_load;
        let scaled = WeightedTreeSet {
            trees: self.trees.clone(),
            weights: self.weights.iter().map(|w| w * factor).collect(),
        };
        let throughput = scaled.throughput();
        (scaled, throughput)
    }

    /// Per-edge message rates (messages per time-unit) aggregated over trees.
    pub fn edge_rates(&self, platform: &Platform) -> Vec<f64> {
        let mut rates = vec![0.0; platform.edge_count()];
        for (tree, &w) in self.trees.iter().zip(&self.weights) {
            for &e in tree.edges() {
                rates[e.index()] += w;
            }
        }
        rates
    }
}

impl Default for WeightedTreeSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::graph::PlatformBuilder;
    use pm_platform::instances::{figure1_instance, MulticastInstance};

    /// source -> a (1), source -> b (1), a -> t (0.5), b -> t (0.5)
    fn diamond_instance() -> MulticastInstance {
        let mut b = PlatformBuilder::new();
        let s = b.add_named_node("s");
        let a = b.add_named_node("a");
        let bb = b.add_named_node("b");
        let t = b.add_named_node("t");
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(s, bb, 1.0).unwrap();
        b.add_edge(a, t, 0.5).unwrap();
        b.add_edge(bb, t, 0.5).unwrap();
        let platform = b.build().unwrap();
        MulticastInstance::new(platform, s, vec![t]).unwrap()
    }

    #[test]
    fn tree_validation_accepts_valid_tree() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        assert_eq!(tree.len(), 2);
        assert!(tree.covers(g, NodeId(3)));
        assert!(!tree.covers(g, NodeId(2)));
        assert_eq!(tree.parent_edge(g, NodeId(3)), Some(e_at));
        assert_eq!(tree.steiner_cost(g), 1.5);
        // Loads: s sends 1, a receives 1 and sends 0.5, t receives 0.5.
        assert!((tree.period(g) - 1.0).abs() < 1e-12);
        assert!((tree.throughput(g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_validation_rejects_bad_trees() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_sb = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let e_bt = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        // Two parents for t.
        assert_eq!(
            MulticastTree::new(&inst, vec![e_sa, e_sb, e_at, e_bt]),
            Err(TreeError::MultipleParents(NodeId(3)))
        );
        // Target not covered.
        assert_eq!(
            MulticastTree::new(&inst, vec![e_sa]),
            Err(TreeError::TargetNotCovered(NodeId(3)))
        );
        // Disconnected from the source.
        assert_eq!(
            MulticastTree::new(&inst, vec![e_at]),
            Err(TreeError::Disconnected(NodeId(1)))
        );
        // Unknown edge id.
        assert_eq!(
            MulticastTree::new(&inst, vec![EdgeId(99)]),
            Err(TreeError::UnknownEdge(EdgeId(99)))
        );
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let tree = MulticastTree::new(&inst, vec![e_sa, e_at, e_sa]).unwrap();
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn weighted_tree_set_throughput_and_feasibility() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let e_sb = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let e_bt = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        let t2 = MulticastTree::new(&inst, vec![e_sb, e_bt]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(t1, 0.5).unwrap();
        set.push(t2, 0.5).unwrap();
        assert_eq!(set.len(), 2);
        assert!((set.throughput() - 1.0).abs() < 1e-12);
        // Source sends 0.5 to a and 0.5 to b: saturated but feasible;
        // t receives 0.25 + 0.25.
        assert!(set.is_feasible(g, 1e-12));
        let loads = set.loads(g);
        assert!((loads.send(NodeId(0)) - 1.0).abs() < 1e-12);
        assert!((loads.recv(NodeId(3)) - 0.5).abs() < 1e-12);
        let rates = set.edge_rates(g);
        assert_eq!(rates, vec![0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn scaling_to_feasibility_saturates_the_bottleneck() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(t1, 4.0).unwrap(); // wildly infeasible
        assert!(!set.is_feasible(g, 1e-12));
        let (scaled, thr) = set.scaled_to_feasible(g);
        assert!((thr - 1.0).abs() < 1e-12);
        assert!(scaled.is_feasible(g, 1e-12));
        assert!((scaled.loads(g).max_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let inst = diamond_instance();
        let g = &inst.platform;
        let e_sa = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e_at = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let t1 = MulticastTree::new(&inst, vec![e_sa, e_at]).unwrap();
        let mut set = WeightedTreeSet::new();
        assert!(matches!(
            set.push(t1.clone(), -0.5),
            Err(TreeError::InvalidWeight(_))
        ));
        assert!(matches!(
            set.push(t1, f64::NAN),
            Err(TreeError::InvalidWeight(_))
        ));
    }

    #[test]
    fn figure1_two_tree_solution_reaches_throughput_one() {
        // The optimal two-tree solution described in Section 3 of the paper.
        let inst = figure1_instance();
        let g = &inst.platform;
        let edge = |s: u32, d: u32| g.find_edge(NodeId(s), NodeId(d)).unwrap();
        // Tree A: messages that use the direct Psource -> P1 link and reach
        // the P7 cluster through P3 -> P4 -> P5 -> P6.
        let tree_a = MulticastTree::new(
            &inst,
            vec![
                edge(0, 1),
                edge(0, 3),
                edge(3, 4),
                edge(4, 5),
                edge(5, 6),
                edge(6, 7),
                edge(7, 8),
                edge(7, 9),
                edge(7, 10),
                edge(1, 11),
                edge(11, 12),
                edge(11, 13),
            ],
        )
        .unwrap();
        // Tree B: messages relayed through P3 -> P2, reaching P1 through P2
        // and the P7 cluster through P2 -> P6.
        let tree_b = MulticastTree::new(
            &inst,
            vec![
                edge(0, 3),
                edge(3, 2),
                edge(2, 1),
                edge(2, 6),
                edge(6, 7),
                edge(7, 8),
                edge(7, 9),
                edge(7, 10),
                edge(1, 11),
                edge(11, 12),
                edge(11, 13),
            ],
        )
        .unwrap();
        // Each tree alone sustains at most half a multicast per time-unit...
        assert!(tree_a.throughput(g) <= 0.5 + 1e-9);
        // ... but together, with weight 1/2 each, they reach throughput 1.
        let mut set = WeightedTreeSet::new();
        set.push(tree_a, 0.5).unwrap();
        set.push(tree_b, 0.5).unwrap();
        assert!((set.throughput() - 1.0).abs() < 1e-12);
        assert!(set.is_feasible(g, 1e-9));
    }
}
