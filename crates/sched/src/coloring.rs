//! Weighted bipartite edge coloring under the one-port model.
//!
//! Given a set of communication tasks (sender, receiver, duration), the
//! one-port model forbids a node from being involved in two sends (or two
//! receives) at the same instant. The weighted version of König's edge
//! coloring theorem states that all the tasks can be scheduled — allowing
//! preemption — within a makespan equal to the largest *port load*, i.e. the
//! maximum over nodes of the total send duration or total receive duration.
//!
//! The paper relies on this result twice: to check certificates in the
//! NP-membership proofs (Theorems 1 and 3) and to turn LP solutions or
//! weighted tree sets into actual periodic schedules. The procedure below is
//! the classical constructive proof: repeatedly extract a matching of the
//! bipartite (send-port, receive-port) multigraph that covers every
//! *critical* (maximally loaded) port, schedule it for as long as possible,
//! and recurse on the remaining durations. The number of produced slots is
//! polynomial in the number of tasks.

use pm_platform::graph::NodeId;
use serde::{Deserialize, Serialize};

const EPS: f64 = 1e-9;

/// One communication task: `src` sends to `dst` for `duration` time-units in
/// total (possibly split across several slots of the resulting schedule).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommTask {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Total communication time required.
    pub duration: f64,
    /// Free-form tag propagated to the schedule (e.g. the index of the
    /// multicast tree this transfer belongs to).
    pub tag: usize,
}

/// One slot of the colored schedule: all assignments in a slot run in
/// parallel, which is legal because they form a matching of the port graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColorSlot {
    /// Length of the slot.
    pub duration: f64,
    /// `(task index, time used)` pairs; `time used` always equals the slot
    /// duration except possibly for bookkeeping of numerically tiny residues.
    pub assignments: Vec<(usize, f64)>,
}

/// The result of [`schedule_tasks`]: an ordered list of slots whose total
/// duration (the makespan) matches the maximum port load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColoredSchedule {
    /// Total length of the schedule.
    pub makespan: f64,
    /// The slots, in chronological order.
    pub slots: Vec<ColorSlot>,
}

impl ColoredSchedule {
    /// Verifies that the schedule is one-port compliant (no port reused
    /// within a slot) and that every task received its full duration.
    pub fn validate(&self, tasks: &[CommTask], tol: f64) -> bool {
        let mut done = vec![0.0; tasks.len()];
        for slot in &self.slots {
            let mut senders = Vec::new();
            let mut receivers = Vec::new();
            for &(idx, used) in &slot.assignments {
                if idx >= tasks.len() || used > slot.duration + tol {
                    return false;
                }
                let t = &tasks[idx];
                if senders.contains(&t.src) || receivers.contains(&t.dst) {
                    return false;
                }
                senders.push(t.src);
                receivers.push(t.dst);
                done[idx] += used;
            }
        }
        tasks
            .iter()
            .zip(&done)
            .all(|(t, &d)| (d - t.duration).abs() <= tol * (1.0 + t.duration))
    }
}

/// Port loads of the remaining work, separately for send ports and receive
/// ports.
fn port_loads(num_nodes: usize, tasks: &[CommTask], remaining: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut send = vec![0.0; num_nodes];
    let mut recv = vec![0.0; num_nodes];
    for (t, &r) in tasks.iter().zip(remaining) {
        if r > EPS {
            send[t.src.index()] += r;
            recv[t.dst.index()] += r;
        }
    }
    (send, recv)
}

/// Finds a matching (one task per send port, one per receive port) covering
/// every critical port. `critical_send[i]`/`critical_recv[i]` flag the ports
/// whose load equals the current maximum.
///
/// The construction is the classical one: start from a maximum matching, then
/// for every uncovered critical port flip an alternating path that ends, with
/// a matching edge, at a *non-critical* port of the same side. Such a path
/// always exists when the critical ports carry the maximum load, so the
/// returned matching covers every critical port.
fn critical_matching(
    num_nodes: usize,
    tasks: &[CommTask],
    remaining: &[f64],
    critical_send: &[bool],
    critical_recv: &[bool],
) -> Vec<Option<usize>> {
    // matched_send[s] = task index currently matched at send port s.
    let mut matched_send: Vec<Option<usize>> = vec![None; num_nodes];
    let mut matched_recv: Vec<Option<usize>> = vec![None; num_nodes];

    // Incidence lists restricted to tasks with work left.
    let mut by_send: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    let mut by_recv: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for (i, t) in tasks.iter().enumerate() {
        if remaining[i] > EPS {
            by_send[t.src.index()].push(i);
            by_recv[t.dst.index()].push(i);
        }
    }

    // Standard augmenting-path maximum matching built from the send side.
    fn try_augment(
        s: usize,
        by_send: &[Vec<usize>],
        tasks: &[CommTask],
        matched_send: &mut Vec<Option<usize>>,
        matched_recv: &mut Vec<Option<usize>>,
        visited_recv: &mut Vec<bool>,
    ) -> bool {
        for &task_idx in &by_send[s] {
            let r = tasks[task_idx].dst.index();
            if visited_recv[r] {
                continue;
            }
            visited_recv[r] = true;
            let free = match matched_recv[r] {
                None => true,
                Some(other_task) => {
                    let other_send = tasks[other_task].src.index();
                    try_augment(
                        other_send,
                        by_send,
                        tasks,
                        matched_send,
                        matched_recv,
                        visited_recv,
                    )
                }
            };
            if free {
                matched_send[s] = Some(task_idx);
                matched_recv[r] = Some(task_idx);
                return true;
            }
        }
        false
    }

    for s in 0..num_nodes {
        if by_send[s].is_empty() || matched_send[s].is_some() {
            continue;
        }
        let mut visited = vec![false; num_nodes];
        try_augment(
            s,
            &by_send,
            tasks,
            &mut matched_send,
            &mut matched_recv,
            &mut visited,
        );
    }

    // Repair from the send side: cover every critical, uncovered send port by
    // flipping an alternating path  s0 -e1- r1 -m1- s1 -e2- r2 -m2- s2 ...
    // that stops at the first s_k which is non-critical (s_k loses its match,
    // everything else stays covered and s0 becomes covered).
    repair_side(
        num_nodes,
        tasks,
        critical_send,
        &by_send,
        &mut matched_send,
        &mut matched_recv,
        true,
    );
    // Symmetric repair from the receive side.
    repair_side(
        num_nodes,
        tasks,
        critical_recv,
        &by_recv,
        &mut matched_recv,
        &mut matched_send,
        false,
    );

    matched_send
}

/// Flips alternating paths so that every critical port of one side becomes
/// covered. `incidence` lists the usable tasks per port of that side;
/// `matched_this` / `matched_other` are the matching maps of this side and of
/// the opposite side. `from_send_side` selects how task endpoints map to the
/// two sides.
#[allow(clippy::too_many_arguments)]
fn repair_side(
    num_nodes: usize,
    tasks: &[CommTask],
    critical: &[bool],
    incidence: &[Vec<usize>],
    matched_this: &mut [Option<usize>],
    matched_other: &mut [Option<usize>],
    from_send_side: bool,
) {
    let this_port = |task: &CommTask| {
        if from_send_side {
            task.src.index()
        } else {
            task.dst.index()
        }
    };
    let other_port = |task: &CommTask| {
        if from_send_side {
            task.dst.index()
        } else {
            task.src.index()
        }
    };

    for start in 0..num_nodes {
        if !critical[start] || matched_this[start].is_some() || incidence[start].is_empty() {
            continue;
        }
        // DFS over alternating paths. Stack entries: (port on this side, path
        // of (non-matching task, matching task) pairs used to reach it).
        let mut visited_this = vec![false; num_nodes];
        visited_this[start] = true;
        let mut stack: Vec<(usize, Vec<(usize, usize)>)> = vec![(start, Vec::new())];
        'dfs: while let Some((s, path)) = stack.pop() {
            for &e in &incidence[s] {
                let r = other_port(&tasks[e]);
                match matched_other[r] {
                    None => {
                        // Augmenting path: flip the non-matching edges.
                        apply_flip(
                            &path,
                            tasks,
                            matched_this,
                            matched_other,
                            this_port,
                            other_port,
                            None,
                        );
                        matched_this[s] = Some(e);
                        matched_other[r] = Some(e);
                        // `start` is covered through the flipped path (or is
                        // `s` itself when the path is empty).
                        break 'dfs;
                    }
                    Some(m) => {
                        let s_next = this_port(&tasks[m]);
                        if s_next == s || visited_this[s_next] {
                            continue;
                        }
                        let mut new_path = path.clone();
                        new_path.push((e, m));
                        if !critical[s_next] {
                            // Flip: s_next gives up its match, every other
                            // port on the path stays covered, start is now
                            // covered.
                            apply_flip(
                                &new_path,
                                tasks,
                                matched_this,
                                matched_other,
                                this_port,
                                other_port,
                                Some(s_next),
                            );
                            break 'dfs;
                        }
                        visited_this[s_next] = true;
                        stack.push((s_next, new_path));
                    }
                }
            }
        }
    }
}

/// Applies the flip of an alternating path described by `(non_matching_task,
/// matching_task)` pairs: each non-matching task becomes matched, each
/// matching task becomes unmatched, and `released` (if any) ends up uncovered
/// on "this" side.
fn apply_flip(
    path: &[(usize, usize)],
    tasks: &[CommTask],
    matched_this: &mut [Option<usize>],
    matched_other: &mut [Option<usize>],
    this_port: impl Fn(&CommTask) -> usize,
    other_port: impl Fn(&CommTask) -> usize,
    released: Option<usize>,
) {
    for &(e, _m) in path {
        let sp = this_port(&tasks[e]);
        let rp = other_port(&tasks[e]);
        matched_this[sp] = Some(e);
        matched_other[rp] = Some(e);
    }
    if let Some(rel) = released {
        // The released port's former matching task is superseded above; only
        // clear it if nothing re-matched it (it is the last port of the path).
        let still = matched_this[rel];
        if let Some(task_idx) = still {
            let rp = other_port(&tasks[task_idx]);
            if matched_other[rp] != Some(task_idx) {
                matched_this[rel] = None;
            } else {
                // The path did not actually go through `rel`'s match; keep it.
            }
        }
    }
}

/// Schedules all tasks preemptively under the one-port model.
///
/// The resulting makespan equals the maximum port load whenever the matching
/// extraction succeeds in covering every critical port at every step (which
/// the König argument guarantees for bipartite multigraphs); a small safety
/// margin above the bound can appear on numerically degenerate inputs, and
/// [`ColoredSchedule::validate`] always holds.
pub fn schedule_tasks(num_nodes: usize, tasks: &[CommTask]) -> ColoredSchedule {
    let mut remaining: Vec<f64> = tasks.iter().map(|t| t.duration.max(0.0)).collect();
    let mut slots = Vec::new();
    let mut makespan = 0.0;

    let max_slots = 4 * (tasks.len() + 1) * (num_nodes + 1);
    for _ in 0..max_slots {
        let (send, recv) = port_loads(num_nodes, tasks, &remaining);
        let max_load = send.iter().chain(recv.iter()).copied().fold(0.0, f64::max);
        if max_load <= EPS {
            break;
        }
        let critical_send: Vec<bool> = send.iter().map(|&l| l >= max_load - EPS).collect();
        let critical_recv: Vec<bool> = recv.iter().map(|&l| l >= max_load - EPS).collect();

        let matched_send =
            critical_matching(num_nodes, tasks, &remaining, &critical_send, &critical_recv);
        let matched: Vec<usize> = matched_send.iter().filter_map(|&m| m).collect();
        if matched.is_empty() {
            break;
        }

        // Largest slot duration that keeps the critical ports critical:
        //  - no matched task may run longer than its remaining duration,
        //  - no uncovered port may become the (strictly) most loaded port.
        let mut delta = matched
            .iter()
            .map(|&i| remaining[i])
            .fold(f64::INFINITY, f64::min);
        let mut covered_send = vec![false; num_nodes];
        let mut covered_recv = vec![false; num_nodes];
        for &i in &matched {
            covered_send[tasks[i].src.index()] = true;
            covered_recv[tasks[i].dst.index()] = true;
        }
        let mut uncovered_max: f64 = 0.0;
        for v in 0..num_nodes {
            if !covered_send[v] {
                uncovered_max = uncovered_max.max(send[v]);
            }
            if !covered_recv[v] {
                uncovered_max = uncovered_max.max(recv[v]);
            }
        }
        let slack = max_load - uncovered_max;
        if uncovered_max > EPS && slack > EPS {
            delta = delta.min(slack);
        }
        if !delta.is_finite() || delta <= 0.0 {
            break;
        }

        let assignments: Vec<(usize, f64)> = matched
            .iter()
            .map(|&i| {
                let used = delta.min(remaining[i]);
                (i, used)
            })
            .collect();
        for &(i, used) in &assignments {
            remaining[i] -= used;
            if remaining[i] < EPS {
                remaining[i] = 0.0;
            }
        }
        makespan += delta;
        slots.push(ColorSlot {
            duration: delta,
            assignments,
        });
    }

    ColoredSchedule { makespan, slots }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(src: u32, dst: u32, duration: f64) -> CommTask {
        CommTask {
            src: NodeId(src),
            dst: NodeId(dst),
            duration,
            tag: 0,
        }
    }

    fn max_port_load(num_nodes: usize, tasks: &[CommTask]) -> f64 {
        let remaining: Vec<f64> = tasks.iter().map(|t| t.duration).collect();
        let (send, recv) = port_loads(num_nodes, tasks, &remaining);
        send.iter().chain(recv.iter()).copied().fold(0.0, f64::max)
    }

    #[test]
    fn single_task_takes_its_duration() {
        let tasks = vec![task(0, 1, 2.5)];
        let sched = schedule_tasks(2, &tasks);
        assert!((sched.makespan - 2.5).abs() < 1e-9);
        assert!(sched.validate(&tasks, 1e-9));
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let tasks = vec![task(0, 1, 1.0), task(2, 3, 1.0)];
        let sched = schedule_tasks(4, &tasks);
        assert!((sched.makespan - 1.0).abs() < 1e-9);
        assert!(sched.validate(&tasks, 1e-9));
        assert_eq!(sched.slots.len(), 1);
        assert_eq!(sched.slots[0].assignments.len(), 2);
    }

    #[test]
    fn same_sender_tasks_are_serialized() {
        let tasks = vec![task(0, 1, 1.0), task(0, 2, 2.0)];
        let sched = schedule_tasks(3, &tasks);
        assert!((sched.makespan - 3.0).abs() < 1e-9);
        assert!(sched.validate(&tasks, 1e-9));
    }

    #[test]
    fn same_receiver_tasks_are_serialized() {
        let tasks = vec![task(0, 2, 1.5), task(1, 2, 0.5)];
        let sched = schedule_tasks(3, &tasks);
        assert!((sched.makespan - 2.0).abs() < 1e-9);
        assert!(sched.validate(&tasks, 1e-9));
    }

    #[test]
    fn send_and_receive_can_overlap_on_the_same_node() {
        // Node 1 receives from 0 and sends to 2: legal simultaneously.
        let tasks = vec![task(0, 1, 1.0), task(1, 2, 1.0)];
        let sched = schedule_tasks(3, &tasks);
        assert!((sched.makespan - 1.0).abs() < 1e-9);
        assert!(sched.validate(&tasks, 1e-9));
    }

    #[test]
    fn ring_exchange_achieves_the_port_load_bound() {
        // 0 -> 1, 1 -> 2, 2 -> 0, all duration 1: perfectly parallel.
        let tasks = vec![task(0, 1, 1.0), task(1, 2, 1.0), task(2, 0, 1.0)];
        let sched = schedule_tasks(3, &tasks);
        assert!((sched.makespan - 1.0).abs() < 1e-9);
        assert!(sched.validate(&tasks, 1e-9));
    }

    #[test]
    fn figure1_like_mix_meets_the_bound() {
        // The per-edge occupations of the optimal Figure 1 solution (one
        // time-unit of steady state): max port load is exactly 1.
        let tasks = vec![
            task(0, 1, 0.5),
            task(0, 3, 0.5),
            task(3, 2, 0.5),
            task(2, 1, 0.5),
            task(3, 4, 0.5),
            task(4, 5, 1.0),
            task(5, 6, 0.5),
            task(2, 6, 0.5),
            task(6, 7, 1.0),
            task(1, 11, 1.0),
            task(7, 8, 0.2),
            task(7, 9, 0.2),
            task(7, 10, 0.2),
            task(11, 12, 0.1),
            task(11, 13, 0.1),
        ];
        let bound = max_port_load(14, &tasks);
        assert!((bound - 1.0).abs() < 1e-9);
        let sched = schedule_tasks(14, &tasks);
        assert!(sched.validate(&tasks, 1e-9));
        assert!(
            sched.makespan <= bound + 1e-6,
            "makespan {} exceeds the König bound {}",
            sched.makespan,
            bound
        );
    }

    #[test]
    fn zero_duration_tasks_are_ignored() {
        let tasks = vec![task(0, 1, 0.0), task(0, 2, 1.0)];
        let sched = schedule_tasks(3, &tasks);
        assert!((sched.makespan - 1.0).abs() < 1e-9);
        assert!(sched.validate(&tasks, 1e-9));
    }

    #[test]
    fn randomised_instances_meet_the_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..10usize);
            let m = rng.gen_range(1..25usize);
            let tasks: Vec<CommTask> = (0..m)
                .map(|_| {
                    let src = rng.gen_range(0..n) as u32;
                    let mut dst = rng.gen_range(0..n) as u32;
                    while dst == src {
                        dst = rng.gen_range(0..n) as u32;
                    }
                    task(src, dst, rng.gen_range(0.05..2.0))
                })
                .collect();
            let bound = max_port_load(n, &tasks);
            let sched = schedule_tasks(n, &tasks);
            assert!(
                sched.validate(&tasks, 1e-7),
                "seed {seed}: invalid schedule"
            );
            assert!(
                sched.makespan <= bound * (1.0 + 1e-6) + 1e-6,
                "seed {seed}: makespan {} exceeds bound {}",
                sched.makespan,
                bound
            );
        }
    }
}
