//! # pm-sched
//!
//! Scheduling primitives for the *Series of Multicasts* problem under the
//! one-port model:
//!
//! * [`tree`] — multicast trees and weighted combinations of trees, with the
//!   per-node send/receive occupation they induce in steady state (the
//!   quantity the paper's heuristics minimize),
//! * [`load`] — one-port port-occupation accounting shared by trees, LP flows
//!   and schedules,
//! * [`coloring`] — the weighted bipartite edge-coloring (König) procedure
//!   used in the paper's NP-membership proofs to orchestrate all the
//!   communications of a period without violating the one-port constraints,
//! * [`schedule`] — explicit periodic schedules built from weighted tree sets
//!   via the coloring, ready to be replayed by the `pm-sim` simulator.

#![deny(missing_docs)]

pub mod coloring;
pub mod load;
pub mod schedule;
pub mod tree;

pub use coloring::{schedule_tasks, ColoredSchedule, CommTask};
pub use load::OnePortLoads;
pub use schedule::{PeriodicSchedule, ScheduleError, ScheduleSlot, Transfer};
pub use tree::{cancel_flow_cycles, MulticastTree, TreeError, WeightedTreeSet};
