//! Differential test: on random platforms, the masked formulations
//! (`pm_core::masked`, bound-update re-solves of one full-platform template)
//! and the rebuild path (`MulticastInstance::restrict_to` + the
//! `pm_core::formulations` LPs on the re-indexed sub-platform) must agree on
//! status and period for all four formulations — including when the masked
//! solve warm-starts from the basis of a *different* mask, which exercises
//! the bound-repair path in `pm-lp`.

use pm_core::formulations::{
    BroadcastEb, FormulationError, MulticastLb, MulticastMultiSourceUb, MulticastUb,
};
use pm_core::masked::{MaskedFlowLp, MaskedMultiSourceUb};
use pm_platform::graph::{NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use pm_platform::mask::NodeMask;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Period tolerance: both paths solve the same LP (over different standard
/// forms), so the optima agree to solver accuracy.
const TOL: f64 = 1e-9;

struct Case {
    instance: MulticastInstance,
    mask: NodeMask,
    /// An ordered multi-source selection over active nodes, starting with
    /// the instance source.
    sources: Vec<NodeId>,
}

/// A random platform whose full graph reaches every node from node 0 (a
/// random arborescence plus random extra edges), a random target set, a
/// random mask keeping the source and targets, and a random source list.
/// Masked sub-platforms may well be disconnected — that is on purpose: the
/// status agreement (Ok vs Unreachable) is part of the contract.
fn random_case(seed: u64) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(4usize..9);
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    for i in 1..n {
        let parent = nodes[rng.gen_range(0..i)];
        let cost = rng.gen_range(0.2..2.0);
        b.add_edge(parent, nodes[i], cost).unwrap();
    }
    for _ in 0..rng.gen_range(n..3 * n) {
        let a = nodes[rng.gen_range(0..n)];
        let c = nodes[rng.gen_range(0..n)];
        if a != c {
            // Duplicate edges are rejected by the builder; just skip them.
            let _ = b.add_edge(a, c, rng.gen_range(0.2..2.0));
        }
    }
    let platform = b.build().unwrap();
    let source = nodes[0];
    let mut targets: Vec<NodeId> = nodes[1..]
        .iter()
        .copied()
        .filter(|_| rng.gen_range(0u32..100) < 40)
        .collect();
    if targets.is_empty() {
        targets.push(nodes[rng.gen_range(1..n)]);
    }
    let instance = MulticastInstance::new(platform, source, targets).unwrap();

    let mut mask = NodeMask::from_nodes(
        n,
        std::iter::once(source).chain(instance.targets.iter().copied()),
    );
    for &v in &nodes {
        if !mask.contains(v) && rng.gen_range(0u32..100) < 70 {
            mask.insert(v);
        }
    }

    let mut sources = vec![source];
    for _ in 0..rng.gen_range(0usize..3) {
        let v = nodes[rng.gen_range(0..n)];
        if mask.contains(v) && !sources.contains(&v) {
            sources.push(v);
        }
    }
    Case {
        instance,
        mask,
        sources,
    }
}

/// Statuses must agree by variant; periods within [`TOL`] when both solve.
fn check_agreement(
    label: &str,
    seed: u64,
    masked: Result<f64, &FormulationError>,
    rebuilt: Result<f64, &FormulationError>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    match (masked, rebuilt) {
        (Ok(a), Ok(b)) => {
            prop_assert!(
                (a - b).abs() <= TOL,
                "{label} (seed {seed}): masked period {a} vs rebuilt {b}"
            );
        }
        (Err(FormulationError::Unreachable(_)), Err(FormulationError::Unreachable(_))) => {}
        (m, r) => {
            prop_assert!(
                false,
                "{label} (seed {seed}): masked {m:?} vs rebuilt {r:?}"
            );
        }
    }
    Ok(())
}

/// The rebuild path for a sub-platform: restrict the instance to the mask's
/// active nodes (the source and all targets are active by construction).
fn rebuilt_instance(case: &Case) -> MulticastInstance {
    // `restrict_to` renumbers nodes in `keep` order; reachability of the
    // targets is NOT validated here — the formulations report Unreachable
    // themselves, exactly like the masked pre-check.
    let keep = case.mask.to_nodes();
    let (platform, old_to_new, _) = case.instance.platform.induced_subgraph(&keep);
    MulticastInstance {
        platform,
        source: old_to_new[&case.instance.source],
        targets: case
            .instance
            .targets
            .iter()
            .map(|t| old_to_new[t])
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn masked_formulations_agree_with_rebuilds(seed in 0u64..1_000_000) {
        let case = random_case(seed);
        let inst = &case.instance;
        let sub = rebuilt_instance(&case);

        // Broadcast-EB.
        let masked = MaskedFlowLp::broadcast_eb(inst).solve(&case.mask, None);
        let rebuilt = BroadcastEb::new(&sub).solve();
        check_agreement(
            "broadcast_eb",
            seed,
            masked.as_ref().map(|o| o.flow.period),
            rebuilt.as_ref().map(|s| s.period),
        )?;

        // Multicast-LB.
        let masked = MaskedFlowLp::multicast_lb(inst).solve(&case.mask, None);
        let rebuilt = MulticastLb::new(&sub).solve();
        check_agreement(
            "multicast_lb",
            seed,
            masked.as_ref().map(|o| o.flow.period),
            rebuilt.as_ref().map(|s| s.period),
        )?;

        // Multicast-UB.
        let masked = MaskedFlowLp::multicast_ub(inst).solve(&case.mask, None);
        let rebuilt = MulticastUb::new(&sub).solve();
        check_agreement(
            "multicast_ub",
            seed,
            masked.as_ref().map(|o| o.flow.period),
            rebuilt.as_ref().map(|s| s.period),
        )?;

        // MulticastMultiSource-UB: the sources renumbered into the rebuilt
        // id space (keep order == sorted active nodes).
        let keep = case.mask.to_nodes();
        let mapped: Vec<NodeId> = case
            .sources
            .iter()
            .map(|s| NodeId(keep.binary_search(s).unwrap() as u32))
            .collect();
        let masked = MaskedMultiSourceUb::new(inst).solve(&case.mask, &case.sources, None);
        let rebuilt = MulticastMultiSourceUb::new(&sub, mapped)
            .expect("mapped source list is valid")
            .solve();
        check_agreement(
            "multisource_ub",
            seed,
            masked.as_ref().map(|o| o.solution.period),
            rebuilt.as_ref().map(|s| s.period),
        )?;
    }

    #[test]
    fn masked_warm_chains_agree_with_rebuilds(seed in 0u64..1_000_000) {
        // Solve the full platform first, then the masked sub-platform
        // warm-started from the full-platform basis: the bound-repair path
        // must not change the optimum.
        let case = random_case(seed);
        let inst = &case.instance;
        let sub = rebuilt_instance(&case);
        let full = NodeMask::full(inst.platform.node_count());

        let template = MaskedFlowLp::broadcast_eb(inst);
        let first = template.solve(&full, None).expect("full platform solves");
        let masked = template.solve(&case.mask, Some(&first.basis));
        let rebuilt = BroadcastEb::new(&sub).solve();
        check_agreement(
            "broadcast_eb_warm",
            seed,
            masked.as_ref().map(|o| o.flow.period),
            rebuilt.as_ref().map(|s| s.period),
        )?;

        let template = MaskedMultiSourceUb::new(inst);
        let first = template
            .solve(&full, &[inst.source], None)
            .expect("single-source multisource solves on the full platform");
        let keep = case.mask.to_nodes();
        let mapped: Vec<NodeId> = case
            .sources
            .iter()
            .map(|s| NodeId(keep.binary_search(s).unwrap() as u32))
            .collect();
        let masked = template.solve(&case.mask, &case.sources, Some(&first.basis));
        let rebuilt = MulticastMultiSourceUb::new(&sub, mapped)
            .expect("mapped source list is valid")
            .solve();
        check_agreement(
            "multisource_ub_warm",
            seed,
            masked.as_ref().map(|o| o.solution.period),
            rebuilt.as_ref().map(|s| s.period),
        )?;
    }
}
