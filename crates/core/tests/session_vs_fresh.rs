//! Differential proptest for the stateful session API: after a random
//! sequence of edge-cost edits and node enable/disable events, an
//! incremental [`Session`] — reusing its templates, dirty-cost deltas and
//! warm bases across the whole history — must agree with a *fresh* session
//! built directly on the mutated platform, for all four formulations:
//!
//! * status parity (`Ok` vs `Unreachable`/`InvalidArgument`) — random
//!   churn may legitimately disconnect the platform, and both paths must
//!   say so identically,
//! * period within `1e-9` (both solve the same LP; the optimum is unique
//!   even when the optimal vertex is not),
//! * realizations on both paths replay with zero one-port violations, and
//!   the always-achievable scatter accounting certifies its claim on both.

use pm_core::report::HeuristicKind;
use pm_core::session::Session;
use pm_core::{FormulationError, RealizeError, SessionError};
use pm_platform::graph::{EdgeId, NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::Rng;

const TOL: f64 = 1e-9;

/// A random strongly-source-connected platform with a random target set
/// (the generator of `masked_vs_rebuilt`, reused).
fn random_instance(rng: &mut StdRng) -> MulticastInstance {
    let n = rng.gen_range(4usize..9);
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    for i in 1..n {
        let parent = nodes[rng.gen_range(0..i)];
        b.add_edge(parent, nodes[i], rng.gen_range(0.2..2.0))
            .unwrap();
    }
    for _ in 0..rng.gen_range(n..3 * n) {
        let a = nodes[rng.gen_range(0..n)];
        let c = nodes[rng.gen_range(0..n)];
        if a != c {
            // Duplicate edges are rejected by the builder; just skip them.
            let _ = b.add_edge(a, c, rng.gen_range(0.2..2.0));
        }
    }
    let platform = b.build().unwrap();
    let source = nodes[0];
    let mut targets: Vec<NodeId> = nodes[1..]
        .iter()
        .copied()
        .filter(|_| rng.gen_range(0u32..100) < 40)
        .collect();
    if targets.is_empty() {
        targets.push(nodes[rng.gen_range(1..n)]);
    }
    MulticastInstance::new(platform, source, targets).unwrap()
}

/// Applies a random mutation trace to the live session, mirroring it on a
/// shadow copy of the platform state (mutated instance + disabled set).
fn apply_random_events(
    session: &mut Session,
    shadow_instance: &mut MulticastInstance,
    disabled: &mut Vec<NodeId>,
    rng: &mut StdRng,
    events: usize,
) {
    let m = shadow_instance.platform.edge_count();
    let n = shadow_instance.platform.node_count();
    for _ in 0..events {
        match rng.gen_range(0u32..100) {
            // Edge-cost walk.
            0..=59 => {
                let e = EdgeId(rng.gen_range(0..m) as u32);
                let factor: f64 = rng.gen_range(0.5..2.0);
                let cost = (shadow_instance.platform.cost(e) * factor).clamp(0.05, 20.0);
                session.set_edge_cost(e, cost).unwrap();
                shadow_instance.platform.set_cost(e, cost).unwrap();
            }
            // Disable a random non-source, non-target node — possibly
            // disconnecting the platform (status parity is part of the
            // contract, so no reachability pre-check here).
            60..=79 => {
                let v = NodeId(rng.gen_range(0..n) as u32);
                if v != shadow_instance.source
                    && !shadow_instance.is_target(v)
                    && session.disable_node(v).unwrap()
                {
                    disabled.push(v);
                }
            }
            // Re-enable a random disabled node.
            _ => {
                if !disabled.is_empty() {
                    let i = rng.gen_range(0..disabled.len());
                    let v = disabled.swap_remove(i);
                    session.enable_node(v).unwrap();
                }
            }
        }
    }
}

/// A fresh session on the mutated platform: the one-shot oracle.
fn fresh_session(shadow_instance: &MulticastInstance, disabled: &[NodeId]) -> Session {
    let mut fresh = Session::new(shadow_instance.clone());
    for &v in disabled {
        fresh.disable_node(v).unwrap();
    }
    fresh
}

fn assert_solve_parity(
    kind: HeuristicKind,
    live: &mut Session,
    fresh: &mut Session,
) -> Result<(), TestCaseError> {
    let a = live.solve(kind);
    let b = fresh.solve(kind);
    match (&a, &b) {
        (Ok(a), Ok(b)) => {
            prop_assert!(
                (a.result.period - b.result.period).abs() <= TOL
                    || (a.result.period.is_infinite() && b.result.period.is_infinite()),
                "{kind:?}: incremental period {} vs fresh {}",
                a.result.period,
                b.result.period
            );
        }
        (
            Err(SessionError::Formulation(FormulationError::Unreachable(_))),
            Err(SessionError::Formulation(FormulationError::Unreachable(_))),
        ) => {}
        _ => {
            prop_assert!(false, "{kind:?}: status mismatch {a:?} vs {b:?}");
        }
    }
    // Both realized schedules must replay violation-free; the scatter
    // accounting additionally certifies its claimed period on both paths.
    if a.is_ok() {
        let live_real = live.re_realize(kind);
        let fresh_real = fresh.re_realize(kind);
        match (&live_real, &fresh_real) {
            (Ok(lr), Ok(fr)) => {
                prop_assert_eq!(lr.realization.simulated.one_port_violations, 0);
                prop_assert_eq!(fr.realization.simulated.one_port_violations, 0);
                if kind == HeuristicKind::Scatter {
                    prop_assert!(lr.realization.realization_gap < 1e-6);
                    prop_assert!(fr.realization.realization_gap < 1e-6);
                }
            }
            (
                Err(SessionError::Realize(RealizeError::NotRealizable(_))),
                Err(SessionError::Realize(RealizeError::NotRealizable(_))),
            ) => {}
            _ => {
                prop_assert!(
                    false,
                    "{kind:?}: realization status mismatch {live_real:?} vs {fresh_real:?}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The three single-source formulations plus realization, after a random
    // mutation history. The live session realized once *before* the drift,
    // so its post-drift realization exercises the seeded tree pool and the
    // transition-cost path as well.
    #[test]
    fn session_agrees_with_fresh_after_random_drift(
        seed in 0u64..1_000_000,
        events in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = random_instance(&mut rng);
        let mut live = Session::new(instance.clone());
        // Pre-drift baseline: solve + realize so the post-drift realization
        // seeds from the old pool and reports a transition.
        for kind in [HeuristicKind::Scatter, HeuristicKind::Broadcast] {
            if live.solve(kind).is_ok() {
                let _ = live.re_realize(kind);
            }
        }

        let mut shadow_instance = instance;
        let mut disabled = Vec::new();
        apply_random_events(&mut live, &mut shadow_instance, &mut disabled, &mut rng, events);
        let mut fresh = fresh_session(&shadow_instance, &disabled);

        for kind in [
            HeuristicKind::Scatter,
            HeuristicKind::LowerBound,
            HeuristicKind::Broadcast,
        ] {
            assert_solve_parity(kind, &mut live, &mut fresh)?;
        }
    }

    // The fourth formulation: the multi-source scatter with an explicit
    // random source selection over the post-drift active nodes.
    #[test]
    fn multisource_formulation_agrees_with_fresh_after_random_drift(
        seed in 0u64..1_000_000,
        events in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
        let instance = random_instance(&mut rng);
        let mut live = Session::new(instance.clone());
        // A pre-drift solve seeds the multi-source basis.
        let _ = live.solve_multisource(&[instance.source]);

        let mut shadow_instance = instance;
        let mut disabled = Vec::new();
        apply_random_events(&mut live, &mut shadow_instance, &mut disabled, &mut rng, events);
        let mut fresh = fresh_session(&shadow_instance, &disabled);

        let mut sources = vec![shadow_instance.source];
        for v in live.mask().to_nodes() {
            if v != shadow_instance.source && rng.gen_range(0u32..100) < 30 {
                sources.push(v);
            }
        }
        let a = live.solve_multisource(&sources);
        let b = fresh.solve_multisource(&sources);
        match (&a, &b) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    (a.period - b.period).abs() <= TOL,
                    "multi-source: incremental period {} vs fresh {}",
                    a.period,
                    b.period
                );
            }
            (
                Err(SessionError::Formulation(FormulationError::Unreachable(_))),
                Err(SessionError::Formulation(FormulationError::Unreachable(_))),
            ) => {}
            (
                Err(SessionError::Formulation(FormulationError::InvalidArgument(_))),
                Err(SessionError::Formulation(FormulationError::InvalidArgument(_))),
            ) => {}
            _ => {
                prop_assert!(false, "multi-source status mismatch: {a:?} vs {b:?}");
            }
        }
    }

    // The greedy heuristics through the session, on the mutated platform:
    // greedy acceptance is tie-broken by LP periods, so alternate optimal
    // *vertices* reached from different warm paths may pick different node
    // sequences — what must hold after any mutation history is what the
    // paper guarantees: no heuristic beats the `Multicast-LB` lower bound
    // of the active platform, and `AUGMENTED SOURCES` (which starts at the
    // scatter solve and only accepts non-degrading promotions) never ends
    // worse than scatter. The broadcast-family heuristics can legitimately
    // exceed scatter on adversarial random platforms — serving every node
    // costs more than serving the targets — so no upper bound is asserted
    // for them.
    #[test]
    fn greedy_session_solves_respect_the_paper_bounds(
        seed in 0u64..1_000_000,
        events in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x009d_1e55);
        let instance = random_instance(&mut rng);
        let mut live = Session::new(instance.clone());
        let mut shadow_instance = instance;
        let mut disabled = Vec::new();
        apply_random_events(&mut live, &mut shadow_instance, &mut disabled, &mut rng, events);

        let (Ok(scatter), Ok(lb)) = (
            live.solve(HeuristicKind::Scatter),
            live.solve(HeuristicKind::LowerBound),
        ) else {
            return Ok(()); // disconnected: covered by the parity test
        };
        for kind in [
            HeuristicKind::ReducedBroadcast,
            HeuristicKind::AugmentedMulticast,
            HeuristicKind::MultisourceMulticast,
        ] {
            let run = live.solve(kind);
            let Ok(run) = run else { continue };
            if run.result.period.is_finite() {
                prop_assert!(
                    run.result.period >= lb.result.period - 1e-6,
                    "{kind:?} beats the lower bound: {} < {}",
                    run.result.period,
                    lb.result.period
                );
                if kind == HeuristicKind::MultisourceMulticast {
                    prop_assert!(
                        run.result.period <= scatter.result.period + 1e-6,
                        "{kind:?} worse than scatter: {} > {}",
                        run.result.period,
                        scatter.result.period
                    );
                }
            }
        }
    }
}
