//! Property tests for the multi-commodity super-period pipeline:
//!
//! * **Per-commodity rate conservation** — on random strongly connected
//!   platforms with random concurrent demands, the realized super-period
//!   schedule replays with zero one-port violations and every commodity's
//!   simulated rate is at least its joint-LP rate minus `1e-6` (each
//!   commodity sustains its own negotiated share of the shared ports).
//! * **`k = 1` degeneration** — a single-commodity workload routed through
//!   the multi pipeline must reduce *bit-for-bit* to the existing
//!   single-commodity lower-bound pipeline: same unit period bits, the
//!   same weighted trees, the same schedule, the same simulator report.

use pm_core::multi::Commodity;
use pm_core::report::HeuristicKind;
use pm_core::session::Session;
use pm_platform::graph::{NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::Rng;

const RATE_TOL: f64 = 1e-6;
const DEMANDS: &[f64] = &[0.5, 1.0, 2.0, 4.0];

/// A random strongly connected platform: a directed ring over all nodes
/// plus random chords, so every commodity source reaches every target.
fn random_ring_platform(rng: &mut StdRng) -> (pm_platform::graph::Platform, usize) {
    let n = rng.gen_range(4usize..8);
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    for i in 0..n {
        b.add_edge(nodes[i], nodes[(i + 1) % n], rng.gen_range(0.2..2.0))
            .unwrap();
    }
    for _ in 0..rng.gen_range(n..3 * n) {
        let a = nodes[rng.gen_range(0..n)];
        let c = nodes[rng.gen_range(0..n)];
        if a != c {
            // Duplicate edges are rejected by the builder; just skip them.
            let _ = b.add_edge(a, c, rng.gen_range(0.2..2.0));
        }
    }
    (b.build().unwrap(), n)
}

/// A random workload of `1..=4` commodities with skewed demands; commodity
/// 0 doubles as the session's base instance.
fn random_workload(rng: &mut StdRng) -> (MulticastInstance, Vec<Commodity>) {
    let (platform, n) = random_ring_platform(rng);
    let k = rng.gen_range(1usize..5);
    let commodities: Vec<Commodity> = (0..k)
        .map(|_| {
            let source = rng.gen_range(0..n);
            let mut targets: Vec<NodeId> = (0..n)
                .filter(|&t| t != source)
                .filter(|_| rng.gen_range(0u32..100) < 40)
                .map(|t| NodeId(t as u32))
                .collect();
            if targets.is_empty() {
                targets.push(NodeId(((source + 1) % n) as u32));
            }
            Commodity {
                source: NodeId(source as u32),
                targets,
                demand: DEMANDS[rng.gen_range(0..DEMANDS.len())],
            }
        })
        .collect();
    let base = MulticastInstance::new(
        platform,
        commodities[0].source,
        commodities[0].targets.clone(),
    )
    .expect("ring platforms are strongly connected");
    (base, commodities)
}

fn err(message: String) -> TestCaseError {
    TestCaseError { message }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn realizations_conserve_every_commodity_rate(seed in 0u64..1_000_000_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, commodities) = random_workload(&mut rng);
        let k = commodities.len();
        let mut session = Session::new(instance);
        let solve = session
            .solve_multi(&commodities)
            .map_err(|e| err(format!("joint solve failed on a connected platform: {e}")))?;
        prop_assert_eq!(solve.flow.rates.len(), k);
        let re = session
            .re_realize_multi()
            .map_err(|e| err(format!("super-period realization failed: {e}")))?;
        let r = &re.realization;

        // The combined schedule respects the one-port model outright.
        prop_assert_eq!(r.simulated.one_port_violations, 0);
        prop_assert!(r.super_period.is_finite() && r.super_period > 0.0);

        for c in 0..k {
            // Each commodity's tag-restricted sub-schedule is also clean...
            prop_assert_eq!(r.commodity_reports[c].one_port_violations, 0);
            // ...and sustains at least the rate the joint LP negotiated.
            let lp_rate = solve.flow.rates[c];
            let simulated = r.simulated_rates[c];
            prop_assert!(
                simulated >= lp_rate - RATE_TOL,
                "commodity {} simulated rate {} missed LP rate {} (seed {})",
                c, simulated, lp_rate, seed
            );
        }
    }

    #[test]
    fn k1_degenerates_bit_for_bit_to_the_single_pipeline(seed in 0u64..1_000_000_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, commodities) = random_workload(&mut rng);
        let commodity = Commodity {
            demand: DEMANDS[rng.gen_range(0..DEMANDS.len())],
            ..commodities[0].clone()
        };

        // Multi pipeline with k = 1.
        let mut multi = Session::new(instance.clone());
        let msolve = multi
            .solve_multi(std::slice::from_ref(&commodity))
            .map_err(|e| err(format!("k=1 joint solve failed: {e}")))?;
        let mre = multi
            .re_realize_multi()
            .map_err(|e| err(format!("k=1 super-period realization failed: {e}")))?;

        // The existing single-commodity lower-bound pipeline.
        let mut single = Session::new(instance);
        let ssolve = single
            .solve(HeuristicKind::LowerBound)
            .map_err(|e| err(format!("single solve failed: {e}")))?;
        let sre = single
            .re_realize(HeuristicKind::LowerBound)
            .map_err(|e| err(format!("single realization failed: {e}")))?;

        // Bit-for-bit: the unit flow, the trees, the schedule and the
        // simulator verdict are all identical — the multi path only scales
        // the period bookkeeping by the demand.
        prop_assert!(
            msolve.flow.flows[0].period.to_bits() == ssolve.result.period.to_bits(),
            "unit periods diverge: multi {} vs single {}",
            msolve.flow.flows[0].period,
            ssolve.result.period
        );
        prop_assert_eq!(&mre.realization.tree_sets[0], &sre.realization.tree_set);
        prop_assert_eq!(&mre.realization.schedule, &sre.realization.schedule);
        prop_assert_eq!(&mre.realization.simulated, &sre.realization.simulated);
    }
}
