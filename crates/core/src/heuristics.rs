//! The paper's heuristics for the series-of-multicasts problem.
//!
//! LP-based refined heuristics (Section 5.2):
//!
//! * [`ReducedBroadcast`] — start from a broadcast on the whole platform and
//!   greedily remove the non-target nodes that contribute the least traffic,
//! * [`AugmentedMulticast`] — start from the platform restricted to
//!   `{Psource} ∪ Ptarget` and greedily add the non-target nodes that carry
//!   the most traffic in the `Multicast-LB` solution,
//! * [`AugmentedSources`] — greedily promote well-placed nodes to secondary
//!   sources in the `MulticastMultiSource-UB` formulation.
//!
//! Tree-based heuristic (Section 6):
//!
//! * [`Mcph`] — the Minimum Cost Path Heuristic revisited for the one-port
//!   steady-state metric: the "cost" of adding a path is the largest
//!   *additional send-port occupation* it causes, and costs are updated so
//!   that reusing edges already in the tree is free.
//!
//! All heuristics return a [`HeuristicResult`] reporting the period they
//! achieve (time per multicast), so that they can be compared against the
//! `scatter` upper bound and the theoretical lower bound exactly as in
//! Figure 11 of the paper.

use crate::formulations::{
    BroadcastEb, FormulationError, MulticastLb, MulticastMultiSourceUb, MulticastUb,
};
use pm_platform::algo::multi_source_bottleneck;
use pm_platform::graph::{EdgeId, NodeId};
use pm_platform::instances::MulticastInstance;
use pm_sched::tree::MulticastTree;
use serde::{Deserialize, Serialize};

/// Result of running a heuristic on an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicResult {
    /// Human-readable name of the heuristic.
    pub name: String,
    /// Achieved period (time per multicast in steady state).
    pub period: f64,
    /// Achieved throughput (`1 / period`).
    pub throughput: f64,
    /// The multicast tree built by the heuristic, when it is tree-based.
    pub tree: Option<MulticastTree>,
    /// For `REDUCED BROADCAST` / `AUGMENTED MULTICAST`: the node set of the
    /// final sub-platform; for `AUGMENTED SOURCES`: the final source list.
    pub selected_nodes: Vec<NodeId>,
    /// Number of linear programs solved along the way.
    pub lp_solves: usize,
}

impl HeuristicResult {
    fn new(name: &str, period: f64) -> Self {
        HeuristicResult {
            name: name.to_string(),
            period,
            throughput: if period > 0.0 {
                1.0 / period
            } else {
                f64::INFINITY
            },
            tree: None,
            selected_nodes: Vec::new(),
            lp_solves: 0,
        }
    }
}

/// Common interface of all the heuristics.
pub trait ThroughputHeuristic {
    /// Name used in reports and experiment tables.
    fn name(&self) -> &'static str;
    /// Runs the heuristic on an instance.
    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError>;
}

/// Upper limit on greedy iterations, as a safety net (the greedy loops are
/// already bounded by the platform size).
const MAX_GREEDY_STEPS: usize = 256;

fn broadcast_period_on(
    instance: &MulticastInstance,
    keep: &[NodeId],
    lp_solves: &mut usize,
) -> f64 {
    *lp_solves += 1;
    match instance.restrict_to(keep) {
        Ok(sub) => match BroadcastEb::new(&sub).solve() {
            Ok(sol) => sol.period,
            Err(_) => f64::INFINITY,
        },
        Err(_) => f64::INFINITY,
    }
}

/// `REDUCED BROADCAST` (Figure 6): repeatedly remove the non-target,
/// non-source node with the smallest incoming traffic in the current
/// `Broadcast-EB` solution, as long as the broadcast period on the reduced
/// platform does not degrade.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReducedBroadcast;

impl ThroughputHeuristic for ReducedBroadcast {
    fn name(&self) -> &'static str {
        "Red. BC"
    }

    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        let platform = &instance.platform;
        let mut lp_solves = 0usize;
        let mut kept: Vec<NodeId> = platform.nodes().collect();
        lp_solves += 1;
        let mut best = match BroadcastEb::new(instance).solve() {
            Ok(sol) => sol.period,
            Err(FormulationError::Unreachable(_)) => f64::INFINITY,
            Err(e) => return Err(e),
        };
        let mut improvement = true;
        let mut steps = 0;
        while improvement && steps < MAX_GREEDY_STEPS {
            steps += 1;
            improvement = false;
            // Score candidates with the current sub-platform's broadcast flows.
            let current = instance.restrict_to(&kept).map_err(|_| {
                FormulationError::InvalidArgument("source or target removed".to_string())
            })?;
            lp_solves += 1;
            let scores = match BroadcastEb::new(&current).solve() {
                Ok(sol) => sol,
                Err(_) => break,
            };
            let mut candidates: Vec<(f64, NodeId)> = kept
                .iter()
                .copied()
                .filter(|&v| v != instance.source && !instance.is_target(v))
                .map(|v| {
                    // Node ids in `current` follow the order of `kept`.
                    let local = NodeId(kept.iter().position(|&k| k == v).unwrap() as u32);
                    (scores.incoming_flow_score(&current.platform, local), v)
                })
                .collect();
            candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (_, node) in candidates {
                let reduced: Vec<NodeId> = kept.iter().copied().filter(|&v| v != node).collect();
                let period = broadcast_period_on(instance, &reduced, &mut lp_solves);
                if period <= best + 1e-9 {
                    best = best.min(period);
                    kept = reduced;
                    improvement = true;
                    break;
                }
            }
        }
        let mut result = HeuristicResult::new(self.name(), best);
        result.selected_nodes = kept;
        result.lp_solves = lp_solves;
        Ok(result)
    }
}

/// `AUGMENTED MULTICAST` (Figure 7): start from the platform restricted to
/// the source and the targets, and greedily add the node with the largest
/// incoming traffic in the full-platform `Multicast-LB` solution as long as
/// the broadcast period on the augmented platform does not degrade.
#[derive(Debug, Clone, Copy, Default)]
pub struct AugmentedMulticast;

impl ThroughputHeuristic for AugmentedMulticast {
    fn name(&self) -> &'static str {
        "Augm. MC"
    }

    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        let platform = &instance.platform;
        let mut lp_solves = 0usize;
        let mut kept: Vec<NodeId> = std::iter::once(instance.source)
            .chain(instance.targets.iter().copied())
            .collect();
        let mut best = broadcast_period_on(instance, &kept, &mut lp_solves);

        // Candidate scores come from the Multicast-LB solution on the whole
        // platform and are computed once.
        lp_solves += 1;
        let lb = MulticastLb::new(instance).solve()?;
        let mut candidates: Vec<(f64, NodeId)> = platform
            .nodes()
            .filter(|&v| v != instance.source && !instance.is_target(v))
            .map(|v| (lb.incoming_flow_score(platform, v), v))
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

        let mut improvement = true;
        let mut steps = 0;
        while improvement && steps < MAX_GREEDY_STEPS {
            steps += 1;
            improvement = false;
            for &(_, node) in &candidates {
                if kept.contains(&node) {
                    continue;
                }
                let mut augmented = kept.clone();
                augmented.push(node);
                let period = broadcast_period_on(instance, &augmented, &mut lp_solves);
                if period <= best + 1e-9 {
                    best = best.min(period);
                    kept = augmented;
                    improvement = true;
                    break;
                }
            }
        }
        let mut result = HeuristicResult::new(self.name(), best);
        result.selected_nodes = kept;
        result.lp_solves = lp_solves;
        Ok(result)
    }
}

/// `AUGMENTED SOURCES` (Figure 8): greedily promote the node with the largest
/// incoming traffic in the current `MulticastMultiSource-UB` solution to a
/// secondary source, as long as the period does not degrade.
#[derive(Debug, Clone, Copy, Default)]
pub struct AugmentedSources {
    /// Optional cap on the number of secondary sources (0 = no cap). Useful
    /// to bound the LP sizes on large platforms.
    pub max_secondary_sources: usize,
}

impl ThroughputHeuristic for AugmentedSources {
    fn name(&self) -> &'static str {
        "Multisource MC"
    }

    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        let platform = &instance.platform;
        let mut lp_solves = 0usize;
        let mut sources = vec![instance.source];
        lp_solves += 1;
        let mut current = MulticastMultiSourceUb::new(instance, sources.clone())?.solve()?;
        let mut best = current.period;

        let mut improvement = true;
        let mut steps = 0;
        while improvement && steps < MAX_GREEDY_STEPS {
            steps += 1;
            improvement = false;
            if self.max_secondary_sources > 0 && sources.len() > self.max_secondary_sources {
                break;
            }
            // Every target is already a source: nothing left to promote.
            let mut candidates: Vec<(f64, NodeId)> = platform
                .nodes()
                .filter(|v| !sources.contains(v))
                .map(|v| (current.incoming_score[v.index()], v))
                .collect();
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            for &(_, node) in &candidates {
                let mut extended = sources.clone();
                extended.push(node);
                // Promoting the last remaining non-source target would leave
                // the formulation without destinations; skip such candidates.
                let formulation = match MulticastMultiSourceUb::new(instance, extended.clone()) {
                    Ok(f) => f,
                    Err(_) => continue,
                };
                lp_solves += 1;
                let sol = match formulation.solve() {
                    Ok(s) => s,
                    Err(FormulationError::InvalidArgument(_)) => continue,
                    Err(_) => continue,
                };
                if sol.period <= best + 1e-9 {
                    best = best.min(sol.period);
                    sources = extended;
                    current = sol;
                    improvement = true;
                    break;
                }
            }
        }
        let mut result = HeuristicResult::new(self.name(), best);
        result.selected_nodes = sources;
        result.lp_solves = lp_solves;
        Ok(result)
    }
}

/// The tree-based `MCPH` heuristic (Figure 9), adapted from the Minimum Cost
/// Path Heuristic for Steiner trees to the one-port steady-state metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcph;

impl Mcph {
    /// Builds the multicast tree chosen by the heuristic.
    pub fn build_tree(
        &self,
        instance: &MulticastInstance,
    ) -> Result<MulticastTree, FormulationError> {
        let platform = &instance.platform;
        // Modifiable edge costs: edges already carrying the message are free,
        // and adding a new outgoing edge to a node that already sends data
        // accounts for the serialization of its send port.
        let mut cost: Vec<f64> = platform.edge_ids().map(|e| platform.cost(e)).collect();
        let mut tree_nodes: Vec<NodeId> = vec![instance.source];
        let mut tree_edges: Vec<EdgeId> = Vec::new();
        let mut remaining: Vec<NodeId> = instance.targets.clone();

        while !remaining.is_empty() {
            let paths = multi_source_bottleneck(platform, &tree_nodes, &|e| cost[e.index()]);
            // Pick the reachable target whose path has the smallest bottleneck.
            let mut best: Option<(f64, usize)> = None;
            for (idx, &t) in remaining.iter().enumerate() {
                let d = paths.dist[t.index()];
                if d.is_finite() {
                    match best {
                        None => best = Some((d, idx)),
                        Some((bd, _)) if d < bd => best = Some((d, idx)),
                        _ => {}
                    }
                }
            }
            let Some((_, idx)) = best else {
                return Err(FormulationError::Unreachable(remaining[0]));
            };
            let target = remaining.swap_remove(idx);
            let path = paths
                .path_to(target, platform)
                .expect("reachable target has a path");
            // Add the path and update the modified costs (Figure 9, lines 11-13).
            for &e in &path {
                let edge = platform.edge(e);
                let added_cost = cost[e.index()];
                for &sibling in platform.out_edges(edge.src) {
                    if sibling != e {
                        cost[sibling.index()] += added_cost;
                    }
                }
                cost[e.index()] = 0.0;
                if !tree_nodes.contains(&edge.dst) {
                    tree_nodes.push(edge.dst);
                }
                tree_edges.push(e);
            }
        }
        MulticastTree::new(instance, tree_edges).map_err(|e| {
            FormulationError::InvalidArgument(format!("MCPH built an invalid tree: {e}"))
        })
    }
}

impl ThroughputHeuristic for Mcph {
    fn name(&self) -> &'static str {
        "MCPH"
    }

    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        let tree = self.build_tree(instance)?;
        let period = tree.period(&instance.platform);
        let mut result = HeuristicResult::new(self.name(), period);
        result.tree = Some(tree);
        Ok(result)
    }
}

/// The `scatter` baseline: the period of `Multicast-UB`, i.e. pretending
/// every target must receive a distinct message.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScatterBaseline;

impl ThroughputHeuristic for ScatterBaseline {
    fn name(&self) -> &'static str {
        "scatter"
    }

    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        let sol = MulticastUb::new(instance).solve()?;
        let mut result = HeuristicResult::new(self.name(), sol.period);
        result.lp_solves = 1;
        Ok(result)
    }
}

/// The `broadcast` baseline: broadcast to the whole platform
/// (`Broadcast-EB(P)`), which trivially also serves the targets.
#[derive(Debug, Clone, Copy, Default)]
pub struct BroadcastBaseline;

impl ThroughputHeuristic for BroadcastBaseline {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        let sol = BroadcastEb::new(instance).solve()?;
        let mut result = HeuristicResult::new(self.name(), sol.period);
        result.lp_solves = 1;
        Ok(result)
    }
}

/// The theoretical `lower bound` reference curve: the period of
/// `Multicast-LB` (not necessarily achievable).
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerBoundReference;

impl ThroughputHeuristic for LowerBoundReference {
    fn name(&self) -> &'static str {
        "lower bound"
    }

    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        let sol = MulticastLb::new(instance).solve()?;
        let mut result = HeuristicResult::new(self.name(), sol.period);
        result.lp_solves = 1;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::instances::{chain_instance, figure1_instance, figure5_instance};

    #[test]
    fn mcph_on_a_chain_uses_the_chain() {
        let inst = chain_instance(5, 0.5);
        let res = Mcph.run(&inst).unwrap();
        assert!((res.period - 0.5).abs() < 1e-9);
        let tree = res.tree.unwrap();
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn mcph_on_figure5_goes_through_the_relay() {
        let inst = figure5_instance(3);
        let res = Mcph.run(&inst).unwrap();
        // The only possible tree: source -> relay -> {targets}; its period is
        // max(source send = 1, relay send = 3 * 1/3 = 1) = 1.
        assert!((res.period - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mcph_on_figure1_is_a_single_tree_solution() {
        let inst = figure1_instance();
        let res = Mcph.run(&inst).unwrap();
        let tree = res.tree.unwrap();
        // A single tree cannot reach the optimal period 1 (Section 3), but it
        // must stay within the scatter upper bound.
        assert!(res.period >= 1.0 - 1e-9);
        let scatter = ScatterBaseline.run(&inst).unwrap();
        assert!(res.period <= scatter.period + 1e-6);
        // The tree really spans all targets.
        for &t in &inst.targets {
            assert!(tree.covers(&inst.platform, t));
        }
    }

    #[test]
    fn lp_heuristics_are_bounded_by_lb_and_scatter_on_figure5() {
        let inst = figure5_instance(3);
        let lb = LowerBoundReference.run(&inst).unwrap().period;
        let scatter = ScatterBaseline.run(&inst).unwrap().period;
        for heuristic in [
            &ReducedBroadcast as &dyn ThroughputHeuristic,
            &AugmentedMulticast,
            &AugmentedSources::default(),
            &BroadcastBaseline,
            &Mcph,
        ] {
            let res = heuristic.run(&inst).unwrap();
            assert!(
                res.period >= lb - 1e-6,
                "{} beats the lower bound: {} < {lb}",
                res.name,
                res.period
            );
            assert!(
                res.period <= scatter + 1e-6,
                "{} is worse than scatter: {} > {scatter}",
                res.name,
                res.period
            );
        }
    }

    #[test]
    fn reduced_broadcast_on_figure5_keeps_the_relay() {
        // Removing the relay would disconnect the targets, so the heuristic
        // must keep it and end up with the broadcast value.
        let inst = figure5_instance(3);
        let res = ReducedBroadcast.run(&inst).unwrap();
        assert!(res.selected_nodes.contains(&NodeId(1)));
        assert!((res.period - 1.0).abs() < 1e-6);
        assert!(res.lp_solves >= 1);
    }

    #[test]
    fn augmented_multicast_on_figure1_adds_relays_until_feasible() {
        let inst = figure1_instance();
        let res = AugmentedMulticast.run(&inst).unwrap();
        // The restricted platform {source} ∪ targets is disconnected (the
        // targets are only reachable through the relays), so the heuristic
        // must have added relay nodes to produce a finite period.
        assert!(res.period.is_finite());
        assert!(res.selected_nodes.len() > 1 + inst.target_count());
        let lb = LowerBoundReference.run(&inst).unwrap().period;
        assert!(res.period >= lb - 1e-6);
    }

    #[test]
    fn augmented_sources_never_degrades_the_scatter_bound() {
        let inst = figure1_instance();
        let scatter = ScatterBaseline.run(&inst).unwrap().period;
        let res = AugmentedSources::default().run(&inst).unwrap();
        assert!(res.period <= scatter + 1e-6);
        assert!(res.selected_nodes.contains(&inst.source));
    }

    #[test]
    fn heuristic_names_are_stable() {
        assert_eq!(ReducedBroadcast.name(), "Red. BC");
        assert_eq!(AugmentedMulticast.name(), "Augm. MC");
        assert_eq!(AugmentedSources::default().name(), "Multisource MC");
        assert_eq!(Mcph.name(), "MCPH");
        assert_eq!(ScatterBaseline.name(), "scatter");
        assert_eq!(BroadcastBaseline.name(), "broadcast");
        assert_eq!(LowerBoundReference.name(), "lower bound");
    }
}
