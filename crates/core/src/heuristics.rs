//! The paper's heuristics for the series-of-multicasts problem.
//!
//! LP-based refined heuristics (Section 5.2):
//!
//! * [`ReducedBroadcast`] — start from a broadcast on the whole platform and
//!   greedily remove the non-target nodes that contribute the least traffic,
//! * [`AugmentedMulticast`] — start from the platform restricted to
//!   `{Psource} ∪ Ptarget` and greedily add the non-target nodes that carry
//!   the most traffic in the `Multicast-LB` solution,
//! * [`AugmentedSources`] — greedily promote well-placed nodes to secondary
//!   sources in the `MulticastMultiSource-UB` formulation.
//!
//! All three run on the *masked* formulations of [`crate::masked`]: the LP
//! is built once per run on the full platform, every candidate sub-platform
//! is a bound-update re-solve warm-started from the round's optimal basis,
//! and each round's candidate batch is evaluated in fixed-size parallel
//! chunks with a deterministic "first improving candidate in score order
//! wins" reduction — byte-identical results regardless of thread count,
//! mirroring the ordered pool of `pm_bench::sweep`.
//!
//! Tree-based heuristic (Section 6):
//!
//! * [`Mcph`] — the Minimum Cost Path Heuristic revisited for the one-port
//!   steady-state metric: the "cost" of adding a path is the largest
//!   *additional send-port occupation* it causes, and costs are updated so
//!   that reusing edges already in the tree is free.
//!
//! All heuristics return a [`HeuristicResult`] reporting the period they
//! achieve (time per multicast), so that they can be compared against the
//! `scatter` upper bound and the theoretical lower bound exactly as in
//! Figure 11 of the paper.

use crate::formulations::{BroadcastEb, FormulationError, MulticastLb, MulticastUb};
use crate::masked::{MaskedFlow, MaskedFlowLp, MaskedMultiSource, MaskedMultiSourceUb};
use crate::realize::SteadyStateSolution;
use pm_lp::WarmStatus;
use pm_platform::algo::multi_source_bottleneck;
use pm_platform::graph::{EdgeId, NodeId};
use pm_platform::instances::MulticastInstance;
use pm_platform::mask::NodeMask;
use pm_sched::tree::{MulticastTree, WeightedTreeSet};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of running a heuristic on an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicResult {
    /// Human-readable name of the heuristic.
    pub name: String,
    /// Achieved period (time per multicast in steady state).
    pub period: f64,
    /// Achieved throughput (`1 / period`).
    pub throughput: f64,
    /// The multicast tree built by the heuristic, when it is tree-based.
    pub tree: Option<MulticastTree>,
    /// For `REDUCED BROADCAST` / `AUGMENTED MULTICAST`: the node set of the
    /// final sub-platform; for `AUGMENTED SOURCES`: the final source list.
    pub selected_nodes: Vec<NodeId>,
    /// Number of linear programs solved along the way.
    ///
    /// For the masked greedy heuristics this equals
    /// `warm_hits + warm_misses` (candidates rejected by the reachability
    /// pre-check never reach the LP and are not counted). The baseline
    /// curves solve through [`pm_lp::LpProblem::solve`] instead — their
    /// warm-start outcome lives in the ambient
    /// [`pm_lp::WarmStartCache`] scope (if any), so they report zero warm
    /// counters here; `crate::report::MulticastReport::collect` attributes
    /// those solves per kind from the scope's counter deltas.
    pub lp_solves: usize,
    /// Masked-template solves that warm-started from a previous basis.
    pub warm_hits: usize,
    /// Masked-template solves that ran cold (no or rejected hint).
    pub warm_misses: usize,
    /// Masked-template solves that exhausted their [`pm_lp::SolveBudget`]
    /// and returned a degraded anytime solution instead of a certified
    /// optimum (always zero when no budget is set).
    pub degraded_solves: usize,
    /// What the heuristic actually solved, in realizable form: the winning
    /// sub-platform flows (LP heuristics), the composed multi-source flows
    /// (`AUGMENTED SOURCES`) or the tree itself (`MCPH`). `None` when the
    /// heuristic could not serve the targets (infinite period).
    pub steady_state: Option<crate::realize::SteadyStateSolution>,
}

impl HeuristicResult {
    pub(crate) fn new(name: &str, period: f64) -> Self {
        HeuristicResult {
            name: name.to_string(),
            period,
            throughput: if period > 0.0 {
                1.0 / period
            } else {
                f64::INFINITY
            },
            tree: None,
            selected_nodes: Vec::new(),
            lp_solves: 0,
            warm_hits: 0,
            warm_misses: 0,
            degraded_solves: 0,
            steady_state: None,
        }
    }
}

/// The broadcast-commodity target list of the masked `Broadcast-EB`
/// templates (every non-source node, in platform order): the row layout of
/// the flows the greedy heuristics win with.
pub(crate) fn broadcast_commodities(instance: &MulticastInstance) -> Vec<NodeId> {
    instance
        .platform
        .nodes()
        .filter(|&v| v != instance.source)
        .collect()
}

/// LP accounting of one masked-heuristic run. The pivot/refactorization
/// sums mirror the per-solve [`pm_lp::SolveStats`] so a long-lived
/// [`crate::session::Session`] can aggregate structured solver statistics
/// without scraping the `PM_LP_STATS=1` stderr lines.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LpCounters {
    pub(crate) solves: usize,
    pub(crate) hits: usize,
    pub(crate) misses: usize,
    pub(crate) degraded: usize,
    pub(crate) phase1_pivots: u64,
    pub(crate) phase2_pivots: u64,
    pub(crate) refactorizations: u64,
}

impl LpCounters {
    fn note(&mut self, stats: &crate::masked::MaskedStats) {
        self.solves += 1;
        if stats.warm == WarmStatus::Hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if stats.solve.degraded {
            self.degraded += 1;
        }
        self.phase1_pivots += stats.solve.phase1_pivots as u64;
        self.phase2_pivots += stats.solve.phase2_pivots as u64;
        self.refactorizations += stats.solve.refactorizations as u64;
    }

    /// An LP solve that ended in a solver error (counted as a cold solve).
    fn note_failed(&mut self) {
        self.solves += 1;
        self.misses += 1;
    }

    fn write_to(&self, result: &mut HeuristicResult) {
        result.lp_solves = self.solves;
        result.warm_hits = self.hits;
        result.warm_misses = self.misses;
        result.degraded_solves = self.degraded;
    }
}

/// The outcome of a greedy run driven on caller-owned masked templates (the
/// [`crate::session::Session`] fast path): the plain [`HeuristicResult`]
/// plus the warm-start seeds and counters the session carries across
/// solves.
#[derive(Debug)]
pub(crate) struct GreedyRun {
    pub(crate) result: HeuristicResult,
    /// The basis of the winning solve on the primary template (`None` when
    /// the heuristic never completed an LP solve).
    pub(crate) final_basis: Option<pm_lp::Basis>,
    /// `AUGMENTED MULTICAST` only: the basis of the `Multicast-LB` scoring
    /// solve on the secondary template.
    pub(crate) aux_basis: Option<pm_lp::Basis>,
    pub(crate) counters: LpCounters,
}

/// Options of [`ThroughputHeuristic::run_with`].
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Capture the winning solution as a [`SteadyStateSolution`] in
    /// [`HeuristicResult::steady_state`]. Capturing clones the flow
    /// matrices, so callers that only need periods (the default fig11
    /// sweep) turn it off; [`ThroughputHeuristic::run`] keeps it on.
    pub capture_steady_state: bool,
    /// Deterministic per-solve work caps applied to the masked templates a
    /// run builds (`None` defers to the `PM_LP_BUDGET` default). Under an
    /// exhausted budget a greedy run keeps going on degraded anytime
    /// solutions — reported in [`HeuristicResult::degraded_solves`] —
    /// instead of failing.
    pub budget: Option<pm_lp::SolveBudget>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            capture_steady_state: true,
            budget: None,
        }
    }
}

/// Common interface of all the heuristics.
pub trait ThroughputHeuristic {
    /// Name used in reports and experiment tables.
    fn name(&self) -> &'static str;
    /// Runs the heuristic on an instance (capturing the steady-state
    /// solution for realization; see [`ThroughputHeuristic::run_with`]).
    fn run(&self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        self.run_with(instance, RunOptions::default())
    }
    /// Runs the heuristic with explicit options.
    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError>;
}

/// Upper limit on greedy iterations, as a safety net (the greedy loops are
/// already bounded by the platform size).
const MAX_GREEDY_STEPS: usize = 256;

/// Candidates evaluated per parallel batch inside the greedy rounds. Fixed
/// (not derived from the thread count) so that the number of LPs solved —
/// and with it every deterministic counter in the fig11 artifacts — is
/// machine-independent: a batch is always fully evaluated before the
/// first-improving reduction, whether its solves ran on one core or eight.
const CANDIDATE_CHUNK: usize = 8;

/// Per-candidate warm-start memory of a greedy run.
///
/// The round basis is the natural hint for a candidate, but it was optimal
/// for a *different* commodity/bound pattern — deactivating a commodity
/// moves its demand RHS, and a basis whose solution carried that demand can
/// turn primal infeasible under the new RHS, forcing a cold solve. A
/// candidate that was evaluated (and rejected) in an earlier round, though,
/// left behind a basis in which its own deactivation is already priced in;
/// that basis is the better hint when the candidate comes up again.
struct CandidateBases {
    per_node: Vec<Option<pm_lp::Basis>>,
}

impl CandidateBases {
    fn new(n: usize) -> Self {
        CandidateBases {
            per_node: (0..n).map(|_| None).collect(),
        }
    }

    fn hint<'a>(
        &'a self,
        node: NodeId,
        round: Option<&'a pm_lp::Basis>,
    ) -> Option<&'a pm_lp::Basis> {
        self.per_node[node.index()].as_ref().or(round)
    }

    fn remember(&mut self, node: NodeId, basis: &pm_lp::Basis) {
        self.per_node[node.index()] = Some(basis.clone());
    }
}

/// A masked candidate solve's result, as the chunked evaluation loop needs
/// it: a period to compare, a basis to remember, and a warm status to
/// account.
trait CandidateOutcome: Send {
    fn period(&self) -> f64;
    fn stats(&self) -> &crate::masked::MaskedStats;
    fn basis(&self) -> &pm_lp::Basis;
}

impl CandidateOutcome for MaskedFlow {
    fn period(&self) -> f64 {
        self.flow.period
    }
    fn stats(&self) -> &crate::masked::MaskedStats {
        &self.stats
    }
    fn basis(&self) -> &pm_lp::Basis {
        &self.basis
    }
}

impl CandidateOutcome for MaskedMultiSource {
    fn period(&self) -> f64 {
        self.solution.period
    }
    fn stats(&self) -> &crate::masked::MaskedStats {
        &self.stats
    }
    fn basis(&self) -> &pm_lp::Basis {
        &self.basis
    }
}

/// Evaluates `candidates` (already in score order) with `solve` in parallel
/// chunks of [`CANDIDATE_CHUNK`] and returns the first candidate, in score
/// order, whose period does not degrade `best` — the same acceptance rule
/// the sequential greedy loops of Figures 6–8 use. Chunks after the
/// accepting one are never solved; the full-chunk evaluation before the
/// reduction is what keeps the LP counters machine-independent.
///
/// `solve(candidate, hint)` maps a candidate to its masked solve (node
/// removal for `REDUCED BROADCAST`, addition for `AUGMENTED MULTICAST`,
/// source promotion for `AUGMENTED SOURCES`); the hint is the candidate's
/// remembered basis or the round basis. A candidate rejected before the LP
/// (`Unreachable` from the reachability pre-check) has period +∞ and costs
/// no solve; like the sequential loops, it still "does not degrade" an
/// infinite `best` — this is how `AUGMENTED MULTICAST` grows its node set
/// while the restricted platform is not yet connected — and such an
/// acceptance carries no solution.
fn first_improving<P: CandidateOutcome>(
    candidates: &[(f64, NodeId)],
    solve: impl Fn(NodeId, Option<&pm_lp::Basis>) -> Result<P, FormulationError> + Sync,
    round_hint: Option<&pm_lp::Basis>,
    bases: &mut CandidateBases,
    best: f64,
    counters: &mut LpCounters,
) -> Option<(NodeId, Option<P>)> {
    for chunk in candidates.chunks(CANDIDATE_CHUNK) {
        let outcomes: Vec<Result<P, FormulationError>> = chunk
            .par_iter()
            .map(|&(_, v)| solve(v, bases.hint(v, round_hint)))
            .collect();
        let mut found: Option<(NodeId, Option<P>)> = None;
        for (&(_, v), outcome) in chunk.iter().zip(outcomes) {
            match outcome {
                Ok(out) => {
                    counters.note(out.stats());
                    bases.remember(v, out.basis());
                    if found.is_none() && out.period() <= best + 1e-9 {
                        found = Some((v, Some(out)));
                    }
                }
                // Disconnected candidate: period +∞, no LP solved.
                Err(FormulationError::Unreachable(_)) => {
                    if found.is_none() && best.is_infinite() {
                        found = Some((v, None));
                    }
                }
                Err(FormulationError::InvalidArgument(_)) => {}
                Err(FormulationError::Lp(_)) => counters.note_failed(),
            }
        }
        if found.is_some() {
            return found;
        }
    }
    None
}

/// `REDUCED BROADCAST` (Figure 6): repeatedly remove the non-target,
/// non-source node with the smallest incoming traffic in the current
/// `Broadcast-EB` solution, as long as the broadcast period on the reduced
/// platform does not degrade.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReducedBroadcast;

impl ReducedBroadcast {
    /// The greedy loop on a caller-owned `Broadcast-EB` template, restricted
    /// to the active nodes of `base_mask` and warm-started from `hint` — the
    /// [`crate::session::Session`] entry point ([`ThroughputHeuristic::run_with`]
    /// wraps it with a freshly built template and a full mask).
    pub(crate) fn run_on(
        &self,
        template: &MaskedFlowLp,
        base_mask: &NodeMask,
        hint: Option<&pm_lp::Basis>,
        options: RunOptions,
    ) -> Result<GreedyRun, FormulationError> {
        let instance = template.instance();
        let platform = &instance.platform;
        let mut counters = LpCounters::default();
        let mut mask = base_mask.clone();

        let initial = match template.solve(&mask, hint) {
            Ok(out) => {
                counters.note(&out.stats);
                Some(out)
            }
            // Some node is unreachable even on the base platform: the
            // broadcast value is +∞ and no removal can fix it.
            Err(FormulationError::Unreachable(_)) => None,
            Err(e) => {
                if matches!(e, FormulationError::Lp(_)) {
                    counters.note_failed();
                }
                return Err(e);
            }
        };
        let Some(mut current) = initial else {
            let mut result = HeuristicResult::new(self.name(), f64::INFINITY);
            result.selected_nodes = mask.to_nodes();
            counters.write_to(&mut result);
            return Ok(GreedyRun {
                result,
                final_basis: None,
                aux_basis: None,
                counters,
            });
        };
        let mut best = current.flow.period;
        let mut bases = CandidateBases::new(platform.node_count());
        let mut steps = 0;
        while steps < MAX_GREEDY_STEPS {
            steps += 1;
            // Score candidates with the current sub-platform's broadcast
            // flows; node ids never change under the mask, so the scores
            // read off the full platform directly.
            let mut candidates: Vec<(f64, NodeId)> = mask
                .iter()
                .filter(|&v| v != instance.source && !instance.is_target(v))
                .map(|v| (current.flow.incoming_flow_score(platform, v), v))
                .collect();
            candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let accepted = first_improving(
                &candidates,
                |v, hint| template.solve(&mask.without(v), hint),
                Some(&current.basis),
                &mut bases,
                best,
                &mut counters,
            );
            // `best` is finite here (the infinite case returned early), so
            // an accepted candidate always carries a solution.
            let Some((node, Some(out))) = accepted else {
                break;
            };
            best = best.min(out.flow.period);
            mask.remove(node);
            current = out;
        }
        let mut result = HeuristicResult::new(self.name(), best);
        result.selected_nodes = mask.to_nodes();
        counters.write_to(&mut result);
        if options.capture_steady_state {
            result.steady_state = SteadyStateSolution::from_flow_solution(
                instance,
                &broadcast_commodities(instance),
                &current.flow,
                best,
            );
        }
        Ok(GreedyRun {
            result,
            final_basis: Some(current.basis),
            aux_basis: None,
            counters,
        })
    }
}

impl ThroughputHeuristic for ReducedBroadcast {
    fn name(&self) -> &'static str {
        "Red. BC"
    }

    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError> {
        let mut template = MaskedFlowLp::broadcast_eb(instance);
        template.set_budget(options.budget);
        let mask = NodeMask::full(instance.platform.node_count());
        self.run_on(&template, &mask, None, options)
            .map(|r| r.result)
    }
}

/// `AUGMENTED MULTICAST` (Figure 7): start from the platform restricted to
/// the source and the targets, and greedily add the node with the largest
/// incoming traffic in the full-platform `Multicast-LB` solution as long as
/// the broadcast period on the augmented platform does not degrade.
#[derive(Debug, Clone, Copy, Default)]
pub struct AugmentedMulticast;

impl AugmentedMulticast {
    /// The greedy loop on caller-owned templates: `eb_template` drives the
    /// augmented-broadcast solves, `lb_template` the one-off `Multicast-LB`
    /// scoring solve; candidates and the scoring solve are restricted to
    /// the active nodes of `base_mask`.
    pub(crate) fn run_on(
        &self,
        eb_template: &MaskedFlowLp,
        lb_template: &MaskedFlowLp,
        base_mask: &NodeMask,
        eb_hint: Option<&pm_lp::Basis>,
        lb_hint: Option<&pm_lp::Basis>,
        options: RunOptions,
    ) -> Result<GreedyRun, FormulationError> {
        let instance = eb_template.instance();
        let platform = &instance.platform;
        let mut counters = LpCounters::default();
        let mut mask = NodeMask::from_nodes(
            platform.node_count(),
            std::iter::once(instance.source).chain(instance.targets.iter().copied()),
        );
        // The restricted platform is usually disconnected at first: the
        // reachability pre-check reports that without solving any LP.
        let mut current = match eb_template.solve(&mask, eb_hint) {
            Ok(out) => {
                counters.note(&out.stats);
                Some(out)
            }
            Err(FormulationError::Unreachable(_)) => None,
            Err(e) => {
                if matches!(e, FormulationError::Lp(_)) {
                    counters.note_failed();
                }
                return Err(e);
            }
        };
        let mut best = current
            .as_ref()
            .map_or(f64::INFINITY, |out| out.flow.period);

        // Candidate scores come from the Multicast-LB solution on the whole
        // active platform and are computed once (through the masked template
        // so the solve is accounted here, not in the ambient cache scope).
        let lb = lb_template.solve(base_mask, lb_hint)?;
        counters.note(&lb.stats);
        let mut candidates: Vec<(f64, NodeId)> = base_mask
            .iter()
            .filter(|&v| v != instance.source && !instance.is_target(v))
            .map(|v| (lb.flow.incoming_flow_score(platform, v), v))
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

        let mut bases = CandidateBases::new(platform.node_count());
        let mut steps = 0;
        while steps < MAX_GREEDY_STEPS {
            steps += 1;
            let round: Vec<(f64, NodeId)> = candidates
                .iter()
                .copied()
                .filter(|&(_, v)| !mask.contains(v))
                .collect();
            let accepted = first_improving(
                &round,
                |v, hint| eb_template.solve(&mask.with(v), hint),
                current.as_ref().map(|out| &out.basis),
                &mut bases,
                best,
                &mut counters,
            );
            let Some((node, out)) = accepted else { break };
            mask.insert(node);
            if let Some(out) = out {
                best = best.min(out.flow.period);
                current = Some(out);
            }
        }
        let mut result = HeuristicResult::new(self.name(), best);
        result.selected_nodes = mask.to_nodes();
        counters.write_to(&mut result);
        if options.capture_steady_state {
            if let Some(out) = &current {
                result.steady_state = SteadyStateSolution::from_flow_solution(
                    instance,
                    &broadcast_commodities(instance),
                    &out.flow,
                    best,
                );
            }
        }
        Ok(GreedyRun {
            result,
            final_basis: current.map(|out| out.basis),
            aux_basis: Some(lb.basis),
            counters,
        })
    }
}

impl ThroughputHeuristic for AugmentedMulticast {
    fn name(&self) -> &'static str {
        "Augm. MC"
    }

    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError> {
        let mut eb_template = MaskedFlowLp::broadcast_eb(instance);
        let mut lb_template = MaskedFlowLp::multicast_lb(instance);
        eb_template.set_budget(options.budget);
        lb_template.set_budget(options.budget);
        let mask = NodeMask::full(instance.platform.node_count());
        self.run_on(&eb_template, &lb_template, &mask, None, None, options)
            .map(|r| r.result)
    }
}

/// `AUGMENTED SOURCES` (Figure 8): greedily promote the node with the largest
/// incoming traffic in the current `MulticastMultiSource-UB` solution to a
/// secondary source, as long as the period does not degrade.
#[derive(Debug, Clone, Copy, Default)]
pub struct AugmentedSources {
    /// Optional cap on the number of secondary sources (0 = no cap). Useful
    /// to bound the LP sizes on large platforms.
    pub max_secondary_sources: usize,
}

impl AugmentedSources {
    /// The greedy source-promotion loop on a caller-owned multi-source
    /// template, restricted to the active nodes of `base_mask` and
    /// warm-started from `hint`.
    pub(crate) fn run_on(
        &self,
        template: &MaskedMultiSourceUb,
        base_mask: &NodeMask,
        hint: Option<&pm_lp::Basis>,
        options: RunOptions,
    ) -> Result<GreedyRun, FormulationError> {
        let instance = template.instance();
        let n = instance.platform.node_count();
        let mut counters = LpCounters::default();
        let mut sources = vec![instance.source];
        let mut is_source = vec![false; n];
        is_source[instance.source.index()] = true;

        // Candidate solves never extract the per-destination flow matrices
        // (periods and incoming scores drive the greedy); when the steady
        // state is captured, one warm re-solve of the winning configuration
        // extracts them at the end.
        let initial = template.solve_opts(base_mask, &sources, hint, false)?;
        counters.note(&initial.stats);
        let mut best = initial.solution.period;
        let mut current = initial;
        let mut bases = CandidateBases::new(n);

        let mut steps = 0;
        while steps < MAX_GREEDY_STEPS {
            steps += 1;
            if self.max_secondary_sources > 0 && sources.len() > self.max_secondary_sources {
                break;
            }
            // Every active node is already a source: nothing to promote.
            let mut candidates: Vec<(f64, NodeId)> = base_mask
                .iter()
                .filter(|v| !is_source[v.index()])
                .map(|v| (current.solution.incoming_score[v.index()], v))
                .collect();
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let accepted = first_improving(
                &candidates,
                |v, hint| {
                    let mut extended = sources.clone();
                    extended.push(v);
                    template.solve_opts(base_mask, &extended, hint, false)
                },
                Some(&current.basis),
                &mut bases,
                best,
                &mut counters,
            );
            // `best` is finite here (the initial solve either succeeded or
            // propagated its error), so an accepted candidate always
            // carries a solution.
            let Some((node, Some(out))) = accepted else {
                break;
            };
            best = best.min(out.solution.period);
            sources.push(node);
            is_source[node.index()] = true;
            current = out;
        }
        let mut result = HeuristicResult::new(self.name(), best);
        let mut final_basis = current.basis.clone();
        if options.capture_steady_state {
            // One extra solve of the winning configuration, warm-started
            // from its own optimal basis, extracts the flow matrices the
            // candidate loop skipped. A failure here only loses the capture
            // (steady_state stays `None`): realization is a bonus and must
            // never poison the period measurement itself.
            match template.solve_opts(base_mask, &sources, Some(&current.basis), true) {
                Ok(refreshed) => {
                    counters.note(&refreshed.stats);
                    final_basis = refreshed.basis;
                    result.steady_state = Some(SteadyStateSolution::MultiSource {
                        period: best,
                        sources: sources.clone(),
                        dest_nodes: refreshed.solution.dest_nodes,
                        dest_flows: refreshed.solution.dest_flows,
                    });
                }
                Err(FormulationError::Lp(_)) => counters.note_failed(),
                Err(_) => {}
            }
        }
        result.selected_nodes = sources;
        counters.write_to(&mut result);
        Ok(GreedyRun {
            result,
            final_basis: Some(final_basis),
            aux_basis: None,
            counters,
        })
    }
}

impl ThroughputHeuristic for AugmentedSources {
    fn name(&self) -> &'static str {
        "Multisource MC"
    }

    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError> {
        let mut template = MaskedMultiSourceUb::new(instance);
        template.set_budget(options.budget);
        let mask = NodeMask::full(instance.platform.node_count());
        self.run_on(&template, &mask, None, options)
            .map(|r| r.result)
    }
}

/// The tree-based `MCPH` heuristic (Figure 9), adapted from the Minimum Cost
/// Path Heuristic for Steiner trees to the one-port steady-state metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcph;

impl Mcph {
    /// Builds the multicast tree chosen by the heuristic.
    pub fn build_tree(
        &self,
        instance: &MulticastInstance,
    ) -> Result<MulticastTree, FormulationError> {
        let cost: Vec<f64> = instance
            .platform
            .edge_ids()
            .map(|e| instance.platform.cost(e))
            .collect();
        self.build_tree_with_costs(instance, cost)
    }

    /// [`Mcph::build_tree`] over caller-supplied base edge costs (`+∞`
    /// excludes an edge entirely). The realization pipeline uses this to
    /// price congested ports and to restrict tree growth to an LP solution's
    /// support.
    pub fn build_tree_with_costs(
        &self,
        instance: &MulticastInstance,
        mut cost: Vec<f64>,
    ) -> Result<MulticastTree, FormulationError> {
        let platform = &instance.platform;
        // Modifiable edge costs: edges already carrying the message are free,
        // and adding a new outgoing edge to a node that already sends data
        // accounts for the serialization of its send port.
        let mut tree_nodes: Vec<NodeId> = vec![instance.source];
        let mut tree_edges: Vec<EdgeId> = Vec::new();
        let mut remaining: Vec<NodeId> = instance.targets.clone();

        while !remaining.is_empty() {
            let paths = multi_source_bottleneck(platform, &tree_nodes, &|e| cost[e.index()]);
            // Pick the reachable target whose path has the smallest bottleneck.
            let mut best: Option<(f64, usize)> = None;
            for (idx, &t) in remaining.iter().enumerate() {
                let d = paths.dist[t.index()];
                if d.is_finite() {
                    match best {
                        None => best = Some((d, idx)),
                        Some((bd, _)) if d < bd => best = Some((d, idx)),
                        _ => {}
                    }
                }
            }
            let Some((_, idx)) = best else {
                return Err(FormulationError::Unreachable(remaining[0]));
            };
            let target = remaining.swap_remove(idx);
            let path = paths
                .path_to(target, platform)
                .expect("reachable target has a path");
            // Add the path and update the modified costs (Figure 9, lines 11-13).
            for &e in &path {
                let edge = platform.edge(e);
                let added_cost = cost[e.index()];
                for &sibling in platform.out_edges(edge.src) {
                    if sibling != e {
                        cost[sibling.index()] += added_cost;
                    }
                }
                cost[e.index()] = 0.0;
                if !tree_nodes.contains(&edge.dst) {
                    tree_nodes.push(edge.dst);
                }
                tree_edges.push(e);
            }
        }
        MulticastTree::new(instance, tree_edges).map_err(|e| {
            FormulationError::InvalidArgument(format!("MCPH built an invalid tree: {e}"))
        })
    }
}

impl ThroughputHeuristic for Mcph {
    fn name(&self) -> &'static str {
        "MCPH"
    }

    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError> {
        let tree = self.build_tree(instance)?;
        let period = tree.period(&instance.platform);
        let mut result = HeuristicResult::new(self.name(), period);
        if options.capture_steady_state && period.is_finite() && period > 0.0 {
            let mut trees = WeightedTreeSet::new();
            trees
                .push(tree.clone(), 1.0 / period)
                .expect("a finite period yields a finite weight");
            result.steady_state = Some(SteadyStateSolution::Trees { period, trees });
        }
        result.tree = Some(tree);
        Ok(result)
    }
}

/// The `scatter` baseline: the period of `Multicast-UB`, i.e. pretending
/// every target must receive a distinct message.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScatterBaseline;

impl ThroughputHeuristic for ScatterBaseline {
    fn name(&self) -> &'static str {
        "scatter"
    }

    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError> {
        let sol = MulticastUb::new(instance).solve()?;
        let mut result = HeuristicResult::new(self.name(), sol.period);
        result.lp_solves = 1;
        if options.capture_steady_state {
            result.steady_state = SteadyStateSolution::from_flow_solution(
                instance,
                &instance.targets,
                &sol,
                sol.period,
            );
        }
        Ok(result)
    }
}

/// The `broadcast` baseline: broadcast to the whole platform
/// (`Broadcast-EB(P)`), which trivially also serves the targets.
#[derive(Debug, Clone, Copy, Default)]
pub struct BroadcastBaseline;

impl ThroughputHeuristic for BroadcastBaseline {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError> {
        let sol = BroadcastEb::new(instance).solve()?;
        let mut result = HeuristicResult::new(self.name(), sol.period);
        result.lp_solves = 1;
        if options.capture_steady_state {
            result.steady_state = SteadyStateSolution::from_flow_solution(
                instance,
                &broadcast_commodities(instance),
                &sol,
                sol.period,
            );
        }
        Ok(result)
    }
}

/// The theoretical `lower bound` reference curve: the period of
/// `Multicast-LB` (not necessarily achievable).
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerBoundReference;

impl ThroughputHeuristic for LowerBoundReference {
    fn name(&self) -> &'static str {
        "lower bound"
    }

    fn run_with(
        &self,
        instance: &MulticastInstance,
        options: RunOptions,
    ) -> Result<HeuristicResult, FormulationError> {
        let sol = MulticastLb::new(instance).solve()?;
        let mut result = HeuristicResult::new(self.name(), sol.period);
        result.lp_solves = 1;
        if options.capture_steady_state {
            result.steady_state = SteadyStateSolution::from_flow_solution(
                instance,
                &instance.targets,
                &sol,
                sol.period,
            );
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::instances::{chain_instance, figure1_instance, figure5_instance};

    #[test]
    fn mcph_on_a_chain_uses_the_chain() {
        let inst = chain_instance(5, 0.5);
        let res = Mcph.run(&inst).unwrap();
        assert!((res.period - 0.5).abs() < 1e-9);
        let tree = res.tree.unwrap();
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn mcph_on_figure5_goes_through_the_relay() {
        let inst = figure5_instance(3);
        let res = Mcph.run(&inst).unwrap();
        // The only possible tree: source -> relay -> {targets}; its period is
        // max(source send = 1, relay send = 3 * 1/3 = 1) = 1.
        assert!((res.period - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mcph_on_figure1_is_a_single_tree_solution() {
        let inst = figure1_instance();
        let res = Mcph.run(&inst).unwrap();
        let tree = res.tree.unwrap();
        // A single tree cannot reach the optimal period 1 (Section 3), but it
        // must stay within the scatter upper bound.
        assert!(res.period >= 1.0 - 1e-9);
        let scatter = ScatterBaseline.run(&inst).unwrap();
        assert!(res.period <= scatter.period + 1e-6);
        // The tree really spans all targets.
        for &t in &inst.targets {
            assert!(tree.covers(&inst.platform, t));
        }
    }

    #[test]
    fn lp_heuristics_are_bounded_by_lb_and_scatter_on_figure5() {
        let inst = figure5_instance(3);
        let lb = LowerBoundReference.run(&inst).unwrap().period;
        let scatter = ScatterBaseline.run(&inst).unwrap().period;
        for heuristic in [
            &ReducedBroadcast as &dyn ThroughputHeuristic,
            &AugmentedMulticast,
            &AugmentedSources::default(),
            &BroadcastBaseline,
            &Mcph,
        ] {
            let res = heuristic.run(&inst).unwrap();
            assert!(
                res.period >= lb - 1e-6,
                "{} beats the lower bound: {} < {lb}",
                res.name,
                res.period
            );
            assert!(
                res.period <= scatter + 1e-6,
                "{} is worse than scatter: {} > {scatter}",
                res.name,
                res.period
            );
        }
    }

    #[test]
    fn reduced_broadcast_on_figure5_keeps_the_relay() {
        // Removing the relay would disconnect the targets, so the heuristic
        // must keep it and end up with the broadcast value.
        let inst = figure5_instance(3);
        let res = ReducedBroadcast.run(&inst).unwrap();
        assert!(res.selected_nodes.contains(&NodeId(1)));
        assert!((res.period - 1.0).abs() < 1e-6);
        assert!(res.lp_solves >= 1);
    }

    #[test]
    fn augmented_multicast_on_figure1_adds_relays_until_feasible() {
        let inst = figure1_instance();
        let res = AugmentedMulticast.run(&inst).unwrap();
        // The restricted platform {source} ∪ targets is disconnected (the
        // targets are only reachable through the relays), so the heuristic
        // must have added relay nodes to produce a finite period.
        assert!(res.period.is_finite());
        assert!(res.selected_nodes.len() > 1 + inst.target_count());
        let lb = LowerBoundReference.run(&inst).unwrap().period;
        assert!(res.period >= lb - 1e-6);
    }

    #[test]
    fn augmented_sources_never_degrades_the_scatter_bound() {
        let inst = figure1_instance();
        let scatter = ScatterBaseline.run(&inst).unwrap().period;
        let res = AugmentedSources::default().run(&inst).unwrap();
        assert!(res.period <= scatter + 1e-6);
        assert!(res.selected_nodes.contains(&inst.source));
    }

    #[test]
    fn heuristic_names_are_stable() {
        assert_eq!(ReducedBroadcast.name(), "Red. BC");
        assert_eq!(AugmentedMulticast.name(), "Augm. MC");
        assert_eq!(AugmentedSources::default().name(), "Multisource MC");
        assert_eq!(Mcph.name(), "MCPH");
        assert_eq!(ScatterBaseline.name(), "scatter");
        assert_eq!(BroadcastBaseline.name(), "broadcast");
        assert_eq!(LowerBoundReference.name(), "lower bound");
    }
}
