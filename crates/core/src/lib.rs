//! # pm-core
//!
//! The core of the pipelined-multicast reproduction: everything needed to
//! bound, approximate and (on small platforms) exactly compute the optimal
//! steady-state throughput of a series of multicasts on a heterogeneous
//! one-port platform.
//!
//! * [`formulations`] — the paper's linear programs: `Multicast-LB`,
//!   `Multicast-UB` (scatter), `Broadcast-EB` and
//!   `MulticastMultiSource-UB`,
//! * [`masked`] — the same formulations built once on the full platform and
//!   re-solved under `NodeMask` sub-platform views (bound updates instead of
//!   rebuilds, so every solve warm-starts),
//! * [`heuristics`] — `REDUCED BROADCAST`, `AUGMENTED MULTICAST`,
//!   `AUGMENTED SOURCES` and the tree-based `MCPH`, plus the reference
//!   baselines (`scatter`, `broadcast`, `lower bound`),
//! * [`exact`] — the exact tree-packing optimum by exhaustive enumeration
//!   (small platforms; used to validate the heuristics and the Figure 1
//!   worked example),
//! * [`multi`] — multi-commodity super-periods: k concurrent demands
//!   (multicast, scatter and broadcast mixes) jointly scheduled through one
//!   LP with shared one-port occupation rows, realized as a single
//!   super-period schedule in which every commodity sustains its own rate,
//! * [`realize`] — the constructive half: decompose LP steady-state flows
//!   into weighted multicast trees, re-pack them, color them into a periodic
//!   schedule and certify the claimed period in the one-port simulator,
//! * [`session`] — the stateful [`Session`] API for
//!   long-lived, drifting platforms: incremental solves after edge-cost and
//!   node-churn deltas, re-realization with transition costs, a durable
//!   write-ahead journal ([`SessionEvent`]) with snapshot/replay, and
//!   panic-isolated solves that self-heal from the journal,
//! * [`report`] — per-instance comparison reports mirroring Figure 11
//!   (a thin consumer of a [`Session`]).
//!
//! ```
//! use pm_core::formulations::{MulticastLb, MulticastUb};
//! use pm_platform::instances::figure5_instance;
//!
//! let inst = figure5_instance(3);
//! let lb = MulticastLb::new(&inst).solve().unwrap();
//! let ub = MulticastUb::new(&inst).solve().unwrap();
//! // Figure 5 of the paper: the two bounds differ by the number of targets.
//! assert!((lb.period - 1.0).abs() < 1e-6);
//! assert!((ub.period - 3.0).abs() < 1e-6);
//! ```

pub mod exact;
pub mod formulations;
pub mod heuristics;
pub mod masked;
pub mod multi;
pub mod realize;
pub mod report;
pub mod robust;
pub mod session;

pub use exact::{pack_trees, ExactSolution, ExactTreePacking};
pub use formulations::{
    BroadcastEb, FlowSolution, FormulationError, MulticastLb, MulticastMultiSourceUb, MulticastUb,
};
pub use heuristics::{
    AugmentedMulticast, AugmentedSources, BroadcastBaseline, HeuristicResult, LowerBoundReference,
    Mcph, ReducedBroadcast, RunOptions, ScatterBaseline, ThroughputHeuristic,
};
pub use masked::{MaskedFlow, MaskedFlowLp, MaskedMultiSource, MaskedMultiSourceUb};
pub use multi::{
    pack_tree_groups, realize_multi, realize_multi_with_pool, Commodity, CommoditySet, MultiFlow,
    MultiFlowLp, MultiRealization, MultiTemplate,
};
pub use realize::{Realization, RealizeError, SteadyStateSolution};
pub use report::{HeuristicKind, KindLpStats, MulticastReport};
pub use robust::{
    realize_robust, realize_robust_masked, RobustOptions, RobustRealization, TargetRedundancy,
};
pub use session::{
    MultiReRealization, ReRealization, RobustReRealization, Session, SessionError, SessionEvent,
    SessionMultiSolve, SessionOpStats, SessionSnapshot, SessionSolve, SessionStats, TransitionCost,
};
