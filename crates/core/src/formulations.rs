//! The paper's linear-programming formulations (Section 5.1 and 5.2.3).
//!
//! All four formulations bound or compute the time `T*` needed to serve one
//! unit-size multicast message in steady state (the *period*); the throughput
//! is `1 / T*`.
//!
//! * [`MulticastLb`] — equations (1)–(9) + (10'): on each link, the fractions
//!   destined to different targets are assumed to overlap perfectly
//!   (`n_{jk} = max_i x^{jk}_i`). Optimistic: a *lower bound* on the period.
//! * [`MulticastUb`] — equations (1)–(9) + (10): fractions destined to
//!   different targets are summed (`n_{jk} = Σ_i x^{jk}_i`), i.e. the message
//!   is treated as a scatter of distinct messages. Pessimistic but always
//!   achievable: an *upper bound* on the period, and the `scatter` baseline
//!   of the evaluation.
//! * [`BroadcastEb`] — the LB formulation with `Ptarget = V \ {Psource}`.
//!   For broadcast this value is achievable (Beaumont et al., IPDPS 2004), so
//!   it is used as a building block by the refined heuristics.
//! * [`MulticastMultiSourceUb`] — the multi-source scatter formulation of
//!   Section 5.2.3, where an ordered set of secondary sources relays the
//!   message.

use pm_lp::{LpError, Objective, Relation, SparseBuilder, VarId};
use pm_platform::graph::{EdgeId, NodeId, Platform};
use pm_platform::instances::MulticastInstance;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by the formulations.
#[derive(Debug, Clone, PartialEq)]
pub enum FormulationError {
    /// The underlying linear program could not be solved.
    Lp(LpError),
    /// Some target is not reachable from the source (the period is infinite).
    Unreachable(NodeId),
    /// The formulation was given an invalid argument (e.g. an empty or
    /// ill-ordered source list).
    InvalidArgument(String),
}

impl fmt::Display for FormulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulationError::Lp(e) => write!(f, "LP failure: {e}"),
            FormulationError::Unreachable(n) => write!(f, "target {n} unreachable"),
            FormulationError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FormulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormulationError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for FormulationError {
    fn from(e: LpError) -> Self {
        // An infeasible flow LP on a validated instance means some target
        // cannot receive the message at all.
        FormulationError::Lp(e)
    }
}

/// Solution of one of the single-source formulations: the optimal period,
/// the per-target per-edge fractions `x^{jk}_i` and the per-edge load
/// `n_{jk}` under the formulation's own accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSolution {
    /// Optimal period `T*` (time per unit multicast message).
    pub period: f64,
    /// Steady-state throughput `1 / T*`.
    pub throughput: f64,
    /// `target_flows[i][e]` = fraction of the message destined to target `i`
    /// (in instance order) that crosses edge `e`.
    pub target_flows: Vec<Vec<f64>>,
    /// Per-edge load `n_{jk}` under the formulation's accounting rule.
    pub edge_load: Vec<f64>,
}

impl FlowSolution {
    /// The node score used by the refined heuristics of Section 5.2:
    /// `Σ_{i ∈ Ptarget} Σ_{Pj ∈ N^in(Pm)} x^{j,m}_i`, the total fraction of
    /// target-bound traffic entering `node`.
    pub fn incoming_flow_score(&self, platform: &Platform, node: NodeId) -> f64 {
        let mut score = 0.0;
        for flows in &self.target_flows {
            for &e in platform.in_edges(node) {
                score += flows[e.index()];
            }
        }
        score
    }

    /// Per-edge message rates (messages per time-unit) induced by serving one
    /// message every `period`: `n_e / period`.
    pub fn edge_rates(&self) -> Vec<f64> {
        self.edge_load.iter().map(|&n| n / self.period).collect()
    }
}

/// Accounting rule for the per-edge load `n_{jk}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadRule {
    /// `n_{jk} = max_i x^{jk}_i` (equation 10'): optimistic overlap.
    Max,
    /// `n_{jk} = Σ_i x^{jk}_i` (equation 10): scatter-like, no overlap.
    Sum,
}

/// Builds and solves the single-source formulation with the given load rule.
fn solve_single_source(
    instance: &MulticastInstance,
    rule: LoadRule,
) -> Result<FlowSolution, FormulationError> {
    let platform = &instance.platform;
    let m = platform.edge_count();
    let targets = &instance.targets;
    let t_count = targets.len();

    // The formulations emit (row, col, coefficient) triplets through the
    // sparse builder — each constraint touches only the edges incident to
    // one node, so no zero coefficient is ever materialized and the revised
    // solver assembles its CSC matrix straight from the triplets.
    let mut lp = SparseBuilder::new(Objective::Minimize);
    // x[i][e]: fraction of the message to target i crossing edge e.
    let mut x: Vec<Vec<VarId>> = Vec::with_capacity(t_count);
    for (i, _) in targets.iter().enumerate() {
        let row: Vec<VarId> = (0..m).map(|e| lp.add_var(&format!("x_{i}_{e}"))).collect();
        x.push(row);
    }
    // n[e]: edge load (explicit variables only needed for the Max rule).
    let n: Option<Vec<VarId>> = match rule {
        LoadRule::Max => Some((0..m).map(|e| lp.add_var(&format!("n_{e}"))).collect()),
        LoadRule::Sum => None,
    };
    let t_star = lp.add_var("T*");
    lp.set_objective_coeff(t_star, 1.0);

    // (1) the whole message leaves the source, for every target.
    for (i, _) in targets.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = platform
            .out_edges(instance.source)
            .iter()
            .map(|&e| (x[i][e.index()], 1.0))
            .collect();
        lp.add_constraint(terms, Relation::Eq, 1.0);
    }
    // No commodity flows back into the source. The paper's equations (1)-(3)
    // do not state this explicitly, but without it a platform with edges
    // entering the source admits spurious LP solutions where flow "vanishes"
    // into the source (which has no conservation constraint), weakening the
    // lower bound for no physical reason.
    for x_row in &x {
        for &e in platform.in_edges(instance.source) {
            lp.add_constraint(vec![(x_row[e.index()], 1.0)], Relation::Eq, 0.0);
        }
    }
    // (2) the whole message reaches each target.
    for (i, &target) in targets.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = platform
            .in_edges(target)
            .iter()
            .map(|&e| (x[i][e.index()], 1.0))
            .collect();
        if terms.is_empty() {
            return Err(FormulationError::Unreachable(target));
        }
        lp.add_constraint(terms, Relation::Eq, 1.0);
    }
    // (3) conservation at every other node.
    for (i, &target) in targets.iter().enumerate() {
        for node in platform.nodes() {
            if node == instance.source || node == target {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &e in platform.out_edges(node) {
                terms.push((x[i][e.index()], 1.0));
            }
            for &e in platform.in_edges(node) {
                terms.push((x[i][e.index()], -1.0));
            }
            if !terms.is_empty() {
                lp.add_constraint(terms, Relation::Eq, 0.0);
            }
        }
    }
    // (10') n_e >= x_i_e for the Max rule.
    if let Some(n) = &n {
        for x_row in &x {
            for e in 0..m {
                lp.add_constraint(vec![(x_row[e], 1.0), (n[e], -1.0)], Relation::Le, 0.0);
            }
        }
    }
    // Helper producing the linear expression of n_e * c_e for either rule.
    let load_terms = |e: usize| -> Vec<(VarId, f64)> {
        let cost = platform.cost(EdgeId(e as u32));
        match &n {
            Some(n) => vec![(n[e], cost)],
            None => x.iter().map(|row| (row[e], cost)).collect(),
        }
    };
    // (5)(8) incoming port occupation and (6)(9) outgoing port occupation.
    for node in platform.nodes() {
        let mut in_terms: Vec<(VarId, f64)> = Vec::new();
        for &e in platform.in_edges(node) {
            in_terms.extend(load_terms(e.index()));
        }
        if !in_terms.is_empty() {
            in_terms.push((t_star, -1.0));
            lp.add_constraint(in_terms, Relation::Le, 0.0);
        }
        let mut out_terms: Vec<(VarId, f64)> = Vec::new();
        for &e in platform.out_edges(node) {
            out_terms.extend(load_terms(e.index()));
        }
        if !out_terms.is_empty() {
            out_terms.push((t_star, -1.0));
            lp.add_constraint(out_terms, Relation::Le, 0.0);
        }
    }
    // (4)(7) per-edge occupation.
    for e in 0..m {
        let mut terms = load_terms(e);
        terms.push((t_star, -1.0));
        lp.add_constraint(terms, Relation::Le, 0.0);
    }
    // Lexicographic tie-break: among the (typically many) tied-optimal
    // vertices, minimize cost-weighted traffic. Keeps the rebuild path
    // value-identical to the masked templates, which set the same secondary.
    for e in 0..m {
        let cost = platform.cost(EdgeId(e as u32));
        for x_row in &x {
            lp.set_secondary_coeff(x_row[e], cost);
        }
        if let Some(n) = &n {
            lp.set_secondary_coeff(n[e], cost);
        }
    }

    let sol = lp
        .build()
        .map_err(FormulationError::Lp)?
        .solve()
        .map_err(|e| match e {
            LpError::Infeasible => FormulationError::Unreachable(instance.targets[0]),
            other => FormulationError::Lp(other),
        })?;

    let period = sol.value(t_star);
    let target_flows: Vec<Vec<f64>> = x
        .iter()
        .map(|row| row.iter().map(|&v| sol.value(v)).collect())
        .collect();
    let edge_load: Vec<f64> = (0..m)
        .map(|e| match &n {
            Some(n) => sol.value(n[e]),
            None => target_flows.iter().map(|row| row[e]).sum(),
        })
        .collect();
    Ok(FlowSolution {
        period,
        throughput: if period > 0.0 {
            1.0 / period
        } else {
            f64::INFINITY
        },
        target_flows,
        edge_load,
    })
}

/// The lower bound `Multicast-LB(P, Ptarget)` (Section 5.1.2, equation 10').
#[derive(Debug, Clone)]
pub struct MulticastLb<'a> {
    instance: &'a MulticastInstance,
}

impl<'a> MulticastLb<'a> {
    /// Prepares the formulation for an instance.
    pub fn new(instance: &'a MulticastInstance) -> Self {
        MulticastLb { instance }
    }

    /// Solves the LP and returns the optimal flows and period.
    pub fn solve(&self) -> Result<FlowSolution, FormulationError> {
        solve_single_source(self.instance, LoadRule::Max)
    }
}

/// The upper bound `Multicast-UB(P, Ptarget)` (Section 5.1.2, equation 10),
/// i.e. the *scatter* baseline: achievable, at most `|Ptarget|` times the
/// lower bound.
#[derive(Debug, Clone)]
pub struct MulticastUb<'a> {
    instance: &'a MulticastInstance,
}

impl<'a> MulticastUb<'a> {
    /// Prepares the formulation for an instance.
    pub fn new(instance: &'a MulticastInstance) -> Self {
        MulticastUb { instance }
    }

    /// Solves the LP and returns the optimal flows and period.
    pub fn solve(&self) -> Result<FlowSolution, FormulationError> {
        solve_single_source(self.instance, LoadRule::Sum)
    }
}

/// `Broadcast-EB(P)`: the achievable optimal broadcast period on the platform
/// spanned by the instance (Section 5.1.4). This is `Multicast-LB` with the
/// target set extended to every node of the platform.
#[derive(Debug, Clone)]
pub struct BroadcastEb<'a> {
    instance: &'a MulticastInstance,
}

impl<'a> BroadcastEb<'a> {
    /// Prepares the formulation for an instance (the instance's own target
    /// set is ignored: every non-source node becomes a target).
    pub fn new(instance: &'a MulticastInstance) -> Self {
        BroadcastEb { instance }
    }

    /// Solves the LP and returns the optimal flows and period.
    ///
    /// Returns [`FormulationError::Unreachable`] when some node of the
    /// platform cannot be reached from the source — the convention used by
    /// the heuristics is then `Broadcast-EB = +∞` (Section 5.2.1).
    pub fn solve(&self) -> Result<FlowSolution, FormulationError> {
        let broadcast = broadcast_instance(self.instance)?;
        solve_single_source(&broadcast, LoadRule::Max)
    }
}

fn broadcast_instance(instance: &MulticastInstance) -> Result<MulticastInstance, FormulationError> {
    let targets: Vec<NodeId> = instance
        .platform
        .nodes()
        .filter(|&v| v != instance.source)
        .collect();
    MulticastInstance::new(instance.platform.clone(), instance.source, targets).map_err(|e| match e
    {
        pm_platform::instances::InstanceError::UnreachableTarget(n) => {
            FormulationError::Unreachable(n)
        }
        other => FormulationError::InvalidArgument(other.to_string()),
    })
}

/// Solution of the multi-source formulation: the period plus the per-edge
/// total load and the per-node incoming score (aggregated over origins and
/// destinations), which is what the `AUGMENTED SOURCES` heuristic needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSourceSolution {
    /// Optimal period `T*`.
    pub period: f64,
    /// Steady-state throughput `1 / T*`.
    pub throughput: f64,
    /// Per-edge total load `n_{kl}` (sum over origins and destinations).
    pub edge_load: Vec<f64>,
    /// `incoming_score[v]` = total fraction of traffic entering node `v`,
    /// summed over origins and destinations.
    pub incoming_score: Vec<f64>,
    /// The destination nodes the solution routed a message to (secondary
    /// sources first, then targets), aligned with `dest_flows`.
    pub dest_nodes: Vec<NodeId>,
    /// `dest_flows[d][e]` = fraction of destination `d`'s message crossing
    /// edge `e`, aggregated over its allowed origins. Each row is a ≈unit
    /// flow into `dest_nodes[d]` whose sources are the (earlier) origins —
    /// the raw material of the realization pipeline (`pm_core::realize`).
    pub dest_flows: Vec<Vec<f64>>,
}

/// `MulticastMultiSource-UB(P, Ptarget, Psource)` (Section 5.2.3): the
/// scatter-like formulation where an ordered list of secondary sources first
/// receives the whole message, then participates in serving the targets.
#[derive(Debug, Clone)]
pub struct MulticastMultiSourceUb<'a> {
    instance: &'a MulticastInstance,
    sources: Vec<NodeId>,
}

impl<'a> MulticastMultiSourceUb<'a> {
    /// Prepares the formulation. `sources` is the ordered list of sources,
    /// beginning with the instance's own source.
    pub fn new(
        instance: &'a MulticastInstance,
        sources: Vec<NodeId>,
    ) -> Result<Self, FormulationError> {
        if sources.first() != Some(&instance.source) {
            return Err(FormulationError::InvalidArgument(
                "the first source must be the instance's source".to_string(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for &s in &sources {
            if s.index() >= instance.platform.node_count() {
                return Err(FormulationError::InvalidArgument(format!(
                    "unknown node {s}"
                )));
            }
            if !seen.insert(s) {
                return Err(FormulationError::InvalidArgument(format!(
                    "duplicate source {s}"
                )));
            }
        }
        Ok(MulticastMultiSourceUb { instance, sources })
    }

    /// Solves the LP.
    pub fn solve(&self) -> Result<MultiSourceSolution, FormulationError> {
        let platform = &self.instance.platform;
        let m = platform.edge_count();
        let sources = &self.sources;
        let l = sources.len();
        // Destinations: secondary sources (each served by strictly earlier
        // sources) and targets that are not sources (served by all sources).
        // Each destination d has an allowed origin count `origins(d)`.
        #[derive(Clone, Copy)]
        struct Dest {
            node: NodeId,
            origins: usize,
        }
        let mut dests: Vec<Dest> = Vec::new();
        for (i, &s) in sources.iter().enumerate().skip(1) {
            dests.push(Dest {
                node: s,
                origins: i,
            });
        }
        for &t in &self.instance.targets {
            if !sources.contains(&t) {
                dests.push(Dest {
                    node: t,
                    origins: l,
                });
            }
        }
        if dests.is_empty() {
            return Err(FormulationError::InvalidArgument(
                "no destination left: every target is already a source".to_string(),
            ));
        }

        let mut lp = SparseBuilder::new(Objective::Minimize);
        // x[d][j][e]: fraction of the message for destination d originating
        // at source j (j < dests[d].origins) crossing edge e.
        let mut x: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(dests.len());
        for (di, d) in dests.iter().enumerate() {
            let mut per_origin = Vec::with_capacity(d.origins);
            for j in 0..d.origins {
                let row: Vec<VarId> = (0..m)
                    .map(|e| lp.add_var(&format!("x_{di}_{j}_{e}")))
                    .collect();
                per_origin.push(row);
            }
            x.push(per_origin);
        }
        let t_star = lp.add_var("T*");
        lp.set_objective_coeff(t_star, 1.0);

        // (1)/(1b): the contributions of the allowed origins sum to one full
        // message leaving those origins.
        for (di, d) in dests.iter().enumerate() {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for j in 0..d.origins {
                for &e in platform.out_edges(sources[j]) {
                    terms.push((x[di][j][e.index()], 1.0));
                }
            }
            if terms.is_empty() {
                return Err(FormulationError::Unreachable(d.node));
            }
            lp.add_constraint(terms, Relation::Eq, 1.0);
        }
        // (2)/(2b): one full message enters the destination.
        for (di, d) in dests.iter().enumerate() {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for xj in x[di].iter().take(d.origins) {
                for &e in platform.in_edges(d.node) {
                    terms.push((xj[e.index()], 1.0));
                }
            }
            if terms.is_empty() {
                return Err(FormulationError::Unreachable(d.node));
            }
            lp.add_constraint(terms, Relation::Eq, 1.0);
        }
        // No flow of a commodity back into its own origin (see the analogous
        // restriction in the single-source formulations).
        for (di, d) in dests.iter().enumerate() {
            for j in 0..d.origins {
                for &e in platform.in_edges(sources[j]) {
                    lp.add_constraint(vec![(x[di][j][e.index()], 1.0)], Relation::Eq, 0.0);
                }
            }
        }
        // (3)/(3b): conservation per (origin, destination) at every other node.
        for (di, d) in dests.iter().enumerate() {
            for j in 0..d.origins {
                for node in platform.nodes() {
                    if node == sources[j] || node == d.node {
                        continue;
                    }
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    for &e in platform.out_edges(node) {
                        terms.push((x[di][j][e.index()], 1.0));
                    }
                    for &e in platform.in_edges(node) {
                        terms.push((x[di][j][e.index()], -1.0));
                    }
                    if !terms.is_empty() {
                        lp.add_constraint(terms, Relation::Eq, 0.0);
                    }
                }
            }
        }
        // (10) scatter accounting + port/edge occupations against T*.
        let load_terms = |e: usize| -> Vec<(VarId, f64)> {
            let cost = platform.cost(EdgeId(e as u32));
            let mut terms = Vec::new();
            for (di, d) in dests.iter().enumerate() {
                for xj in x[di].iter().take(d.origins) {
                    terms.push((xj[e], cost));
                }
            }
            terms
        };
        for node in platform.nodes() {
            let mut in_terms: Vec<(VarId, f64)> = Vec::new();
            for &e in platform.in_edges(node) {
                in_terms.extend(load_terms(e.index()));
            }
            if !in_terms.is_empty() {
                in_terms.push((t_star, -1.0));
                lp.add_constraint(in_terms, Relation::Le, 0.0);
            }
            let mut out_terms: Vec<(VarId, f64)> = Vec::new();
            for &e in platform.out_edges(node) {
                out_terms.extend(load_terms(e.index()));
            }
            if !out_terms.is_empty() {
                out_terms.push((t_star, -1.0));
                lp.add_constraint(out_terms, Relation::Le, 0.0);
            }
        }
        for e in 0..m {
            let mut terms = load_terms(e);
            terms.push((t_star, -1.0));
            lp.add_constraint(terms, Relation::Le, 0.0);
        }
        // Canonical-vertex tie-break: minimize cost-weighted traffic over the
        // optimal face, matching `MaskedMultiSourceUb::new`.
        for e in 0..m {
            let cost = platform.cost(EdgeId(e as u32));
            for (di, d) in dests.iter().enumerate() {
                for xj in x[di].iter().take(d.origins) {
                    lp.set_secondary_coeff(xj[e], cost);
                }
            }
        }

        let sol = lp
            .build()
            .map_err(FormulationError::Lp)?
            .solve()
            .map_err(|e| match e {
                LpError::Infeasible => FormulationError::Unreachable(dests[0].node),
                other => FormulationError::Lp(other),
            })?;

        let period = sol.value(t_star);
        let mut edge_load = vec![0.0; m];
        let mut dest_flows: Vec<Vec<f64>> = vec![vec![0.0; m]; dests.len()];
        for (di, d) in dests.iter().enumerate() {
            for xj in x[di].iter().take(d.origins) {
                for e in 0..m {
                    let v = sol.value(xj[e]);
                    edge_load[e] += v;
                    dest_flows[di][e] += v;
                }
            }
        }
        let mut incoming_score = vec![0.0; platform.node_count()];
        for node in platform.nodes() {
            let mut s = 0.0;
            for &e in platform.in_edges(node) {
                for (di, d) in dests.iter().enumerate() {
                    for xj in x[di].iter().take(d.origins) {
                        s += sol.value(xj[e.index()]);
                    }
                }
            }
            incoming_score[node.index()] = s;
        }
        Ok(MultiSourceSolution {
            period,
            throughput: if period > 0.0 {
                1.0 / period
            } else {
                f64::INFINITY
            },
            edge_load,
            incoming_score,
            dest_nodes: dests.iter().map(|d| d.node).collect(),
            dest_flows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::instances::{
        chain_instance, figure1_instance, figure5_instance, relay_cross_instance,
    };

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn chain_bounds_are_the_edge_cost() {
        // Single target behind a chain: LB = UB = largest edge cost... in
        // fact with one target LB and UB coincide by definition.
        let inst = chain_instance(4, 2.0);
        let lb = MulticastLb::new(&inst).solve().unwrap();
        let ub = MulticastUb::new(&inst).solve().unwrap();
        approx(lb.period, 2.0);
        approx(ub.period, 2.0);
        approx(lb.throughput, 0.5);
    }

    #[test]
    fn figure5_gap_is_the_number_of_targets() {
        for n in [2usize, 3, 4] {
            let inst = figure5_instance(n);
            let lb = MulticastLb::new(&inst).solve().unwrap();
            let ub = MulticastUb::new(&inst).solve().unwrap();
            approx(lb.period, 1.0);
            approx(ub.period, n as f64);
        }
    }

    #[test]
    fn figure1_lower_bound_is_one() {
        let inst = figure1_instance();
        let lb = MulticastLb::new(&inst).solve().unwrap();
        approx(lb.period, 1.0);
        // The upper bound is strictly worse but at most |T| times the LB.
        let ub = MulticastUb::new(&inst).solve().unwrap();
        assert!(ub.period >= lb.period - 1e-9);
        assert!(ub.period <= lb.period * inst.target_count() as f64 + 1e-6);
    }

    #[test]
    fn lb_is_never_above_ub() {
        for inst in [
            figure1_instance(),
            figure5_instance(3),
            relay_cross_instance(),
            chain_instance(5, 0.7),
        ] {
            let lb = MulticastLb::new(&inst).solve().unwrap().period;
            let ub = MulticastUb::new(&inst).solve().unwrap().period;
            assert!(lb <= ub + 1e-6, "LB {lb} > UB {ub}");
            assert!(ub <= lb * inst.target_count() as f64 + 1e-6);
        }
    }

    #[test]
    fn broadcast_eb_dominates_multicast_lb() {
        // Broadcasting to everyone can only be harder than multicasting to a
        // subset: Multicast-LB <= Broadcast-EB.
        let inst = figure1_instance();
        let lb = MulticastLb::new(&inst).solve().unwrap().period;
        let eb = BroadcastEb::new(&inst).solve().unwrap().period;
        assert!(lb <= eb + 1e-6);
    }

    #[test]
    fn broadcast_eb_unreachable_node_is_reported() {
        // Restrict Figure 1 to a subgraph where some node is unreachable.
        let inst = figure1_instance();
        let keep: Vec<NodeId> = vec![
            NodeId(0),
            NodeId(1),
            NodeId(11),
            NodeId(12),
            NodeId(13),
            NodeId(5), // P5 has no incoming edge inside this subset
        ];
        let sub = MulticastInstance::new(
            inst.platform.clone(),
            inst.source,
            vec![NodeId(11), NodeId(12), NodeId(13)],
        )
        .unwrap()
        .restrict_to(&keep)
        .unwrap();
        let res = BroadcastEb::new(&sub).solve();
        assert!(matches!(res, Err(FormulationError::Unreachable(_))));
    }

    #[test]
    fn incoming_flow_score_is_positive_on_used_relays() {
        let inst = figure1_instance();
        let lb = MulticastLb::new(&inst).solve().unwrap();
        // P6 relays all the traffic entering the P7 cluster.
        assert!(lb.incoming_flow_score(&inst.platform, NodeId(6)) > 0.5);
        // P13 is a leaf target: traffic enters it but it relays nothing; its
        // incoming score is still positive (it receives its own copy).
        assert!(lb.incoming_flow_score(&inst.platform, NodeId(13)) > 0.5);
    }

    #[test]
    fn multisource_with_single_source_matches_multicast_ub() {
        let inst = figure5_instance(3);
        let ub = MulticastUb::new(&inst).solve().unwrap().period;
        let ms = MulticastMultiSourceUb::new(&inst, vec![inst.source])
            .unwrap()
            .solve()
            .unwrap()
            .period;
        approx(ms, ub);
    }

    #[test]
    fn adding_the_relay_as_secondary_source_helps_on_figure5() {
        // With the relay as a secondary source, the scatter accounting only
        // pays the slow source->relay link once: the period drops from n
        // towards 1 + 1/n... in any case it improves strictly.
        let inst = figure5_instance(3);
        let single = MulticastMultiSourceUb::new(&inst, vec![inst.source])
            .unwrap()
            .solve()
            .unwrap()
            .period;
        let relay = NodeId(1);
        let multi = MulticastMultiSourceUb::new(&inst, vec![inst.source, relay])
            .unwrap()
            .solve()
            .unwrap()
            .period;
        assert!(multi < single - 0.25, "multi {multi} vs single {single}");
    }

    #[test]
    fn multisource_rejects_bad_source_lists() {
        let inst = figure5_instance(2);
        assert!(MulticastMultiSourceUb::new(&inst, vec![NodeId(1)]).is_err());
        assert!(MulticastMultiSourceUb::new(&inst, vec![inst.source, inst.source]).is_err());
        assert!(MulticastMultiSourceUb::new(&inst, vec![inst.source, NodeId(99)]).is_err());
    }

    #[test]
    fn target_flows_satisfy_demand() {
        let inst = figure1_instance();
        let lb = MulticastLb::new(&inst).solve().unwrap();
        // Each target receives a total incoming fraction of 1.
        for (i, &t) in inst.targets.iter().enumerate() {
            let total: f64 = inst
                .platform
                .in_edges(t)
                .iter()
                .map(|&e| lb.target_flows[i][e.index()])
                .sum();
            approx(total, 1.0);
        }
    }
}
