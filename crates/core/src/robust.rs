//! Robust redundant-tree realizations: trading steady-state throughput for
//! delivery guarantees on unreliable platforms.
//!
//! [`crate::realize`] certifies the *fastest* periodic schedule supporting a
//! steady-state claim; this module certifies the most *survivable* one. A
//! robust realization selects several multicast trees from the same
//! candidate pool and runs **all of them on every multicast**: each tree
//! carries a full copy of each message, and a target is served when any
//! copy arrives. Redundancy is driven by edge-disjointness:
//!
//! 1. greedy augmentation picks trees until every target is reached by
//!    [`RobustOptions::disjointness`] pairwise edge-disjoint delivery paths
//!    (capped by what the platform supports, measured by BFS max-flow:
//!    [`pm_platform::algo::edge_disjoint_paths`]); when the pool stalls,
//!    fresh MCPH trees are generated with already-used edges penalized,
//! 2. the achieved redundancy is *verified* by max-flow on the union of
//!    the selected trees' edges (and by the per-tree path witnesses that
//!    actually guarantee delivery — a mixed-tree flow path is not a
//!    deliverable copy),
//! 3. the period is costed honestly: every tree pays its full one-port
//!    load each period, plus an [`RobustOptions::ack_overhead`] fraction
//!    reserved for acknowledgement/retransmit slots,
//! 4. the one-port simulator replays the schedule fault-free, under the
//!    configured loss rate, and (for disjointness ≥ 2) under the total
//!    loss of every single union edge in turn — the survival claim is
//!    *measured*, not assumed.
//!
//! Because the fault draws are keyed by `(seed, edge, tree, msg)`
//! ([`pm_sim::FaultModel`]), copies of one message on different trees fail
//! independently even where the trees share an edge; the analytic floor
//! [`RobustRealization::expected_delivery`] is therefore exact under
//! i.i.d. loss, and the simulator's measured ratio tracks it.

use crate::exact::pack_trees;
use crate::heuristics::Mcph;
use crate::realize::{candidate_pool, tree_edge_key, RealizeError, SteadyStateSolution};
use pm_platform::algo::edge_disjoint_paths_where;
use pm_platform::graph::{EdgeId, NodeId, Platform};
use pm_platform::instances::MulticastInstance;
use pm_platform::mask::NodeMask;
use pm_sched::coloring::CommTask;
use pm_sched::load::OnePortLoads;
use pm_sched::schedule::PeriodicSchedule;
use pm_sched::tree::{MulticastTree, WeightedTreeSet};
use pm_sim::{FaultModel, SimReport, SimulationConfig, Simulator};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Knobs of a robust realization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustOptions {
    /// Requested per-target count of pairwise edge-disjoint delivery paths
    /// (`f`). `1` degenerates to a single best tree; each target's
    /// requirement is capped by the max-flow the platform supports to it.
    pub disjointness: usize,
    /// Fraction of the period reserved for acknowledgement / retransmit
    /// slots (the period becomes `load × (1 + ack_overhead)`).
    pub ack_overhead: f64,
    /// Uniform i.i.d. loss rate of the under-loss verification replay.
    pub verify_loss: f64,
    /// Seed of the verification replays' fault draws.
    pub seed: u64,
    /// Horizon/warm-up of the verification replays (`redundant` and
    /// `faults` are set by the realizer).
    pub sim: SimulationConfig,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            disjointness: 2,
            ack_overhead: 0.05,
            verify_loss: 0.05,
            seed: 0xF417,
            sim: SimulationConfig::default(),
        }
    }
}

/// Per-target redundancy accounting of a robust realization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetRedundancy {
    /// The target.
    pub target: NodeId,
    /// Edge-disjoint paths the (masked) platform supports to this target —
    /// the ceiling of any redundancy scheme.
    pub capability: usize,
    /// The effective requirement: `min(options.disjointness, capability)`.
    pub required: usize,
    /// Pairwise edge-disjoint *per-tree delivery paths* achieved (the count
    /// that guarantees survival: each path is one tree's root→target path).
    pub disjoint_paths: usize,
    /// Max-flow on the union of the selected trees' edges (the ISSUE's
    /// verification measure; ≥ `disjoint_paths` since tree paths are a
    /// feasible flow).
    pub union_flow: usize,
}

/// A simulator-verified redundant realization. See the [module
/// docs](self) for the construction.
#[derive(Debug, Clone)]
pub struct RobustRealization {
    /// The options that produced it.
    pub options: RobustOptions,
    /// The selected trees, each at rate `1 / period`. Unlike a
    /// non-redundant set, the weights do not add up across trees: every
    /// tree carries a copy of *every* multicast, so the set's aggregate
    /// message rate is still one multicast per period.
    pub tree_set: WeightedTreeSet,
    /// Per-target redundancy accounting, in instance-target order.
    pub per_target: Vec<TargetRedundancy>,
    /// `min` over targets of the verified union max-flow.
    pub achieved_disjointness: usize,
    /// `min` over targets of the guaranteed per-tree disjoint paths.
    pub path_disjointness: usize,
    /// Throughput the *same pool* certifies without redundancy (packing LP,
    /// clamped to the solution's claim): the non-robust baseline whose gap
    /// to `robust_throughput` is the price of redundancy.
    pub baseline_throughput: f64,
    /// The robust steady-state throughput: `1 / period`.
    pub robust_throughput: f64,
    /// The robust period: union one-port load × `(1 + ack_overhead)`.
    pub period: f64,
    /// The periodic schedule executing every selected tree once per period.
    pub schedule: PeriodicSchedule,
    /// Fault-free replay of `schedule` (delivery ratio 1.0 by construction).
    pub fault_free: SimReport,
    /// Replay under uniform i.i.d. loss `options.verify_loss`.
    pub under_loss: SimReport,
    /// Whether the realization delivered 100% of multicasts under the total
    /// loss of each single union edge in turn (replayed edge by edge;
    /// guaranteed — and only checked — when `path_disjointness ≥ 2`).
    pub survives_single_edge_loss: bool,
}

impl RobustRealization {
    /// The analytic per-target delivery floor under uniform i.i.d. loss
    /// `loss`: `min_t 1 − Π_k (1 − Π_{e ∈ path_k(t)} (1 − loss))` over the
    /// selected trees covering `t`. Exact under the simulator's fault
    /// model, whose draws are independent per `(edge, tree, message)`.
    pub fn expected_delivery(&self, platform: &Platform, loss: f64) -> f64 {
        let mut floor = 1.0f64;
        for tr in &self.per_target {
            let mut miss_all = 1.0f64;
            for tree in self.tree_set.trees() {
                let Some(path) = tree_path(platform, tree, tr.target) else {
                    continue;
                };
                let arrive: f64 = path.iter().map(|_| 1.0 - loss).product();
                miss_all *= 1.0 - arrive;
            }
            floor = floor.min(1.0 - miss_all);
        }
        floor
    }

    /// Throughput given up for the redundancy:
    /// `1 − robust_throughput / baseline_throughput` (0 when the baseline
    /// carries no throughput).
    pub fn throughput_sacrifice(&self) -> f64 {
        if self.baseline_throughput > 0.0 {
            1.0 - self.robust_throughput / self.baseline_throughput
        } else {
            0.0
        }
    }
}

/// Realizes a steady-state solution as a redundant, simulator-verified
/// schedule on the fully enabled platform. See the [module docs](self).
pub fn realize_robust(
    instance: &MulticastInstance,
    solution: &SteadyStateSolution,
    options: &RobustOptions,
) -> Result<RobustRealization, RealizeError> {
    let mask = NodeMask::full(instance.platform.node_count());
    realize_robust_masked(instance, &mask, solution, &[], options)
}

/// [`realize_robust`] under a node mask and with a seed tree pool (the
/// robust counterpart of [`crate::realize::realize_with_pool`], used by
/// [`crate::session::Session::re_realize_robust`]): seed trees and pool
/// candidates through disabled nodes are filtered out, and all max-flow
/// verification runs on the masked platform.
pub fn realize_robust_masked(
    instance: &MulticastInstance,
    mask: &NodeMask,
    solution: &SteadyStateSolution,
    seed_trees: &[MulticastTree],
    options: &RobustOptions,
) -> Result<RobustRealization, RealizeError> {
    let platform = &instance.platform;
    if options.disjointness == 0 {
        return Err(RealizeError::NotRealizable(
            "disjointness 0 requests no delivery path at all".to_string(),
        ));
    }
    if !(options.ack_overhead.is_finite() && options.ack_overhead >= 0.0) {
        return Err(RealizeError::NotRealizable(format!(
            "ack overhead {} is not finite and non-negative",
            options.ack_overhead
        )));
    }
    if !(0.0..1.0).contains(&options.verify_loss) {
        return Err(RealizeError::NotRealizable(format!(
            "verification loss rate {} is outside [0, 1)",
            options.verify_loss
        )));
    }
    let lp_period = solution.period();
    if !(lp_period.is_finite() && lp_period > 0.0) {
        return Err(RealizeError::NotRealizable(format!(
            "period {lp_period} is not finite and positive"
        )));
    }

    let tree_active =
        |tree: &MulticastTree| tree.edges().iter().all(|&e| mask.edge_active(platform, e));
    let (raw_pool, _rows) = candidate_pool(instance, solution, seed_trees)?;
    let mut pool: Vec<MulticastTree> = raw_pool.into_iter().filter(|t| tree_active(t)).collect();
    if pool.is_empty() {
        return Err(RealizeError::NotRealizable(
            "no candidate tree survives the node mask".to_string(),
        ));
    }

    // Per-target platform capability and effective requirement.
    let edge_ok = |e: EdgeId| mask.edge_active(platform, e);
    let capability: Vec<usize> = instance
        .targets
        .iter()
        .map(|&t| edge_disjoint_paths_where(platform, instance.source, t, &edge_ok))
        .collect();
    let required: Vec<usize> = capability
        .iter()
        .map(|&c| options.disjointness.min(c).max(1))
        .collect();

    // Greedy disjoint-tree augmentation: start from the best single tree,
    // add the tree that most reduces the total disjointness deficiency,
    // generating penalized MCPH trees when the pool stalls.
    let start = pool
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.period(platform)
                .partial_cmp(&b.period(platform))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .expect("pool is non-empty");
    let mut selected: Vec<usize> = vec![start];
    let deficiency = |selected: &[usize], pool: &[MulticastTree]| -> usize {
        instance
            .targets
            .iter()
            .zip(&required)
            .map(|(&t, &req)| {
                let d = disjoint_tree_paths(platform, pool, selected, t);
                req.saturating_sub(d)
            })
            .sum()
    };
    let mut current = deficiency(&selected, &pool);
    let max_rounds = 2 * options.disjointness + 6;
    for _ in 0..max_rounds {
        if current == 0 {
            break;
        }
        // Best pool candidate: smallest resulting deficiency, then smallest
        // period, then smallest index — all deterministic.
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, tree) in pool.iter().enumerate() {
            if selected.contains(&i) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(i);
            let d = deficiency(&trial, &pool);
            if d >= current {
                continue;
            }
            let period = tree.period(platform);
            let better = match best {
                None => true,
                Some((bd, _, bp)) => d < bd || (d == bd && period < bp - 1e-12),
            };
            if better {
                best = Some((d, i, period));
            }
        }
        if let Some((d, i, _)) = best {
            selected.push(i);
            current = d;
            continue;
        }
        // The pool stalled: price a fresh MCPH tree away from used edges.
        let mut uses = vec![0usize; platform.edge_count()];
        for &k in &selected {
            for &e in pool[k].edges() {
                uses[e.index()] += 1;
            }
        }
        let costs: Vec<f64> = platform
            .edge_ids()
            .map(|e| {
                if !mask.edge_active(platform, e) {
                    f64::INFINITY
                } else {
                    platform.cost(e) * (1.0 + 8.0 * uses[e.index()] as f64)
                }
            })
            .collect();
        let Ok(tree) = Mcph.build_tree_with_costs(instance, costs) else {
            break;
        };
        let key = tree_edge_key(&tree);
        if pool.iter().any(|p| tree_edge_key(p) == key) {
            break; // nothing new to offer: the deficiency is structural
        }
        pool.push(tree);
        let mut trial = selected.clone();
        trial.push(pool.len() - 1);
        let d = deficiency(&trial, &pool);
        if d < current {
            selected = trial;
            current = d;
        } else {
            pool.pop();
            break;
        }
    }

    // Verify the redundancy: per-tree path witnesses + union max-flow.
    let union: BTreeSet<u32> = selected
        .iter()
        .flat_map(|&k| pool[k].edges().iter().map(|e| e.0))
        .collect();
    let union_ok = |e: EdgeId| union.contains(&e.0) && mask.edge_active(platform, e);
    let per_target: Vec<TargetRedundancy> = instance
        .targets
        .iter()
        .enumerate()
        .map(|(i, &t)| TargetRedundancy {
            target: t,
            capability: capability[i],
            required: required[i],
            disjoint_paths: disjoint_tree_paths(platform, &pool, &selected, t),
            union_flow: edge_disjoint_paths_where(platform, instance.source, t, &union_ok),
        })
        .collect();
    let achieved_disjointness = per_target.iter().map(|t| t.union_flow).min().unwrap_or(0);
    let path_disjointness = per_target
        .iter()
        .map(|t| t.disjoint_paths)
        .min()
        .unwrap_or(0);

    // Cost the redundant period: every tree pays its full one-port load
    // each period, plus the ack/retransmit reservation.
    let mut loads = OnePortLoads::new(platform.node_count());
    for &k in &selected {
        for &e in pool[k].edges() {
            let edge = platform.edge(e);
            loads.add_transfer(edge.src, edge.dst, edge.cost);
        }
    }
    let period = loads.max_load() * (1.0 + options.ack_overhead);
    if !(period.is_finite() && period > 0.0) {
        return Err(RealizeError::NotRealizable(
            "the selected trees carry no load".to_string(),
        ));
    }
    let robust_throughput = 1.0 / period;

    // Non-redundant baseline over the same pool, clamped like `realize`.
    let (_, packed) = pack_trees(platform, &pool).map_err(RealizeError::Packing)?;
    let baseline_throughput = packed.min(1.0 / lp_period);

    let mut tree_set = WeightedTreeSet::new();
    let mut tasks: Vec<CommTask> = Vec::new();
    for (k, &idx) in selected.iter().enumerate() {
        let tree = pool[idx].clone();
        for &e in tree.edges() {
            let edge = platform.edge(e);
            tasks.push(CommTask {
                src: edge.src,
                dst: edge.dst,
                duration: edge.cost,
                tag: k,
            });
        }
        tree_set.push(tree, robust_throughput)?;
    }
    let schedule = PeriodicSchedule::from_comm_tasks(platform, &tasks, period, 1.0)?;
    schedule.validate(platform)?;

    // Simulator verification: fault-free, under loss, and (when the path
    // witnesses promise it) under every single union edge's total loss.
    let replay = |faults: Option<FaultModel>| {
        let sim = Simulator::new(SimulationConfig {
            faults,
            redundant: true,
            ..options.sim.clone()
        });
        sim.run_schedule_on(platform, mask, &schedule, &instance.targets)
            .map_err(|e| RealizeError::NotRealizable(e.to_string()))
    };
    let fault_free = replay(None)?;
    let under_loss = replay(Some(FaultModel::lossy(options.seed, options.verify_loss)))?;
    let mut survives = path_disjointness >= 2;
    if survives {
        for &e in &union {
            let model = FaultModel::default().with_edge_loss(EdgeId(e), 1.0);
            let report = replay(Some(model))?;
            if report.delivery_ratio < 1.0 {
                survives = false;
                break;
            }
        }
    }

    Ok(RobustRealization {
        options: options.clone(),
        tree_set,
        per_target,
        achieved_disjointness,
        path_disjointness,
        baseline_throughput,
        robust_throughput,
        period,
        schedule,
        fault_free,
        under_loss,
        survives_single_edge_loss: survives,
    })
}

/// The root→`target` path of `tree` as an edge list, if `tree` covers the
/// target (walking parent edges up from the target).
fn tree_path(platform: &Platform, tree: &MulticastTree, target: NodeId) -> Option<Vec<EdgeId>> {
    let mut path = Vec::new();
    let mut v = target;
    while v != tree.source {
        let e = tree.parent_edge(platform, v)?;
        path.push(e);
        v = platform.edge(e).src;
        if path.len() > platform.edge_count() {
            return None; // defensive: malformed tree
        }
    }
    Some(path)
}

/// The number of pairwise edge-disjoint root→`target` delivery paths among
/// the selected trees, counted greedily in selection order (a deterministic
/// lower bound — and the count that matters for delivery: each path is one
/// tree's copy route, so `d` disjoint paths survive any `d − 1` edge
/// failures).
fn disjoint_tree_paths(
    platform: &Platform,
    pool: &[MulticastTree],
    selected: &[usize],
    target: NodeId,
) -> usize {
    let mut used: BTreeSet<u32> = BTreeSet::new();
    let mut count = 0usize;
    for &k in selected {
        let Some(path) = tree_path(platform, &pool[k], target) else {
            continue;
        };
        if path.iter().any(|e| used.contains(&e.0)) {
            continue;
        }
        for e in &path {
            used.insert(e.0);
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulations::MulticastLb;
    use pm_platform::graph::PlatformBuilder;
    use pm_platform::instances::{chain_instance, figure1_instance};

    /// A diamond with two fully edge-disjoint source→target routes.
    fn diamond_instance() -> MulticastInstance {
        let mut b = PlatformBuilder::new();
        let s = b.add_node();
        let a = b.add_node();
        let c = b.add_node();
        let t = b.add_node();
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(s, c, 1.2).unwrap();
        b.add_edge(a, t, 1.0).unwrap();
        b.add_edge(c, t, 1.2).unwrap();
        let g = b.build().unwrap();
        MulticastInstance::new(g, s, vec![t]).unwrap()
    }

    fn lb_solution(inst: &MulticastInstance) -> SteadyStateSolution {
        let lb = MulticastLb::new(inst).solve().unwrap();
        SteadyStateSolution::from_flow_solution(inst, &inst.targets, &lb, lb.period).unwrap()
    }

    #[test]
    fn diamond_reaches_two_disjoint_paths_and_survives_edge_death() {
        let inst = diamond_instance();
        let solution = lb_solution(&inst);
        let robust = realize_robust(&inst, &solution, &RobustOptions::default()).unwrap();
        assert_eq!(robust.path_disjointness, 2);
        assert!(robust.achieved_disjointness >= 2);
        assert!(robust.survives_single_edge_loss);
        assert_eq!(robust.fault_free.delivery_ratio, 1.0);
        assert_eq!(robust.fault_free.one_port_violations, 0);
        // Redundancy costs throughput against the non-redundant baseline.
        assert!(robust.robust_throughput <= robust.baseline_throughput + 1e-9);
        // The measured ratio under 5% loss beats the single-tree floor.
        assert!(robust.under_loss.delivery_ratio > 0.9);
        let floor = robust.expected_delivery(&inst.platform, robust.options.verify_loss);
        assert!(
            robust.under_loss.delivery_ratio >= floor - 0.05,
            "measured {} vs floor {floor}",
            robust.under_loss.delivery_ratio
        );
    }

    #[test]
    fn f1_degenerates_to_the_best_single_tree() {
        let inst = diamond_instance();
        let solution = lb_solution(&inst);
        let options = RobustOptions {
            disjointness: 1,
            ack_overhead: 0.0,
            ..RobustOptions::default()
        };
        let robust = realize_robust(&inst, &solution, &options).unwrap();
        assert_eq!(robust.tree_set.len(), 1);
        assert!(!robust.survives_single_edge_loss);
        // One tree at zero overhead realizes that tree's own period.
        let tree_period = robust.tree_set.trees()[0].period(&inst.platform);
        assert!((robust.period - tree_period).abs() < 1e-9);
    }

    #[test]
    fn requirement_is_capped_by_the_platform_capability() {
        // A chain has exactly one path: requesting f=3 must cap at 1, not
        // loop or fail.
        let inst = chain_instance(4, 0.5);
        let solution = lb_solution(&inst);
        let options = RobustOptions {
            disjointness: 3,
            ..RobustOptions::default()
        };
        let robust = realize_robust(&inst, &solution, &options).unwrap();
        assert_eq!(robust.per_target[0].capability, 1);
        assert_eq!(robust.per_target[0].required, 1);
        assert_eq!(robust.path_disjointness, 1);
        assert!(!robust.survives_single_edge_loss);
    }

    #[test]
    fn figure1_f2_is_verified_by_max_flow_and_survival_replay() {
        let inst = figure1_instance();
        let solution = lb_solution(&inst);
        let options = RobustOptions {
            sim: SimulationConfig {
                horizon: 60,
                warmup: 6,
                ..SimulationConfig::default()
            },
            ..RobustOptions::default()
        };
        let robust = realize_robust(&inst, &solution, &options).unwrap();
        for tr in &robust.per_target {
            assert!(
                tr.disjoint_paths >= tr.required,
                "target {} got {} of {} disjoint paths",
                tr.target,
                tr.disjoint_paths,
                tr.required
            );
            assert!(tr.union_flow >= tr.disjoint_paths);
        }
        if robust.path_disjointness >= 2 {
            assert!(robust.survives_single_edge_loss);
        }
        assert_eq!(robust.fault_free.delivery_ratio, 1.0);
        assert_eq!(robust.fault_free.one_port_violations, 0);
    }

    #[test]
    fn bad_options_are_rejected() {
        let inst = diamond_instance();
        let solution = lb_solution(&inst);
        for options in [
            RobustOptions {
                disjointness: 0,
                ..RobustOptions::default()
            },
            RobustOptions {
                ack_overhead: -0.5,
                ..RobustOptions::default()
            },
            RobustOptions {
                verify_loss: 1.0,
                ..RobustOptions::default()
            },
        ] {
            assert!(matches!(
                realize_robust(&inst, &solution, &options),
                Err(RealizeError::NotRealizable(_))
            ));
        }
    }
}
