//! Aggregated comparison reports, mirroring the curves of Figure 11.

use crate::formulations::FormulationError;
use crate::heuristics::{
    AugmentedMulticast, AugmentedSources, BroadcastBaseline, HeuristicResult, LowerBoundReference,
    Mcph, ReducedBroadcast, ScatterBaseline, ThroughputHeuristic,
};
use pm_platform::instances::MulticastInstance;
use serde::{Deserialize, Serialize};

/// The heuristics and reference curves reported in the paper's evaluation
/// (Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// `scatter`: the `Multicast-UB` upper bound.
    Scatter,
    /// `lower bound`: the `Multicast-LB` lower bound (not always achievable).
    LowerBound,
    /// `broadcast`: broadcast on the whole platform.
    Broadcast,
    /// `MCPH`: the tree-based heuristic.
    Mcph,
    /// `Augm. MC`: the AUGMENTED MULTICAST heuristic.
    AugmentedMulticast,
    /// `Red. BC`: the REDUCED BROADCAST heuristic.
    ReducedBroadcast,
    /// `Multisource MC`: the AUGMENTED SOURCES heuristic.
    MultisourceMulticast,
}

impl HeuristicKind {
    /// All kinds, in the order used by the paper's legends.
    pub const ALL: [HeuristicKind; 7] = [
        HeuristicKind::Scatter,
        HeuristicKind::LowerBound,
        HeuristicKind::Broadcast,
        HeuristicKind::Mcph,
        HeuristicKind::AugmentedMulticast,
        HeuristicKind::ReducedBroadcast,
        HeuristicKind::MultisourceMulticast,
    ];

    /// The label used by the paper.
    pub fn label(self) -> &'static str {
        match self {
            HeuristicKind::Scatter => "scatter",
            HeuristicKind::LowerBound => "lower bound",
            HeuristicKind::Broadcast => "broadcast",
            HeuristicKind::Mcph => "MCPH",
            HeuristicKind::AugmentedMulticast => "Augm. MC",
            HeuristicKind::ReducedBroadcast => "Red. BC",
            HeuristicKind::MultisourceMulticast => "Multisource MC",
        }
    }

    /// Runs the corresponding heuristic.
    pub fn run(self, instance: &MulticastInstance) -> Result<HeuristicResult, FormulationError> {
        match self {
            HeuristicKind::Scatter => ScatterBaseline.run(instance),
            HeuristicKind::LowerBound => LowerBoundReference.run(instance),
            HeuristicKind::Broadcast => BroadcastBaseline.run(instance),
            HeuristicKind::Mcph => Mcph.run(instance),
            HeuristicKind::AugmentedMulticast => AugmentedMulticast.run(instance),
            HeuristicKind::ReducedBroadcast => ReducedBroadcast.run(instance),
            HeuristicKind::MultisourceMulticast => AugmentedSources::default().run(instance),
        }
    }
}

/// LP accounting of one heuristic run inside a report: how many linear
/// programs it solved and how they warm-started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindLpStats {
    /// Linear programs solved.
    pub lp_solves: u64,
    /// Solves that warm-started from a previous basis (masked-template
    /// hints and ambient [`pm_lp::WarmStartCache`] hits alike).
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
}

impl KindLpStats {
    /// Accumulates another measurement.
    pub fn add(&mut self, other: KindLpStats) {
        self.lp_solves += other.lp_solves;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
    }
}

/// Periods measured on one instance for every heuristic and reference curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MulticastReport {
    /// Number of nodes of the platform.
    pub nodes: usize,
    /// Number of targets of the instance.
    pub targets: usize,
    /// `(kind, period)` pairs, in [`HeuristicKind::ALL`] order. A period of
    /// `f64::INFINITY` means the heuristic could not serve the targets.
    pub periods: Vec<(HeuristicKind, f64)>,
    /// `(kind, stats)` LP accounting, same order as `periods`. Combines the
    /// masked-template solves the heuristic performed itself with the
    /// solves it routed through the thread's ambient
    /// [`pm_lp::WarmStartCache`] scope (attributed per kind from the
    /// scope's counter deltas).
    pub lp_stats: Vec<(HeuristicKind, KindLpStats)>,
}

impl MulticastReport {
    /// Runs every heuristic of `kinds` on the instance.
    pub fn collect(
        instance: &MulticastInstance,
        kinds: &[HeuristicKind],
    ) -> Result<Self, FormulationError> {
        let mut periods = Vec::with_capacity(kinds.len());
        let mut lp_stats = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let scoped_before = pm_lp::revised::scoped_cache_counts();
            let run = kind.run(instance);
            // Masked-template solves are accounted in the result itself;
            // LpProblem::solve calls (the baseline curves) land in the
            // ambient cache scope, whose delta attributes them to this kind.
            let mut stats = KindLpStats::default();
            if let (Some((h0, m0)), Some((h1, m1))) =
                (scoped_before, pm_lp::revised::scoped_cache_counts())
            {
                stats.warm_hits += h1 - h0;
                stats.warm_misses += m1 - m0;
                stats.lp_solves += (h1 - h0) + (m1 - m0);
            }
            let period = match run {
                Ok(res) => {
                    stats.lp_solves += (res.warm_hits + res.warm_misses) as u64;
                    stats.warm_hits += res.warm_hits as u64;
                    stats.warm_misses += res.warm_misses as u64;
                    res.period
                }
                Err(FormulationError::Unreachable(_)) => f64::INFINITY,
                Err(e) => return Err(e),
            };
            periods.push((kind, period));
            lp_stats.push((kind, stats));
        }
        Ok(MulticastReport {
            nodes: instance.platform.node_count(),
            targets: instance.target_count(),
            periods,
            lp_stats,
        })
    }

    /// The LP accounting of a given kind, if it was collected.
    pub fn lp_stats_for(&self, kind: HeuristicKind) -> Option<KindLpStats> {
        self.lp_stats
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, s)| s)
    }

    /// The period measured for a given kind, if it was collected.
    pub fn period(&self, kind: HeuristicKind) -> Option<f64> {
        self.periods
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, p)| p)
    }

    /// The ratio `period(kind) / period(reference)`, the quantity plotted in
    /// Figure 11 (a)/(c) with `reference = Scatter` and (b)/(d) with
    /// `reference = LowerBound`.
    pub fn ratio_to(&self, kind: HeuristicKind, reference: HeuristicKind) -> Option<f64> {
        let p = self.period(kind)?;
        let r = self.period(reference)?;
        if r > 0.0 {
            Some(p / r)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::instances::figure5_instance;

    #[test]
    fn report_collects_all_kinds_and_orders_ratios() {
        let inst = figure5_instance(3);
        let report = MulticastReport::collect(&inst, &HeuristicKind::ALL).unwrap();
        assert_eq!(report.periods.len(), 7);
        assert_eq!(report.lp_stats.len(), 7);
        assert_eq!(report.targets, 3);
        // The masked greedy heuristics account their LP solves themselves,
        // scope or no scope.
        let greedy = report
            .lp_stats_for(HeuristicKind::ReducedBroadcast)
            .unwrap();
        assert!(greedy.lp_solves >= 1);
        assert_eq!(greedy.lp_solves, greedy.warm_hits + greedy.warm_misses);
        let scatter = report.period(HeuristicKind::Scatter).unwrap();
        let lb = report.period(HeuristicKind::LowerBound).unwrap();
        assert!(scatter >= lb);
        // Every heuristic is at least as good as scatter on this instance and
        // no better than the lower bound.
        for kind in [
            HeuristicKind::Mcph,
            HeuristicKind::Broadcast,
            HeuristicKind::AugmentedMulticast,
            HeuristicKind::ReducedBroadcast,
            HeuristicKind::MultisourceMulticast,
        ] {
            let ratio_scatter = report.ratio_to(kind, HeuristicKind::Scatter).unwrap();
            let ratio_lb = report.ratio_to(kind, HeuristicKind::LowerBound).unwrap();
            assert!(ratio_scatter <= 1.0 + 1e-6, "{kind:?}");
            assert!(ratio_lb >= 1.0 - 1e-6, "{kind:?}");
        }
    }

    #[test]
    fn scoped_baseline_solves_are_attributed_per_kind() {
        let inst = figure5_instance(3);
        let kinds = [
            HeuristicKind::Scatter,
            HeuristicKind::LowerBound,
            HeuristicKind::Mcph,
        ];
        let mut cache = pm_lp::WarmStartCache::new();
        let report = cache.scope(|| MulticastReport::collect(&inst, &kinds).unwrap());
        // Scatter and LowerBound are one LpProblem::solve each, attributed
        // from the scope's deltas; MCPH solves no LP.
        assert_eq!(
            report
                .lp_stats_for(HeuristicKind::Scatter)
                .unwrap()
                .lp_solves,
            1
        );
        assert_eq!(
            report.lp_stats_for(HeuristicKind::Mcph).unwrap().lp_solves,
            0
        );
        let total: u64 = report.lp_stats.iter().map(|&(_, s)| s.lp_solves).sum();
        assert_eq!(total, cache.solves());
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(HeuristicKind::Scatter.label(), "scatter");
        assert_eq!(
            HeuristicKind::MultisourceMulticast.label(),
            "Multisource MC"
        );
        assert_eq!(HeuristicKind::ALL.len(), 7);
    }
}
