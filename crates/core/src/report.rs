//! Aggregated comparison reports, mirroring the curves of Figure 11.

use crate::formulations::FormulationError;
use crate::heuristics::RunOptions;
use crate::realize::RealizeError;
use crate::session::{Session, SessionError};
use pm_platform::instances::MulticastInstance;
use serde::{Deserialize, Serialize};

/// The heuristics and reference curves reported in the paper's evaluation
/// (Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// `scatter`: the `Multicast-UB` upper bound.
    Scatter,
    /// `lower bound`: the `Multicast-LB` lower bound (not always achievable).
    LowerBound,
    /// `broadcast`: broadcast on the whole platform.
    Broadcast,
    /// `MCPH`: the tree-based heuristic.
    Mcph,
    /// `Augm. MC`: the AUGMENTED MULTICAST heuristic.
    AugmentedMulticast,
    /// `Red. BC`: the REDUCED BROADCAST heuristic.
    ReducedBroadcast,
    /// `Multisource MC`: the AUGMENTED SOURCES heuristic.
    MultisourceMulticast,
}

impl HeuristicKind {
    /// All kinds, in the order used by the paper's legends.
    pub const ALL: [HeuristicKind; 7] = [
        HeuristicKind::Scatter,
        HeuristicKind::LowerBound,
        HeuristicKind::Broadcast,
        HeuristicKind::Mcph,
        HeuristicKind::AugmentedMulticast,
        HeuristicKind::ReducedBroadcast,
        HeuristicKind::MultisourceMulticast,
    ];

    /// The label used by the paper.
    pub fn label(self) -> &'static str {
        match self {
            HeuristicKind::Scatter => "scatter",
            HeuristicKind::LowerBound => "lower bound",
            HeuristicKind::Broadcast => "broadcast",
            HeuristicKind::Mcph => "MCPH",
            HeuristicKind::AugmentedMulticast => "Augm. MC",
            HeuristicKind::ReducedBroadcast => "Red. BC",
            HeuristicKind::MultisourceMulticast => "Multisource MC",
        }
    }
}

/// LP accounting of one heuristic run inside a report: how many linear
/// programs it solved and how they warm-started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindLpStats {
    /// Linear programs solved.
    pub lp_solves: u64,
    /// Solves that warm-started from a previous basis (masked-template
    /// hints and ambient [`pm_lp::WarmStartCache`] hits alike).
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
}

impl KindLpStats {
    /// Accumulates another measurement.
    pub fn add(&mut self, other: KindLpStats) {
        self.lp_solves += other.lp_solves;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
    }
}

/// The simulator-verified realization of one heuristic's solution inside a
/// report (see [`crate::realize`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindRealization {
    /// Throughput measured by replaying the realized periodic schedule.
    pub simulated_throughput: f64,
    /// `|simulated_period − lp_period| / lp_period`.
    pub realization_gap: f64,
    /// Number of weighted trees in the realized combination.
    pub trees: usize,
    /// One-port violations the simulator detected (0 for valid schedules).
    pub one_port_violations: u64,
}

/// Options of [`MulticastReport::collect_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectOptions {
    /// Realize every heuristic's solution as a periodic schedule and verify
    /// it in the simulator (fills [`MulticastReport::realizations`]).
    pub realize: bool,
}

/// Periods measured on one instance for every heuristic and reference curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MulticastReport {
    /// Number of nodes of the platform.
    pub nodes: usize,
    /// Number of targets of the instance.
    pub targets: usize,
    /// `(kind, period)` pairs, in [`HeuristicKind::ALL`] order. A period of
    /// `f64::INFINITY` means the heuristic could not serve the targets.
    pub periods: Vec<(HeuristicKind, f64)>,
    /// `(kind, stats)` LP accounting, same order as `periods`. Combines the
    /// masked-template solves the heuristic performed itself with the
    /// solves it routed through the thread's ambient
    /// [`pm_lp::WarmStartCache`] scope (attributed per kind from the
    /// scope's counter deltas). When realization is enabled, the packing
    /// LPs of the realization pipeline are included in their kind's
    /// accounting.
    pub lp_stats: Vec<(HeuristicKind, KindLpStats)>,
    /// `(kind, realization)` outcomes, same order as `periods`; empty when
    /// the report was collected without [`CollectOptions::realize`]. `None`
    /// for a kind whose solution could not be realized (infinite period).
    pub realizations: Vec<(HeuristicKind, Option<KindRealization>)>,
}

impl MulticastReport {
    /// Runs every heuristic of `kinds` on the instance.
    pub fn collect(
        instance: &MulticastInstance,
        kinds: &[HeuristicKind],
    ) -> Result<Self, FormulationError> {
        Self::collect_with(instance, kinds, CollectOptions::default())
    }

    /// [`MulticastReport::collect`] with explicit options (realization).
    ///
    /// A thin convenience over [`MulticastReport::collect_from_session`]:
    /// one throwaway [`Session`] is built for the instance. Callers holding
    /// a long-lived session (drifting platforms) collect through it instead
    /// and keep its warm bases and tree pools.
    pub fn collect_with(
        instance: &MulticastInstance,
        kinds: &[HeuristicKind],
        options: CollectOptions,
    ) -> Result<Self, FormulationError> {
        let mut session = Session::new(instance.clone());
        Self::collect_from_session(&mut session, kinds, options)
    }

    /// Collects the report through a caller-owned [`Session`]: every kind is
    /// one `session.solve_with` (and, under `options.realize`, one
    /// `session.re_realize`), so consecutive kinds — and consecutive reports
    /// on a drifting platform — share templates and warm-start bases.
    pub fn collect_from_session(
        session: &mut Session,
        kinds: &[HeuristicKind],
        options: CollectOptions,
    ) -> Result<Self, FormulationError> {
        let mut periods = Vec::with_capacity(kinds.len());
        let mut lp_stats = Vec::with_capacity(kinds.len());
        let mut realizations = Vec::new();
        for &kind in kinds {
            // Steady-state capture clones the winning flow matrices, so it
            // is only requested when this report will realize them.
            let run = session.solve_with(
                kind,
                RunOptions {
                    capture_steady_state: options.realize,
                    ..RunOptions::default()
                },
            );
            let (period, mut stats) = match run {
                Ok(solve) => (
                    solve.result.period,
                    KindLpStats {
                        lp_solves: solve.stats.lp_solves,
                        warm_hits: solve.stats.warm_hits,
                        warm_misses: solve.stats.warm_misses,
                    },
                ),
                Err(SessionError::Formulation(FormulationError::Unreachable(_))) => {
                    (f64::INFINITY, KindLpStats::default())
                }
                Err(SessionError::Formulation(e)) => return Err(e),
                // Panic quarantine / replay failures have no formulation
                // shape; surface them as an invalid-argument wrapper so the
                // one-shot report API keeps its error type.
                Err(e) => return Err(FormulationError::InvalidArgument(e.to_string())),
            };
            let realization = if options.realize && period.is_finite() {
                match session.re_realize(kind) {
                    Ok(re) => {
                        // The packing LPs of the realization pipeline count
                        // toward the kind that produced the solution.
                        stats.add(KindLpStats {
                            lp_solves: re.stats.lp_solves,
                            warm_hits: re.stats.warm_hits,
                            warm_misses: re.stats.warm_misses,
                        });
                        Some(KindRealization {
                            simulated_throughput: re.realization.simulated.throughput,
                            realization_gap: re.realization.realization_gap,
                            trees: re.realization.tree_set.len(),
                            one_port_violations: re.realization.simulated.one_port_violations
                                as u64,
                        })
                    }
                    // Scheduling, packing or decomposition failures on a
                    // finite-period solution are pipeline bugs, not
                    // legitimately unrealizable solutions: make them visible
                    // (stderr only, so the artifacts stay deterministic).
                    Err(
                        e @ SessionError::Realize(
                            RealizeError::Schedule(_)
                            | RealizeError::Packing(_)
                            | RealizeError::Decomposition(_),
                        ),
                    ) => {
                        eprintln!(
                            "realize: {} pipeline failure on a {}-node instance: {e}",
                            kind.label(),
                            session.instance().platform.node_count()
                        );
                        None
                    }
                    Err(_) => None,
                }
            } else {
                None
            };
            periods.push((kind, period));
            lp_stats.push((kind, stats));
            if options.realize {
                realizations.push((kind, realization));
            }
        }
        Ok(MulticastReport {
            nodes: session.instance().platform.node_count(),
            targets: session.instance().target_count(),
            periods,
            lp_stats,
            realizations,
        })
    }

    /// The LP accounting of a given kind, if it was collected.
    pub fn lp_stats_for(&self, kind: HeuristicKind) -> Option<KindLpStats> {
        self.lp_stats
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, s)| s)
    }

    /// The realization outcome of a given kind, if realization ran and the
    /// kind's solution was realizable.
    pub fn realization_for(&self, kind: HeuristicKind) -> Option<KindRealization> {
        self.realizations
            .iter()
            .find(|(k, _)| *k == kind)
            .and_then(|&(_, r)| r)
    }

    /// The period measured for a given kind, if it was collected.
    pub fn period(&self, kind: HeuristicKind) -> Option<f64> {
        self.periods
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, p)| p)
    }

    /// The ratio `period(kind) / period(reference)`, the quantity plotted in
    /// Figure 11 (a)/(c) with `reference = Scatter` and (b)/(d) with
    /// `reference = LowerBound`.
    pub fn ratio_to(&self, kind: HeuristicKind, reference: HeuristicKind) -> Option<f64> {
        let p = self.period(kind)?;
        let r = self.period(reference)?;
        if r > 0.0 {
            Some(p / r)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::instances::figure5_instance;

    #[test]
    fn report_collects_all_kinds_and_orders_ratios() {
        let inst = figure5_instance(3);
        let report = MulticastReport::collect(&inst, &HeuristicKind::ALL).unwrap();
        assert_eq!(report.periods.len(), 7);
        assert_eq!(report.lp_stats.len(), 7);
        assert_eq!(report.targets, 3);
        // The masked greedy heuristics account their LP solves themselves,
        // scope or no scope.
        let greedy = report
            .lp_stats_for(HeuristicKind::ReducedBroadcast)
            .unwrap();
        assert!(greedy.lp_solves >= 1);
        assert_eq!(greedy.lp_solves, greedy.warm_hits + greedy.warm_misses);
        let scatter = report.period(HeuristicKind::Scatter).unwrap();
        let lb = report.period(HeuristicKind::LowerBound).unwrap();
        assert!(scatter >= lb);
        // Every heuristic is at least as good as scatter on this instance and
        // no better than the lower bound.
        for kind in [
            HeuristicKind::Mcph,
            HeuristicKind::Broadcast,
            HeuristicKind::AugmentedMulticast,
            HeuristicKind::ReducedBroadcast,
            HeuristicKind::MultisourceMulticast,
        ] {
            let ratio_scatter = report.ratio_to(kind, HeuristicKind::Scatter).unwrap();
            let ratio_lb = report.ratio_to(kind, HeuristicKind::LowerBound).unwrap();
            assert!(ratio_scatter <= 1.0 + 1e-6, "{kind:?}");
            assert!(ratio_lb >= 1.0 - 1e-6, "{kind:?}");
        }
    }

    #[test]
    fn session_solves_are_attributed_per_kind() {
        let inst = figure5_instance(3);
        let kinds = [
            HeuristicKind::Scatter,
            HeuristicKind::LowerBound,
            HeuristicKind::Mcph,
        ];
        let mut session = crate::session::Session::new(inst.clone());
        let report =
            MulticastReport::collect_from_session(&mut session, &kinds, CollectOptions::default())
                .unwrap();
        // Scatter and LowerBound are one masked template solve each; MCPH
        // solves no LP. The session's cumulative counters agree with the
        // per-kind attribution.
        assert_eq!(
            report
                .lp_stats_for(HeuristicKind::Scatter)
                .unwrap()
                .lp_solves,
            1
        );
        assert_eq!(
            report.lp_stats_for(HeuristicKind::Mcph).unwrap().lp_solves,
            0
        );
        let total: u64 = report.lp_stats.iter().map(|&(_, s)| s.lp_solves).sum();
        assert_eq!(total, session.stats().lp_solves);
    }

    #[test]
    fn realized_report_verifies_every_curve_on_figure5() {
        let inst = figure5_instance(3);
        let report = MulticastReport::collect_with(
            &inst,
            &HeuristicKind::ALL,
            CollectOptions { realize: true },
        )
        .unwrap();
        assert_eq!(report.realizations.len(), 7);
        for &kind in &HeuristicKind::ALL {
            let real = report
                .realization_for(kind)
                .unwrap_or_else(|| panic!("{kind:?} did not realize"));
            assert_eq!(real.one_port_violations, 0, "{kind:?}");
            assert!(real.trees >= 1, "{kind:?}");
            // Figure 5's curves are all realizable: the certified schedule
            // reproduces each claimed period.
            assert!(
                real.realization_gap < 1e-6,
                "{kind:?} gap {}",
                real.realization_gap
            );
            let period = report.period(kind).unwrap();
            assert!(
                (real.simulated_throughput - 1.0 / period).abs() < 1e-6,
                "{kind:?}"
            );
        }
        // Without the option, no realization is collected.
        let plain = MulticastReport::collect(&inst, &HeuristicKind::ALL).unwrap();
        assert!(plain.realizations.is_empty());
        assert!(plain.realization_for(HeuristicKind::Scatter).is_none());
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(HeuristicKind::Scatter.label(), "scatter");
        assert_eq!(
            HeuristicKind::MultisourceMulticast.label(),
            "Multisource MC"
        );
        assert_eq!(HeuristicKind::ALL.len(), 7);
    }
}
