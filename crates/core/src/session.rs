//! A stateful solver session for long-lived, *drifting* platforms.
//!
//! Every other entry point of the crate is one-shot: it formulates, solves
//! and throws the machinery away. A [`Session`] is constructed once from a
//! [`MulticastInstance`] and then *owns* the moving parts the one-shot paths
//! rebuild on every call:
//!
//! * the four masked formulation templates of [`crate::masked`]
//!   (`Broadcast-EB`, `Multicast-LB`, `Multicast-UB` and the multi-source
//!   scatter), built lazily on first use,
//! * the per-template best [`Basis`] — every re-solve warm-starts from the
//!   previous optimum of the same template,
//! * the ambient [`WarmStartCache`] the realization packing LPs run under,
//! * the last [`Realization`] per heuristic kind — its weighted trees seed
//!   the next realization's candidate pool.
//!
//! Platform mutations are cheap deltas instead of rebuilds:
//!
//! * [`Session::set_edge_cost`] updates the authoritative platform and marks
//!   the affected coefficients of each built template dirty; the edits are
//!   applied in place ([`pm_lp::LpProblem::set_coeff`]) right before the
//!   template's next solve, so the constraint pattern — and every cached
//!   basis — survives,
//! * [`Session::disable_node`] / [`Session::enable_node`] only flip bits in
//!   the session's [`NodeMask`]: node churn was *already* a bounds overlay
//!   in the masked formulations, so the templates are untouched.
//!
//! [`Session::re_realize`] closes the loop on the ROADMAP's dynamic-platform
//! item: it realizes the latest solution (seeding the tree pool with the
//! previous realization), diffs the two [`WeightedTreeSet`]s and reports a
//! [`TransitionCost`] — how much steady-state throughput the switchover
//! forfeits while the old schedule drains and the new one fills its
//! pipeline, measured with the one-port simulator.
//!
//! Sessions are *durable*: every completed state-changing operation is
//! appended to a write-ahead journal of [`SessionEvent`]s.
//! [`Session::snapshot`] captures the pristine base instance plus that
//! journal, and [`Session::restore`] / [`Session::replay`] reconstruct the
//! session state bit-identically (every solve is deterministic). The same
//! journal powers panic isolation: a solve that panics quarantines the
//! session's derived state (templates, bases, caches), rebuilds the
//! authoritative platform state from the journal and retries once — a
//! second panic surfaces as [`SessionError::Poisoned`] instead of
//! unwinding into the caller. [`Session::set_budget`] threads a
//! deterministic [`SolveBudget`] through every template solve so exhausted
//! solves degrade to anytime solutions (counted in
//! [`SessionStats::degraded_solves`]) instead of erroring.
//!
//! ```
//! use pm_core::report::HeuristicKind;
//! use pm_core::session::Session;
//! use pm_platform::instances::figure5_instance;
//!
//! let mut session = Session::new(figure5_instance(3));
//! let first = session.solve(HeuristicKind::Scatter).unwrap();
//! // Drift one edge cost and re-solve: same templates, warm basis.
//! let edge = session.instance().platform.edge_ids().next().unwrap();
//! session.set_edge_cost(edge, 1.25).unwrap();
//! let second = session.solve(HeuristicKind::Scatter).unwrap();
//! assert!(second.result.period >= first.result.period);
//! assert_eq!(session.stats().edge_edits, 1);
//! ```
//!
//! [`WeightedTreeSet`]: pm_sched::tree::WeightedTreeSet

use crate::formulations::{FormulationError, MultiSourceSolution};
use crate::heuristics::{
    broadcast_commodities, AugmentedMulticast, AugmentedSources, HeuristicResult, LpCounters, Mcph,
    ReducedBroadcast, RunOptions, ThroughputHeuristic,
};
use crate::masked::{MaskedFlowLp, MaskedMultiSourceUb, MaskedStats};
use crate::multi::{
    realize_multi_with_pool, same_commodities, Commodity, CommoditySet, MultiFlow,
    MultiRealization, MultiTemplate,
};
use crate::realize::{realize_with_pool, Realization, RealizeError, SteadyStateSolution};
use crate::report::HeuristicKind;
use crate::robust::{realize_robust_masked, RobustOptions, RobustRealization};
use pm_lp::{Basis, SolveBudget, WarmStartCache, WarmStatus};
use pm_platform::graph::{EdgeId, NodeId};
use pm_platform::instances::MulticastInstance;
use pm_platform::mask::NodeMask;
use pm_sched::tree::{MulticastTree, WeightedTreeSet};
use pm_sim::{SimulationConfig, Simulator};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Template slots of a session, one per masked formulation family.
const SLOT_EB: usize = 0;
const SLOT_LB: usize = 1;
const SLOT_UB: usize = 2;
const SLOT_MS: usize = 3;
const SLOT_MULTI: usize = 4;
const SLOTS: usize = 5;

/// Structured failure of a [`Session`] operation.
///
/// Everything a session can fail with funnels into this enum, so callers
/// branch on variants instead of scraping strings: solve failures and
/// realization failures keep their structured payloads (reachable through
/// [`std::error::Error::source`]), and the two journal-specific variants
/// cover panic quarantine and replay.
#[derive(Debug)]
pub enum SessionError {
    /// A formulation or LP failure surfaced by a solve.
    Formulation(FormulationError),
    /// A realization-pipeline failure surfaced by a (re-)realization.
    Realize(RealizeError),
    /// An operation panicked, the session quarantined its derived state and
    /// rebuilt the authoritative platform state from the journal, and the
    /// retried operation panicked *again*. The session itself stays usable
    /// (mutations and completed results survive); only the poisoned
    /// operation is reported instead of unwinding into the caller.
    Poisoned {
        /// The operation that panicked (e.g. `solve(broadcast)`).
        op: String,
        /// Panic payload of the first attempt.
        first: String,
        /// Panic payload of the retry after self-healing.
        second: String,
    },
    /// A journal entry failed to re-apply during [`Session::replay`] or
    /// self-healing — the journal does not belong to the given base
    /// instance (or was edited by hand).
    Replay {
        /// Index of the offending entry in the journal.
        index: usize,
        /// The underlying failure.
        source: Box<SessionError>,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Formulation(e) => write!(f, "session solve failed: {e}"),
            SessionError::Realize(e) => write!(f, "session realization failed: {e}"),
            SessionError::Poisoned { op, first, second } => write!(
                f,
                "session operation {op} poisoned: panicked ({first}), healed from the \
                 journal, then panicked again ({second})"
            ),
            SessionError::Replay { index, source } => {
                write!(f, "journal entry {index} failed to replay: {source}")
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Formulation(e) => Some(e),
            SessionError::Realize(e) => Some(e),
            SessionError::Poisoned { .. } => None,
            SessionError::Replay { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<FormulationError> for SessionError {
    fn from(e: FormulationError) -> Self {
        SessionError::Formulation(e)
    }
}

impl From<RealizeError> for SessionError {
    fn from(e: RealizeError) -> Self {
        SessionError::Realize(e)
    }
}

/// One entry of a session's write-ahead journal: a completed state-changing
/// operation, recorded *after* it succeeded (a panicking or failing
/// operation leaves no entry). Replaying the journal on the pristine base
/// instance ([`Session::replay`]) reconstructs the session state
/// bit-identically, because every solve in the workspace is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// A successful [`Session::set_edge_cost`].
    SetEdgeCost {
        /// The edited edge.
        edge: EdgeId,
        /// The new cost.
        cost: f64,
    },
    /// A [`Session::disable_node`] that changed the mask.
    DisableNode {
        /// The disabled node.
        node: NodeId,
    },
    /// A [`Session::enable_node`] that changed the mask.
    EnableNode {
        /// The re-enabled node.
        node: NodeId,
    },
    /// A [`Session::set_budget`].
    SetBudget {
        /// The new per-solve work caps (`None` defers to `PM_LP_BUDGET`).
        budget: Option<SolveBudget>,
    },
    /// A [`Session::set_sim_config`].
    SetSimConfig {
        /// The new simulation configuration.
        config: SimulationConfig,
    },
    /// A [`Session::set_cache_capacity`].
    SetCacheCapacity {
        /// The new ambient-cache capacity bound (`None` = unbounded).
        capacity: Option<usize>,
    },
    /// A completed [`Session::solve_with`] (or [`Session::solve`]).
    Solve {
        /// The solved heuristic kind.
        kind: HeuristicKind,
        /// Whether the steady state was captured for realization.
        capture_steady_state: bool,
    },
    /// A completed [`Session::solve_multisource`].
    SolveMultisource {
        /// The ordered source selection.
        sources: Vec<NodeId>,
    },
    /// A completed [`Session::re_realize`] (or [`Session::realize`]).
    ReRealize {
        /// The realized heuristic kind.
        kind: HeuristicKind,
    },
    /// A completed [`Session::re_realize_robust`].
    ReRealizeRobust {
        /// The realized heuristic kind.
        kind: HeuristicKind,
        /// The robustness knobs of the realization.
        options: RobustOptions,
    },
    /// A completed [`Session::solve_multi`].
    SolveMulti {
        /// The multi-commodity workload that was jointly solved.
        commodities: Vec<Commodity>,
    },
    /// A completed [`Session::re_realize_multi`].
    ReRealizeMulti,
}

/// A durable snapshot of a [`Session`]: the pristine base instance plus the
/// write-ahead journal — cheap relative to the solver state it stands for.
/// [`Session::restore`] reconstructs the full session from it.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    base: MulticastInstance,
    journal: Vec<SessionEvent>,
}

impl SessionSnapshot {
    /// The pristine instance the session was constructed with (pre-drift
    /// edge costs, full mask).
    pub fn base(&self) -> &MulticastInstance {
        &self.base
    }

    /// The journaled events, in application order.
    pub fn journal(&self) -> &[SessionEvent] {
        &self.journal
    }
}

/// The template slots a [`Session::solve`] of `kind` builds.
fn kind_slots(kind: HeuristicKind) -> &'static [usize] {
    match kind {
        HeuristicKind::Scatter => &[SLOT_UB],
        HeuristicKind::LowerBound => &[SLOT_LB],
        HeuristicKind::Broadcast | HeuristicKind::ReducedBroadcast => &[SLOT_EB],
        HeuristicKind::AugmentedMulticast => &[SLOT_EB, SLOT_LB],
        HeuristicKind::Mcph => &[],
        HeuristicKind::MultisourceMulticast => &[SLOT_MS],
    }
}

/// Whether two instances are bit-identical (same graph, same cost bits,
/// same source and targets) — the precondition for sharing built templates.
fn same_instance(a: &MulticastInstance, b: &MulticastInstance) -> bool {
    a.source == b.source
        && a.targets == b.targets
        && a.platform.node_count() == b.platform.node_count()
        && a.platform.edge_count() == b.platform.edge_count()
        && a.platform.edge_ids().all(|e| {
            let (ea, eb) = (a.platform.edge(e), b.platform.edge(e));
            ea.src == eb.src && ea.dst == eb.dst && ea.cost.to_bits() == eb.cost.to_bits()
        })
}

/// Eagerly built masked formulation templates, shared across every
/// [`Session`] of the *same* instance (same graph, same cost bits, same
/// source/targets). Formulating a template walks the whole platform through
/// a [`pm_lp::SparseBuilder`]; cloning a built one is a flat copy of its
/// arrays. A server hosting thousands of sessions of one platform shape
/// builds each template once here and stamps out clones via
/// [`Session::with_templates`].
#[derive(Debug, Clone, Default)]
pub struct SessionTemplates {
    flow: [Option<MaskedFlowLp>; 3],
    ms: Option<MaskedMultiSourceUb>,
}

impl SessionTemplates {
    /// An empty template set; slots are built on demand by
    /// [`SessionTemplates::ensure_for`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds (once) the template slots a [`Session::solve`] of `kind`
    /// needs on `instance`. Further calls for the same slots are free.
    pub fn ensure_for(&mut self, instance: &MulticastInstance, kind: HeuristicKind) {
        for &slot in kind_slots(kind) {
            if slot == SLOT_MS {
                if self.ms.is_none() {
                    self.ms = Some(MaskedMultiSourceUb::new(instance));
                }
            } else if self.flow[slot].is_none() {
                self.flow[slot] = Some(match slot {
                    SLOT_EB => MaskedFlowLp::broadcast_eb(instance),
                    SLOT_LB => MaskedFlowLp::multicast_lb(instance),
                    _ => MaskedFlowLp::multicast_ub(instance),
                });
            }
        }
    }

    /// Builds every template slot.
    pub fn ensure_all(&mut self, instance: &MulticastInstance) {
        for kind in HeuristicKind::ALL {
            self.ensure_for(instance, kind);
        }
    }

    /// Number of built template slots (`0..=4`).
    pub fn built(&self) -> usize {
        self.flow.iter().filter(|t| t.is_some()).count() + self.ms.is_some() as usize
    }
}

/// Structured accounting of one session operation (a [`Session::solve`] or a
/// [`Session::re_realize`]) — the programmatic replacement for scraping the
/// `PM_LP_STATS=1` stderr lines. Every field except `wall_s` is
/// deterministic for a given session history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionOpStats {
    /// Linear programs solved by the operation.
    pub lp_solves: u64,
    /// Solves that warm-started from a previous basis.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// Phase-1 (and bound-repair) pivots across the operation's solves.
    pub phase1_pivots: u64,
    /// Phase-2 pivots across the operation's solves.
    pub phase2_pivots: u64,
    /// Basis refactorizations across the operation's solves.
    pub refactorizations: u64,
    /// Solves that exhausted their [`SolveBudget`] and returned a degraded
    /// anytime solution instead of a certified optimum (always zero when no
    /// budget is set).
    pub degraded_solves: u64,
    /// Wall-clock seconds spent in the operation (nondeterministic; bench
    /// artifacts must filter it before byte comparisons).
    pub wall_s: f64,
}

impl SessionOpStats {
    fn note(&mut self, stats: &MaskedStats) {
        self.lp_solves += 1;
        if stats.warm == WarmStatus::Hit {
            self.warm_hits += 1;
        } else {
            self.warm_misses += 1;
        }
        self.phase1_pivots += stats.solve.phase1_pivots as u64;
        self.phase2_pivots += stats.solve.phase2_pivots as u64;
        self.refactorizations += stats.solve.refactorizations as u64;
        self.degraded_solves += stats.solve.degraded as u64;
    }

    fn from_counters(counters: &LpCounters) -> Self {
        SessionOpStats {
            lp_solves: counters.solves as u64,
            warm_hits: counters.hits as u64,
            warm_misses: counters.misses as u64,
            phase1_pivots: counters.phase1_pivots,
            phase2_pivots: counters.phase2_pivots,
            refactorizations: counters.refactorizations,
            degraded_solves: counters.degraded as u64,
            wall_s: 0.0,
        }
    }

    /// Fraction of the operation's LP solves that warm-started (0 when the
    /// operation solved no LP).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.lp_solves > 0 {
            self.warm_hits as f64 / self.lp_solves as f64
        } else {
            0.0
        }
    }
}

/// Cumulative accounting of a session's lifetime, [`SessionOpStats`] summed
/// over every operation plus the mutation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// [`Session::solve`] calls performed.
    pub solves: u64,
    /// [`Session::re_realize`] / [`Session::realize`] calls that produced a
    /// realization.
    pub realizations: u64,
    /// [`Session::set_edge_cost`] mutations applied.
    pub edge_edits: u64,
    /// [`Session::disable_node`] / [`Session::enable_node`] calls that
    /// changed the mask.
    pub node_events: u64,
    /// Linear programs solved across all operations.
    pub lp_solves: u64,
    /// Solves that warm-started from a previous basis.
    pub warm_hits: u64,
    /// Solves that ran cold.
    pub warm_misses: u64,
    /// Phase-1 (and bound-repair) pivots.
    pub phase1_pivots: u64,
    /// Phase-2 pivots.
    pub phase2_pivots: u64,
    /// Basis refactorizations.
    pub refactorizations: u64,
    /// Solves that exhausted their [`SolveBudget`] and returned a degraded
    /// anytime solution (see [`Session::set_budget`]).
    pub degraded_solves: u64,
    /// Operations that panicked once and were healed from the journal
    /// (quarantine + rebuild + successful retry).
    pub panics_healed: u64,
    /// Wall-clock seconds across all operations (nondeterministic).
    pub wall_s: f64,
}

impl SessionStats {
    fn absorb(&mut self, op: &SessionOpStats) {
        self.lp_solves += op.lp_solves;
        self.warm_hits += op.warm_hits;
        self.warm_misses += op.warm_misses;
        self.phase1_pivots += op.phase1_pivots;
        self.phase2_pivots += op.phase2_pivots;
        self.refactorizations += op.refactorizations;
        self.degraded_solves += op.degraded_solves;
        self.wall_s += op.wall_s;
    }

    /// Lifetime warm-hit rate over every LP solved in the session.
    pub fn warm_hit_rate(&self) -> f64 {
        if self.lp_solves > 0 {
            self.warm_hits as f64 / self.lp_solves as f64
        } else {
            0.0
        }
    }
}

/// One completed [`Session::solve`]: the heuristic result plus the
/// operation's structured accounting.
#[derive(Debug, Clone)]
pub struct SessionSolve {
    /// The heuristic kind that was solved.
    pub kind: HeuristicKind,
    /// The result, shaped exactly like a one-shot
    /// [`ThroughputHeuristic::run_with`] would report on the current
    /// platform state.
    pub result: HeuristicResult,
    /// The operation's accounting.
    pub stats: SessionOpStats,
}

/// What a schedule switchover costs, measured by replaying both schedules'
/// trees in the one-port simulator on the *current* (post-drift) platform.
///
/// The model: at a period boundary the old schedule stops injecting new
/// multicasts; its in-flight messages keep draining for up to the fill
/// makespan of its slowest tree. The new schedule starts injecting
/// immediately but delivers nothing until its fastest tree has filled its
/// pipeline once. The throughput forfeited during that window, expressed in
/// multicasts at the new steady-state rate, is the headline
/// [`TransitionCost::multicasts_lost`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionCost {
    /// Time for the old schedule's in-flight multicasts to finish after
    /// injection stops: the largest single-message fill makespan over the
    /// old tree set ([`Simulator::tree_fill_makespan`]).
    pub drain_time: f64,
    /// First-delivery latency of the new schedule: the smallest
    /// single-message fill makespan over the new tree set.
    pub first_delivery_latency: f64,
    /// `drain_time + first_delivery_latency` — the switchover window.
    pub switch_time: f64,
    /// Multicasts forfeited during the switchover window at the new
    /// schedule's simulated steady-state rate (the "periods lost" of the
    /// ROADMAP item, in units of multicasts).
    pub multicasts_lost: f64,
    /// `new − old` simulated steady-state throughput: positive when the
    /// re-solve recovered (or gained) capacity.
    pub throughput_delta: f64,
    /// Trees of the new combination that already existed in the old one
    /// (compared by edge set).
    pub trees_kept: usize,
    /// Trees of the new combination that are new.
    pub trees_added: usize,
    /// Trees of the old combination that were abandoned.
    pub trees_dropped: usize,
}

/// One completed [`Session::re_realize`]: the fresh realization plus the
/// switchover cost against the previous one (absent on the first
/// realization of a kind).
#[derive(Debug, Clone)]
pub struct ReRealization {
    /// The new simulator-verified realization.
    pub realization: Realization,
    /// The switchover cost against the kind's previous realization.
    pub transition: Option<TransitionCost>,
    /// The operation's accounting (the packing LPs of the realization
    /// pipeline).
    pub stats: SessionOpStats,
}

/// One completed [`Session::re_realize_robust`]: the fresh redundant
/// realization plus the switchover cost against the kind's previous robust
/// realization (absent on the first robust realization of a kind).
#[derive(Debug, Clone)]
pub struct RobustReRealization {
    /// The new simulator-verified redundant realization.
    pub realization: RobustRealization,
    /// The switchover cost against the kind's previous robust realization —
    /// how a crash (or recovery) degrades service while the redundant
    /// schedule is swapped.
    pub transition: Option<TransitionCost>,
    /// The operation's accounting (the packing LPs of the robust pipeline).
    pub stats: SessionOpStats,
}

/// One completed [`Session::solve_multi`]: the joint multi-commodity flow
/// plus the operation's structured accounting.
#[derive(Debug, Clone)]
pub struct SessionMultiSolve {
    /// The joint solution: super-unit period, per-commodity rates and
    /// per-commodity unit flows.
    pub flow: MultiFlow,
    /// The operation's accounting.
    pub stats: SessionOpStats,
}

/// One completed [`Session::re_realize_multi`]: the fresh super-period
/// realization plus the switchover cost against the previous one (absent on
/// the session's first multi realization).
#[derive(Debug, Clone)]
pub struct MultiReRealization {
    /// The new simulator-verified super-period realization.
    pub realization: MultiRealization,
    /// The switchover cost against the previous multi realization: the
    /// super-period swaps atomically, so the slowest commodity's drain and
    /// fill gate the window, and every commodity forfeits its own rate
    /// across it.
    pub transition: Option<TransitionCost>,
    /// The operation's accounting (the shared packing LPs of the
    /// super-period pipeline).
    pub stats: SessionOpStats,
}

/// A long-lived solver session over one (drifting) platform. See the
/// [module docs](crate::session) for the design.
#[derive(Debug)]
pub struct Session {
    instance: MulticastInstance,
    mask: NodeMask,
    cache: WarmStartCache,
    flow_templates: [Option<MaskedFlowLp>; 3],
    ms_template: Option<MaskedMultiSourceUb>,
    /// Per slot: edges whose cost changed since the template last solved.
    dirty: [BTreeSet<u32>; SLOTS],
    /// Per slot: the basis of the template's last optimal solve.
    bases: [Option<Basis>; SLOTS],
    solutions: Vec<(HeuristicKind, HeuristicResult)>,
    realizations: Vec<(HeuristicKind, Realization)>,
    robust_realizations: Vec<(HeuristicKind, RobustRealization)>,
    /// The joint multi-commodity template, keyed by the commodity list it
    /// was built for (a solve with a different list rebuilds it).
    multi_template: Option<(Vec<Commodity>, MultiTemplate)>,
    /// The last completed multi-commodity solve, with its workload.
    multi_solution: Option<(Vec<Commodity>, MultiFlow)>,
    /// The last completed multi-commodity realization.
    multi_realization: Option<MultiRealization>,
    sim_config: SimulationConfig,
    stats: SessionStats,
    /// The instance exactly as constructed: the base every journal replay
    /// (and every self-heal) starts from.
    pristine: MulticastInstance,
    /// Write-ahead journal of completed state-changing operations.
    journal: Vec<SessionEvent>,
    /// Per-solve work caps applied to every template (None = `PM_LP_BUDGET`).
    budget: Option<SolveBudget>,
    /// Chaos hook: number of upcoming solve dispatches that panic.
    panic_armed: u8,
}

impl Session {
    /// Creates a session owning `instance`. Templates are built lazily on
    /// the first solve that needs them.
    pub fn new(instance: MulticastInstance) -> Self {
        let capacity = instance.platform.node_count();
        let pristine = instance.clone();
        Session {
            instance,
            mask: NodeMask::full(capacity),
            cache: WarmStartCache::new(),
            flow_templates: [None, None, None],
            ms_template: None,
            dirty: std::array::from_fn(|_| BTreeSet::new()),
            bases: std::array::from_fn(|_| None),
            solutions: Vec::new(),
            realizations: Vec::new(),
            robust_realizations: Vec::new(),
            multi_template: None,
            multi_solution: None,
            multi_realization: None,
            sim_config: SimulationConfig::default(),
            stats: SessionStats::default(),
            pristine,
            journal: Vec::new(),
            budget: None,
            panic_armed: 0,
        }
    }

    /// [`Session::new`], but pre-seeding the masked formulation templates
    /// from a shared [`SessionTemplates`] build. Only slots whose template
    /// was built for a bit-identical instance are installed (a mismatched
    /// set is ignored and the session falls back to building its own
    /// lazily). A pre-seeded session behaves exactly like one that built
    /// the same slots itself: solves, warm paths and journal replay are
    /// unchanged — only the construction cost is shared.
    pub fn with_templates(instance: MulticastInstance, templates: &SessionTemplates) -> Self {
        let mut session = Session::new(instance);
        for slot in 0..3 {
            if let Some(t) = &templates.flow[slot] {
                if same_instance(t.instance(), &session.instance) {
                    session.flow_templates[slot] = Some(t.clone());
                }
            }
        }
        if let Some(t) = &templates.ms {
            if same_instance(t.instance(), &session.instance) {
                session.ms_template = Some(t.clone());
            }
        }
        session
    }

    /// Number of template slots currently built in this session (`0..=4`)
    /// — template-sharing accounting for [`Session::with_templates`].
    pub fn templates_built(&self) -> usize {
        self.flow_templates.iter().filter(|t| t.is_some()).count()
            + self.ms_template.is_some() as usize
    }

    /// The authoritative instance: its platform carries the current
    /// (post-drift) edge costs.
    pub fn instance(&self) -> &MulticastInstance {
        &self.instance
    }

    /// The currently enabled nodes.
    pub fn mask(&self) -> &NodeMask {
        &self.mask
    }

    /// Cumulative session statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Overrides the simulation configuration used by
    /// [`Session::re_realize`].
    pub fn set_sim_config(&mut self, config: SimulationConfig) {
        self.sim_config = config.clone();
        self.journal.push(SessionEvent::SetSimConfig { config });
    }

    /// Sets the deterministic per-solve work caps ([`SolveBudget`]) applied
    /// to every template solve of this session (`None` defers to the
    /// `PM_LP_BUDGET` default). Under an exhausted budget a phase-2 solve
    /// returns its best primal-feasible *anytime* point flagged degraded —
    /// counted in [`SessionStats::degraded_solves`] — instead of erroring,
    /// so a drifting platform keeps getting schedules even when solve work
    /// is capped.
    pub fn set_budget(&mut self, budget: Option<SolveBudget>) {
        self.budget = budget;
        for template in self.flow_templates.iter_mut().flatten() {
            template.set_budget(budget);
        }
        if let Some(template) = self.ms_template.as_mut() {
            template.set_budget(budget);
        }
        if let Some((_, template)) = self.multi_template.as_mut() {
            template.set_budget(budget);
        }
        self.journal.push(SessionEvent::SetBudget { budget });
    }

    /// The session's current per-solve work caps (see
    /// [`Session::set_budget`]).
    pub fn budget(&self) -> Option<SolveBudget> {
        self.budget
    }

    /// Bounds (or unbounds) the session's ambient [`WarmStartCache`] — the
    /// per-signature basis store the realization packing LPs run under.
    /// The bound is journaled, so a restore reproduces the same eviction
    /// sequence and warm-start accounting. Results never depend on it: an
    /// evicted basis only costs cold pivots on its next use.
    pub fn set_cache_capacity(&mut self, capacity: Option<usize>) {
        self.cache.set_capacity(capacity);
        self.journal
            .push(SessionEvent::SetCacheCapacity { capacity });
    }

    /// The session's ambient warm-start cache: hit/miss/eviction counters,
    /// current size and capacity bound.
    pub fn cache(&self) -> &WarmStartCache {
        &self.cache
    }

    /// Swaps the session's ambient warm-start cache with `cache`. A server
    /// sharding many sessions of similar shape over one worker swaps a
    /// *shard-level* cache in around each realization, so sessions share
    /// packing-LP bases instead of each growing a cold private cache. Not
    /// journaled: the ambient cache only influences warm-start accounting,
    /// never results, so replay determinism is unaffected.
    pub fn swap_cache(&mut self, cache: &mut WarmStartCache) {
        std::mem::swap(&mut self.cache, cache);
    }

    /// The last solve result of a kind, if any.
    pub fn solution_for(&self, kind: HeuristicKind) -> Option<&HeuristicResult> {
        self.solutions
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| r)
    }

    /// The last realization of a kind, if any.
    pub fn realization_for(&self, kind: HeuristicKind) -> Option<&Realization> {
        self.realizations
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| r)
    }

    /// Updates an edge cost in place. The authoritative platform changes
    /// immediately; each built template is only marked dirty and re-synced
    /// (via [`pm_lp::LpProblem::set_coeff`]) right before its next solve, so
    /// a burst of edits costs one coefficient sweep, not one per edit.
    pub fn set_edge_cost(&mut self, edge: EdgeId, cost: f64) -> Result<(), SessionError> {
        if edge.index() >= self.instance.platform.edge_count() {
            return Err(SessionError::from(FormulationError::InvalidArgument(
                format!("unknown edge {edge}"),
            )));
        }
        self.instance
            .platform
            .set_cost(edge, cost)
            .map_err(|e| SessionError::from(FormulationError::InvalidArgument(e.to_string())))?;
        for slot in 0..SLOTS {
            if self.slot_built(slot) {
                self.dirty[slot].insert(edge.0);
            }
        }
        self.stats.edge_edits += 1;
        self.journal.push(SessionEvent::SetEdgeCost { edge, cost });
        Ok(())
    }

    /// Deactivates a node for all subsequent solves. The source and the
    /// instance targets cannot be disabled (every formulation would be
    /// trivially infeasible). Returns whether the mask changed.
    pub fn disable_node(&mut self, node: NodeId) -> Result<bool, SessionError> {
        if node.index() >= self.instance.platform.node_count() {
            return Err(SessionError::from(FormulationError::InvalidArgument(
                format!("unknown node {node}"),
            )));
        }
        if node == self.instance.source {
            return Err(SessionError::from(FormulationError::InvalidArgument(
                format!("cannot disable the source {node}"),
            )));
        }
        if self.instance.is_target(node) {
            return Err(SessionError::from(FormulationError::InvalidArgument(
                format!("cannot disable target {node}"),
            )));
        }
        let changed = self.mask.remove(node);
        self.stats.node_events += changed as u64;
        if changed {
            self.journal.push(SessionEvent::DisableNode { node });
        }
        Ok(changed)
    }

    /// Re-activates a node. Returns whether the mask changed.
    pub fn enable_node(&mut self, node: NodeId) -> Result<bool, SessionError> {
        if node.index() >= self.instance.platform.node_count() {
            return Err(SessionError::from(FormulationError::InvalidArgument(
                format!("unknown node {node}"),
            )));
        }
        let changed = self.mask.insert(node);
        self.stats.node_events += changed as u64;
        if changed {
            self.journal.push(SessionEvent::EnableNode { node });
        }
        Ok(changed)
    }

    /// Solves a heuristic kind on the current platform state, warm-starting
    /// from the session's previous bases, and captures the steady state for
    /// realization.
    pub fn solve(&mut self, kind: HeuristicKind) -> Result<SessionSolve, SessionError> {
        self.solve_with(kind, RunOptions::default())
    }

    /// [`Session::solve`] with explicit options (steady-state capture).
    ///
    /// Per-solve work caps come from [`Session::set_budget`]; the
    /// [`RunOptions::budget`] field only affects the one-shot
    /// [`ThroughputHeuristic::run_with`] path, which builds its own
    /// templates.
    ///
    /// The dispatch runs under panic isolation: a panicking solve
    /// quarantines the session's derived state, heals it from the journal
    /// and retries once (see [`SessionError::Poisoned`]).
    pub fn solve_with(
        &mut self,
        kind: HeuristicKind,
        options: RunOptions,
    ) -> Result<SessionSolve, SessionError> {
        self.with_healing(&format!("solve({})", kind.label()), move |session| {
            session.solve_with_inner(kind, options)
        })
    }

    fn solve_with_inner(
        &mut self,
        kind: HeuristicKind,
        options: RunOptions,
    ) -> Result<SessionSolve, SessionError> {
        self.maybe_injected_panic();
        let start = Instant::now();
        let (result, mut op) = match kind {
            HeuristicKind::Scatter => self.solve_flow(SLOT_UB, kind, options)?,
            HeuristicKind::LowerBound => self.solve_flow(SLOT_LB, kind, options)?,
            HeuristicKind::Broadcast => self.solve_flow(SLOT_EB, kind, options)?,
            HeuristicKind::Mcph => self.solve_mcph(options)?,
            HeuristicKind::ReducedBroadcast => {
                self.ensure_flow(SLOT_EB);
                let hint = self.bases[SLOT_EB].clone();
                let template = self.flow_templates[SLOT_EB].as_ref().expect("just built");
                let run = ReducedBroadcast.run_on(template, &self.mask, hint.as_ref(), options)?;
                if run.final_basis.is_some() {
                    self.bases[SLOT_EB] = run.final_basis;
                }
                (run.result, SessionOpStats::from_counters(&run.counters))
            }
            HeuristicKind::AugmentedMulticast => {
                self.ensure_flow(SLOT_EB);
                self.ensure_flow(SLOT_LB);
                let eb_hint = self.bases[SLOT_EB].clone();
                let lb_hint = self.bases[SLOT_LB].clone();
                let eb = self.flow_templates[SLOT_EB].as_ref().expect("just built");
                let lb = self.flow_templates[SLOT_LB].as_ref().expect("just built");
                let run = AugmentedMulticast.run_on(
                    eb,
                    lb,
                    &self.mask,
                    eb_hint.as_ref(),
                    lb_hint.as_ref(),
                    options,
                )?;
                if run.final_basis.is_some() {
                    self.bases[SLOT_EB] = run.final_basis;
                }
                if run.aux_basis.is_some() {
                    self.bases[SLOT_LB] = run.aux_basis;
                }
                (run.result, SessionOpStats::from_counters(&run.counters))
            }
            HeuristicKind::MultisourceMulticast => {
                self.ensure_ms();
                let hint = self.bases[SLOT_MS].clone();
                let template = self.ms_template.as_ref().expect("just built");
                let run = AugmentedSources::default().run_on(
                    template,
                    &self.mask,
                    hint.as_ref(),
                    options,
                )?;
                if run.final_basis.is_some() {
                    self.bases[SLOT_MS] = run.final_basis;
                }
                (run.result, SessionOpStats::from_counters(&run.counters))
            }
        };
        op.wall_s = start.elapsed().as_secs_f64();
        self.stats.solves += 1;
        self.stats.absorb(&op);
        self.remember_solution(kind, result.clone());
        if pm_lp::stats_enabled() {
            eprintln!(
                "pm-core: session solve kind={} period={} lp_solves={} warm={}h/{}m \
                 pivots={}+{} refactorizations={} elapsed={:.3}s",
                kind.label(),
                result.period,
                op.lp_solves,
                op.warm_hits,
                op.warm_misses,
                op.phase1_pivots,
                op.phase2_pivots,
                op.refactorizations,
                op.wall_s,
            );
        }
        self.journal.push(SessionEvent::Solve {
            kind,
            capture_steady_state: options.capture_steady_state,
        });
        Ok(SessionSolve {
            kind,
            result,
            stats: op,
        })
    }

    /// Solves the raw `MulticastMultiSource-UB` formulation for an explicit
    /// ordered source selection (the fourth masked formulation, without the
    /// greedy loop of [`HeuristicKind::MultisourceMulticast`]) on the
    /// current platform state, warm-starting from the session's multi-source
    /// basis.
    pub fn solve_multisource(
        &mut self,
        sources: &[NodeId],
    ) -> Result<MultiSourceSolution, SessionError> {
        let sources = sources.to_vec();
        self.with_healing("solve_multisource", move |session| {
            session.solve_multisource_inner(&sources)
        })
    }

    fn solve_multisource_inner(
        &mut self,
        sources: &[NodeId],
    ) -> Result<MultiSourceSolution, SessionError> {
        self.maybe_injected_panic();
        let start = Instant::now();
        self.ensure_ms();
        let hint = self.bases[SLOT_MS].clone();
        let template = self.ms_template.as_ref().expect("just built");
        let out = template.solve(&self.mask, sources, hint.as_ref())?;
        let mut op = SessionOpStats::default();
        op.note(&out.stats);
        op.wall_s = start.elapsed().as_secs_f64();
        self.bases[SLOT_MS] = Some(out.basis);
        self.stats.solves += 1;
        self.stats.absorb(&op);
        self.journal.push(SessionEvent::SolveMultisource {
            sources: sources.to_vec(),
        });
        Ok(out.solution)
    }

    /// Realizes the latest solution of `kind` as a simulator-verified
    /// periodic schedule, seeding the tree pool with the kind's previous
    /// realization, and stores it as the new baseline. A convenience
    /// wrapper over [`Session::re_realize`] for callers that do not need
    /// the transition cost.
    pub fn realize(&mut self, kind: HeuristicKind) -> Result<&Realization, SessionError> {
        self.re_realize(kind)?;
        Ok(self
            .realization_for(kind)
            .expect("re_realize just stored a realization"))
    }

    /// Re-realizes the latest solution of `kind` and measures the
    /// switchover against the kind's previous realization: the new tree
    /// pool is seeded with the still-valid previous trees, the two
    /// [`pm_sched::tree::WeightedTreeSet`]s are diffed, and the drain /
    /// fill latencies of the swap are replayed in the one-port simulator
    /// (see [`TransitionCost`]).
    ///
    /// Fails with [`RealizeError::NotRealizable`] when `kind` has not been
    /// solved in this session (or its last solve carried no steady state).
    pub fn re_realize(&mut self, kind: HeuristicKind) -> Result<ReRealization, SessionError> {
        self.with_healing(&format!("re_realize({})", kind.label()), move |session| {
            session.re_realize_inner(kind)
        })
    }

    fn re_realize_inner(&mut self, kind: HeuristicKind) -> Result<ReRealization, SessionError> {
        let start = Instant::now();
        let solution: SteadyStateSolution = self
            .solution_for(kind)
            .and_then(|r| r.steady_state.clone())
            .ok_or_else(|| {
                RealizeError::NotRealizable(format!(
                    "{} has no captured steady-state solution in this session",
                    kind.label()
                ))
            })?;
        // Seed the pool with the previous combination's trees that are
        // still executable (no disabled node).
        let seeds: Vec<MulticastTree> = self
            .realization_for(kind)
            .map(|old| {
                old.tree_set
                    .trees()
                    .iter()
                    .filter(|t| self.tree_active(t))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        let (hits0, misses0) = (self.cache.hits, self.cache.misses);
        let mut cache = std::mem::take(&mut self.cache);
        let instance = &self.instance;
        let sim_config = self.sim_config.clone();
        // The packing LPs of the pipeline run under the session's ambient
        // warm-start cache: consecutive re-realizations of similar pools
        // re-use their bases.
        let outcome = cache.scope(|| realize_with_pool(instance, &solution, &seeds, sim_config));
        self.cache = cache;
        let realization = outcome?;
        let mut op = SessionOpStats {
            warm_hits: self.cache.hits - hits0,
            warm_misses: self.cache.misses - misses0,
            ..SessionOpStats::default()
        };
        op.lp_solves = op.warm_hits + op.warm_misses;
        op.wall_s = start.elapsed().as_secs_f64();
        let transition = self.realization_for(kind).map(|old| {
            self.transition_cost(
                &old.tree_set,
                old.simulated.throughput,
                &realization.tree_set,
                realization.simulated.throughput,
            )
        });
        self.remember_realization(kind, realization.clone());
        self.stats.realizations += 1;
        self.stats.absorb(&op);
        if pm_lp::stats_enabled() {
            eprintln!(
                "pm-core: session realize kind={} gap={:.3e} trees={} packing_lps={} \
                 elapsed={:.3}s",
                kind.label(),
                realization.realization_gap,
                realization.tree_set.len(),
                op.lp_solves,
                op.wall_s,
            );
        }
        self.journal.push(SessionEvent::ReRealize { kind });
        Ok(ReRealization {
            realization,
            transition,
            stats: op,
        })
    }

    /// The last robust realization of a kind, if any.
    pub fn robust_realization_for(&self, kind: HeuristicKind) -> Option<&RobustRealization> {
        self.robust_realizations
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| r)
    }

    /// Re-realizes the latest solution of `kind` as a *redundant* schedule
    /// under the session's current node mask (see
    /// [`crate::robust::realize_robust_masked`]), and measures the
    /// switchover against the kind's previous robust realization.
    ///
    /// This is the crash-recovery loop of a drifting platform: a node crash
    /// ([`Session::disable_node`]) invalidates the trees through it, the
    /// robust re-realization rebuilds redundancy from what is left (seeded
    /// with the previous robust trees that survive the mask), and the
    /// returned [`TransitionCost`] measures the degradation; the matching
    /// [`Session::enable_node`] + re-realization measures the recovery.
    pub fn re_realize_robust(
        &mut self,
        kind: HeuristicKind,
        options: &RobustOptions,
    ) -> Result<RobustReRealization, SessionError> {
        let options = options.clone();
        self.with_healing(
            &format!("re_realize_robust({})", kind.label()),
            move |session| session.re_realize_robust_inner(kind, &options),
        )
    }

    fn re_realize_robust_inner(
        &mut self,
        kind: HeuristicKind,
        options: &RobustOptions,
    ) -> Result<RobustReRealization, SessionError> {
        let start = Instant::now();
        let solution: SteadyStateSolution = self
            .solution_for(kind)
            .and_then(|r| r.steady_state.clone())
            .ok_or_else(|| {
                RealizeError::NotRealizable(format!(
                    "{} has no captured steady-state solution in this session",
                    kind.label()
                ))
            })?;
        let seeds: Vec<MulticastTree> = self
            .robust_realization_for(kind)
            .map(|old| {
                old.tree_set
                    .trees()
                    .iter()
                    .filter(|t| self.tree_active(t))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        let (hits0, misses0) = (self.cache.hits, self.cache.misses);
        let mut cache = std::mem::take(&mut self.cache);
        let instance = &self.instance;
        let mask = &self.mask;
        let outcome =
            cache.scope(|| realize_robust_masked(instance, mask, &solution, &seeds, options));
        self.cache = cache;
        let realization = outcome?;
        let mut op = SessionOpStats {
            warm_hits: self.cache.hits - hits0,
            warm_misses: self.cache.misses - misses0,
            ..SessionOpStats::default()
        };
        op.lp_solves = op.warm_hits + op.warm_misses;
        op.wall_s = start.elapsed().as_secs_f64();
        let transition = self.robust_realization_for(kind).map(|old| {
            self.transition_cost(
                &old.tree_set,
                old.robust_throughput,
                &realization.tree_set,
                realization.robust_throughput,
            )
        });
        match self
            .robust_realizations
            .iter_mut()
            .find(|(k, _)| *k == kind)
        {
            Some((_, slot)) => *slot = realization.clone(),
            None => self.robust_realizations.push((kind, realization.clone())),
        }
        self.stats.realizations += 1;
        self.stats.absorb(&op);
        if pm_lp::stats_enabled() {
            eprintln!(
                "pm-core: session robust realize kind={} f={} achieved={} trees={} \
                 packing_lps={} elapsed={:.3}s",
                kind.label(),
                options.disjointness,
                realization.achieved_disjointness,
                realization.tree_set.len(),
                op.lp_solves,
                op.wall_s,
            );
        }
        self.journal.push(SessionEvent::ReRealizeRobust {
            kind,
            options: options.clone(),
        });
        Ok(RobustReRealization {
            realization,
            transition,
            stats: op,
        })
    }

    /// The last multi-commodity solve, if any: the workload it was solved
    /// for and the joint flow.
    pub fn multi_solution(&self) -> Option<(&[Commodity], &MultiFlow)> {
        self.multi_solution.as_ref().map(|(c, f)| (c.as_slice(), f))
    }

    /// The last multi-commodity realization, if any.
    pub fn multi_realization(&self) -> Option<&MultiRealization> {
        self.multi_realization.as_ref()
    }

    /// Jointly solves a multi-commodity workload on the current platform
    /// state. The joint template is built on first use and kept as long as
    /// the workload stays bit-identical — subsequent solves (after edge
    /// drift or node churn) warm-start from the previous joint basis, like
    /// every other template slot. A solve with a *different* workload
    /// rebuilds the template (and drops the stale basis).
    ///
    /// A one-commodity workload delegates to the single-commodity
    /// `Multicast-LB` template, so `k = 1` results are bit-identical to the
    /// existing pipeline.
    pub fn solve_multi(
        &mut self,
        commodities: &[Commodity],
    ) -> Result<SessionMultiSolve, SessionError> {
        let commodities = commodities.to_vec();
        self.with_healing("solve_multi", move |session| {
            session.solve_multi_inner(&commodities)
        })
    }

    fn solve_multi_inner(
        &mut self,
        commodities: &[Commodity],
    ) -> Result<SessionMultiSolve, SessionError> {
        self.maybe_injected_panic();
        let start = Instant::now();
        // Normalize the workload up front: the template key, the journal
        // entry and the stored solution all use the normalized form, so a
        // re-solve with an equivalent workload (unsorted targets) reuses
        // the template and its warm basis instead of rebuilding.
        let commodities = CommoditySet::new(self.instance.platform.clone(), commodities.to_vec())
            .map_err(SessionError::from)?
            .commodities()
            .to_vec();
        let commodities = commodities.as_slice();
        self.ensure_multi(commodities)?;
        let hint = self.bases[SLOT_MULTI].clone();
        let (stored, template) = self.multi_template.as_ref().expect("just built");
        let out = template.solve(&self.mask, hint.as_ref())?;
        let mut op = SessionOpStats::default();
        op.note(&out.stats);
        op.wall_s = start.elapsed().as_secs_f64();
        self.bases[SLOT_MULTI] = Some(out.basis.clone());
        let stored = stored.clone();
        self.multi_solution = Some((stored, out.clone()));
        self.stats.solves += 1;
        self.stats.absorb(&op);
        if pm_lp::stats_enabled() {
            eprintln!(
                "pm-core: session solve_multi k={} period={} lp_solves={} warm={}h/{}m \
                 elapsed={:.3}s",
                commodities.len(),
                out.period,
                op.lp_solves,
                op.warm_hits,
                op.warm_misses,
                op.wall_s,
            );
        }
        self.journal.push(SessionEvent::SolveMulti {
            commodities: commodities.to_vec(),
        });
        Ok(SessionMultiSolve {
            flow: out,
            stats: op,
        })
    }

    /// Re-realizes the last multi-commodity solve as a simulator-verified
    /// super-period schedule on the *current* (post-drift) platform,
    /// seeding every commodity's tree pool with its still-executable trees
    /// from the previous multi realization, and measures the switchover
    /// (see [`MultiReRealization`]).
    ///
    /// Fails with [`RealizeError::NotRealizable`] when no
    /// [`Session::solve_multi`] has completed in this session.
    pub fn re_realize_multi(&mut self) -> Result<MultiReRealization, SessionError> {
        self.with_healing("re_realize_multi", move |session| {
            session.re_realize_multi_inner()
        })
    }

    fn re_realize_multi_inner(&mut self) -> Result<MultiReRealization, SessionError> {
        let start = Instant::now();
        let (commodities, flow) = self.multi_solution.clone().ok_or_else(|| {
            RealizeError::NotRealizable(
                "no multi-commodity solve has completed in this session".to_string(),
            )
        })?;
        // Re-validate the workload against the current platform costs (the
        // realization replays trees on the drifted platform).
        let set = CommoditySet::new(self.instance.platform.clone(), commodities)
            .map_err(SessionError::from)?;
        let seeds: Vec<Vec<MulticastTree>> = self
            .multi_realization
            .as_ref()
            .filter(|old| old.tree_sets.len() == set.len())
            .map(|old| {
                old.tree_sets
                    .iter()
                    .map(|trees| {
                        trees
                            .trees()
                            .iter()
                            .filter(|t| self.tree_active(t))
                            .cloned()
                            .collect()
                    })
                    .collect()
            })
            .unwrap_or_default();
        let (hits0, misses0) = (self.cache.hits, self.cache.misses);
        let mut cache = std::mem::take(&mut self.cache);
        let sim_config = self.sim_config.clone();
        let outcome = cache.scope(|| realize_multi_with_pool(&set, &flow, &seeds, sim_config));
        self.cache = cache;
        let realization = outcome?;
        let mut op = SessionOpStats {
            warm_hits: self.cache.hits - hits0,
            warm_misses: self.cache.misses - misses0,
            ..SessionOpStats::default()
        };
        op.lp_solves = op.warm_hits + op.warm_misses;
        op.wall_s = start.elapsed().as_secs_f64();
        let transition = self
            .multi_realization
            .as_ref()
            .filter(|old| old.tree_sets.len() == set.len())
            .map(|old| self.multi_transition_cost(&set, old, &realization));
        self.multi_realization = Some(realization.clone());
        self.stats.realizations += 1;
        self.stats.absorb(&op);
        if pm_lp::stats_enabled() {
            eprintln!(
                "pm-core: session realize_multi k={} super_period={} gap={:.3e} \
                 packing_lps={} elapsed={:.3}s",
                set.len(),
                realization.super_period,
                realization.realization_gap,
                op.lp_solves,
                op.wall_s,
            );
        }
        self.journal.push(SessionEvent::ReRealizeMulti);
        Ok(MultiReRealization {
            realization,
            transition,
            stats: op,
        })
    }

    /// Switchover cost between two multi realizations. The super-period
    /// swaps atomically: the slowest commodity's drain and the slowest
    /// commodity's first delivery gate the window, and every commodity
    /// forfeits its own rate across it.
    fn multi_transition_cost(
        &self,
        set: &CommoditySet,
        old: &MultiRealization,
        new: &MultiRealization,
    ) -> TransitionCost {
        let platform = &self.instance.platform;
        let mut drain_time: f64 = 0.0;
        let mut first_delivery_latency: f64 = 0.0;
        let mut trees_kept = 0;
        let mut old_total = 0;
        let mut new_total = 0;
        for c in 0..set.len() {
            let targets = &set.commodities()[c].targets;
            let drain_c = old.tree_sets[c]
                .trees()
                .iter()
                .filter(|t| self.tree_active(t))
                .map(|t| Simulator::tree_fill_makespan(platform, t, targets))
                .fold(0.0, f64::max);
            let fill_c = new.tree_sets[c]
                .trees()
                .iter()
                .map(|t| Simulator::tree_fill_makespan(platform, t, targets))
                .fold(f64::INFINITY, f64::min);
            drain_time = drain_time.max(drain_c);
            if fill_c.is_finite() {
                first_delivery_latency = first_delivery_latency.max(fill_c);
            }
            let edge_key = |t: &MulticastTree| {
                let mut edges: Vec<u32> = t.edges().iter().map(|e| e.0).collect();
                edges.sort_unstable();
                edges
            };
            let old_keys: BTreeSet<Vec<u32>> =
                old.tree_sets[c].trees().iter().map(edge_key).collect();
            let new_keys: BTreeSet<Vec<u32>> =
                new.tree_sets[c].trees().iter().map(edge_key).collect();
            trees_kept += new_keys.intersection(&old_keys).count();
            old_total += old_keys.len();
            new_total += new_keys.len();
        }
        let switch_time = drain_time + first_delivery_latency;
        let new_rate: f64 = new.simulated_rates.iter().sum();
        let old_rate: f64 = old.simulated_rates.iter().sum();
        TransitionCost {
            drain_time,
            first_delivery_latency,
            switch_time,
            multicasts_lost: switch_time * new_rate,
            throughput_delta: new_rate - old_rate,
            trees_kept,
            trees_added: new_total - trees_kept,
            trees_dropped: old_total - trees_kept,
        }
    }

    /// Builds (or re-syncs) the joint multi-commodity template for
    /// `commodities`: an existing template built for a bit-identical
    /// workload only drains its pending edge-cost edits; anything else is a
    /// rebuild on the current platform (dropping the stale basis).
    fn ensure_multi(&mut self, commodities: &[Commodity]) -> Result<(), SessionError> {
        if let Some((stored, _)) = &self.multi_template {
            if same_commodities(stored, commodities) {
                let dirty = std::mem::take(&mut self.dirty[SLOT_MULTI]);
                let (_, template) = self.multi_template.as_mut().expect("checked above");
                for e in dirty {
                    let edge = EdgeId(e);
                    template.set_edge_cost(edge, self.instance.platform.cost(edge));
                }
                return Ok(());
            }
        }
        let set = CommoditySet::new(self.instance.platform.clone(), commodities.to_vec())
            .map_err(SessionError::from)?;
        let mut template = MultiTemplate::new(&set);
        template.set_budget(self.budget);
        let normalized = set.commodities().to_vec();
        self.multi_template = Some((normalized, template));
        self.dirty[SLOT_MULTI].clear();
        self.bases[SLOT_MULTI] = None;
        Ok(())
    }

    /// The write-ahead journal: every completed state-changing operation of
    /// this session, in order. Failed or panicked operations leave no
    /// entry.
    pub fn journal(&self) -> &[SessionEvent] {
        &self.journal
    }

    /// A durable snapshot: the pristine base instance plus the write-ahead
    /// journal — cheap relative to the solver state it stands for, and
    /// sufficient to reconstruct it bit-identically with
    /// [`Session::restore`].
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            base: self.pristine.clone(),
            journal: self.journal.clone(),
        }
    }

    /// Compacts the write-ahead journal in place. The longest prefix that
    /// no retained operation depends on is folded into the pristine base:
    /// drifted edge costs become base costs, and the net node mask, budget,
    /// simulation config and cache capacity become a short head of synthetic
    /// events; the suffix is kept verbatim. Kept live — never folded — are
    /// the last `Solve` of every kind, every `ReRealize`/`ReRealizeRobust`
    /// (realizations chain through their seeded tree pools, so the whole
    /// chain must replay), and the supporting `Solve` of each realization.
    ///
    /// [`Session::restore`] of the compacted snapshot reconstructs the same
    /// authoritative state, solutions and realizations as a restore of the
    /// full journal; only warm-start accounting may differ (a solve whose
    /// superseded predecessors were folded away replays cold instead of
    /// warm — same optimum, different pivot counts). Returns the number of
    /// journal entries dropped.
    pub fn compact_journal(&mut self) -> usize {
        let old_len = self.journal.len();
        let kind_index = |kind: HeuristicKind| {
            HeuristicKind::ALL
                .iter()
                .position(|&k| k == kind)
                .expect("every kind is in ALL")
        };
        let mut live = vec![false; old_len];
        let mut last_solve: [Option<usize>; HeuristicKind::ALL.len()] =
            [None; HeuristicKind::ALL.len()];
        let mut last_solve_multi: Option<usize> = None;
        for (i, event) in self.journal.iter().enumerate() {
            match event {
                SessionEvent::Solve { kind, .. } => last_solve[kind_index(*kind)] = Some(i),
                SessionEvent::SolveMulti { .. } => last_solve_multi = Some(i),
                SessionEvent::ReRealize { kind } | SessionEvent::ReRealizeRobust { kind, .. } => {
                    live[i] = true;
                    // The realization replays from the latest preceding
                    // solve of its kind: that solve must survive.
                    if let Some(j) = last_solve[kind_index(*kind)] {
                        live[j] = true;
                    }
                }
                SessionEvent::ReRealizeMulti => {
                    live[i] = true;
                    if let Some(j) = last_solve_multi {
                        live[j] = true;
                    }
                }
                _ => {}
            }
        }
        for idx in last_solve.iter().flatten() {
            live[*idx] = true;
        }
        if let Some(idx) = last_solve_multi {
            live[idx] = true;
        }
        let cut = live.iter().position(|&l| l).unwrap_or(old_len);
        if cut == 0 {
            return 0;
        }
        // Fold the dropped prefix into the authoritative state at the cut.
        let mut base = self.pristine.clone();
        let mut mask = NodeMask::full(base.platform.node_count());
        let mut budget = None;
        let mut sim_config = SimulationConfig::default();
        let mut cache_capacity = None;
        for event in &self.journal[..cut] {
            match event {
                SessionEvent::SetEdgeCost { edge, cost } => {
                    base.platform
                        .set_cost(*edge, *cost)
                        .expect("a journaled edit re-applies to its own base");
                }
                SessionEvent::DisableNode { node } => {
                    mask.remove(*node);
                }
                SessionEvent::EnableNode { node } => {
                    mask.insert(*node);
                }
                SessionEvent::SetBudget { budget: caps } => budget = *caps,
                SessionEvent::SetSimConfig { config } => sim_config = config.clone(),
                SessionEvent::SetCacheCapacity { capacity } => cache_capacity = *capacity,
                // Solve-class prefix events are exactly what compaction
                // drops: their results are superseded or unreferenced.
                SessionEvent::Solve { .. }
                | SessionEvent::SolveMultisource { .. }
                | SessionEvent::ReRealize { .. }
                | SessionEvent::ReRealizeRobust { .. }
                | SessionEvent::SolveMulti { .. }
                | SessionEvent::ReRealizeMulti => {}
            }
        }
        let mut compacted = Vec::with_capacity(old_len - cut + 4);
        for v in 0..base.platform.node_count() as u32 {
            if !mask.contains(NodeId(v)) {
                compacted.push(SessionEvent::DisableNode { node: NodeId(v) });
            }
        }
        if budget.is_some() {
            compacted.push(SessionEvent::SetBudget { budget });
        }
        if sim_config != SimulationConfig::default() {
            compacted.push(SessionEvent::SetSimConfig { config: sim_config });
        }
        if cache_capacity.is_some() {
            compacted.push(SessionEvent::SetCacheCapacity {
                capacity: cache_capacity,
            });
        }
        compacted.extend_from_slice(&self.journal[cut..]);
        let dropped = old_len.saturating_sub(compacted.len());
        self.pristine = base;
        self.journal = compacted;
        dropped
    }

    /// Reconstructs a session from a snapshot by replaying its journal on
    /// its base instance. Every solve in the workspace is deterministic, so
    /// the reconstruction is bit-identical: same platform state, same warm
    /// bases, same solutions and realizations, same statistics (up to the
    /// nondeterministic `wall_s` timings).
    pub fn restore(snapshot: &SessionSnapshot) -> Result<Session, SessionError> {
        Session::replay(snapshot.base.clone(), snapshot.journal())
    }

    /// Replays a journal on a pristine base instance, re-running every
    /// recorded operation in order. Fails with [`SessionError::Replay`]
    /// when an entry cannot be re-applied — a journal that does not belong
    /// to `instance` (replaying a journal against the instance it was
    /// recorded on cannot fail: only completed operations are journaled).
    pub fn replay(
        instance: MulticastInstance,
        journal: &[SessionEvent],
    ) -> Result<Session, SessionError> {
        let mut session = Session::new(instance);
        for (index, event) in journal.iter().enumerate() {
            session
                .apply_event(event)
                .map_err(|e| SessionError::Replay {
                    index,
                    source: Box::new(e),
                })?;
        }
        Ok(session)
    }

    fn apply_event(&mut self, event: &SessionEvent) -> Result<(), SessionError> {
        match event {
            SessionEvent::SetEdgeCost { edge, cost } => self.set_edge_cost(*edge, *cost),
            SessionEvent::DisableNode { node } => self.disable_node(*node).map(|_| ()),
            SessionEvent::EnableNode { node } => self.enable_node(*node).map(|_| ()),
            SessionEvent::SetBudget { budget } => {
                self.set_budget(*budget);
                Ok(())
            }
            SessionEvent::SetSimConfig { config } => {
                self.set_sim_config(config.clone());
                Ok(())
            }
            SessionEvent::SetCacheCapacity { capacity } => {
                self.set_cache_capacity(*capacity);
                Ok(())
            }
            SessionEvent::Solve {
                kind,
                capture_steady_state,
            } => self
                .solve_with(
                    *kind,
                    RunOptions {
                        capture_steady_state: *capture_steady_state,
                        ..RunOptions::default()
                    },
                )
                .map(|_| ()),
            SessionEvent::SolveMultisource { sources } => {
                self.solve_multisource(sources).map(|_| ())
            }
            SessionEvent::ReRealize { kind } => self.re_realize(*kind).map(|_| ()),
            SessionEvent::ReRealizeRobust { kind, options } => {
                self.re_realize_robust(*kind, options).map(|_| ())
            }
            SessionEvent::SolveMulti { commodities } => self.solve_multi(commodities).map(|_| ()),
            SessionEvent::ReRealizeMulti => self.re_realize_multi().map(|_| ()),
        }
    }

    /// Runs `f` under panic isolation. A panicking operation quarantines
    /// the session's derived state, heals the authoritative state from the
    /// write-ahead journal and retries once; a second panic is reported as
    /// [`SessionError::Poisoned`]. Structured errors pass straight through:
    /// they leave the session consistent by construction.
    fn with_healing<T>(
        &mut self,
        op: &str,
        f: impl Fn(&mut Session) -> Result<T, SessionError>,
    ) -> Result<T, SessionError> {
        match catch_unwind(AssertUnwindSafe(|| f(&mut *self))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                let first = panic_text(payload.as_ref());
                self.heal()?;
                match catch_unwind(AssertUnwindSafe(|| f(&mut *self))) {
                    Ok(outcome) => outcome,
                    Err(retry) => Err(SessionError::Poisoned {
                        op: op.to_string(),
                        first,
                        second: panic_text(retry.as_ref()),
                    }),
                }
            }
        }
    }

    /// Quarantines every piece of derived state a panic may have poisoned —
    /// the formulation templates, their warm bases, the pending-edit sets
    /// and the ambient warm-start cache — and rebuilds the authoritative
    /// platform state (edge costs, node mask, budget, simulation config)
    /// from the write-ahead journal on the pristine base instance.
    /// Completed solutions, realizations and statistics are plain values
    /// recorded only after their operation succeeded, so they survive
    /// as-is; the quarantined templates are rebuilt lazily (cold) on the
    /// next solve.
    fn heal(&mut self) -> Result<(), SessionError> {
        let mut instance = self.pristine.clone();
        let mut mask = NodeMask::full(instance.platform.node_count());
        let mut budget = None;
        let mut sim_config = SimulationConfig::default();
        let mut cache_capacity = None;
        for (index, event) in self.journal.iter().enumerate() {
            let outcome = match event {
                SessionEvent::SetEdgeCost { edge, cost } => instance
                    .platform
                    .set_cost(*edge, *cost)
                    .map_err(|e| FormulationError::InvalidArgument(e.to_string())),
                SessionEvent::DisableNode { node } => {
                    mask.remove(*node);
                    Ok(())
                }
                SessionEvent::EnableNode { node } => {
                    mask.insert(*node);
                    Ok(())
                }
                SessionEvent::SetBudget { budget: caps } => {
                    budget = *caps;
                    Ok(())
                }
                SessionEvent::SetSimConfig { config } => {
                    sim_config = config.clone();
                    Ok(())
                }
                SessionEvent::SetCacheCapacity { capacity } => {
                    cache_capacity = *capacity;
                    Ok(())
                }
                // Solve-class events only touch derived state, which is
                // being quarantined wholesale.
                SessionEvent::Solve { .. }
                | SessionEvent::SolveMultisource { .. }
                | SessionEvent::ReRealize { .. }
                | SessionEvent::ReRealizeRobust { .. }
                | SessionEvent::SolveMulti { .. }
                | SessionEvent::ReRealizeMulti => Ok(()),
            };
            outcome.map_err(|e| SessionError::Replay {
                index,
                source: Box::new(SessionError::from(e)),
            })?;
        }
        self.instance = instance;
        self.mask = mask;
        self.budget = budget;
        self.sim_config = sim_config;
        let mut cache = WarmStartCache::new();
        cache.set_capacity(cache_capacity);
        self.cache = cache;
        self.flow_templates = [None, None, None];
        self.ms_template = None;
        self.multi_template = None;
        self.dirty = std::array::from_fn(|_| BTreeSet::new());
        self.bases = std::array::from_fn(|_| None);
        self.stats.panics_healed += 1;
        Ok(())
    }

    /// Chaos hook: arms the next `n` solve dispatches to poison the
    /// session's pending-edit sets and panic mid-operation, exactly the way
    /// an interrupted mutation sweep would leave them. Exercises the
    /// quarantine + journal-heal path deterministically from integration
    /// tests; not part of the supported API surface.
    #[doc(hidden)]
    pub fn arm_panic(&mut self, n: u8) {
        self.panic_armed = n;
    }

    fn maybe_injected_panic(&mut self) {
        if self.panic_armed > 0 {
            self.panic_armed -= 1;
            // Poison the derived state the way a mid-sweep panic would
            // leave it: a dangling edge id in every pending-edit set (any
            // template re-sync would index out of bounds on it) and a
            // dropped ambient cache. Healing must clear all of it.
            for slot in 0..SLOTS {
                self.dirty[slot].insert(u32::MAX);
            }
            self.cache = WarmStartCache::new();
            panic!("injected session panic (chaos hook)");
        }
    }

    /// Whether every edge of the tree is active under the current mask.
    fn tree_active(&self, tree: &MulticastTree) -> bool {
        tree.edges()
            .iter()
            .all(|&e| self.mask.edge_active(&self.instance.platform, e))
    }

    fn transition_cost(
        &self,
        old_trees: &WeightedTreeSet,
        old_throughput: f64,
        new_trees: &WeightedTreeSet,
        new_throughput: f64,
    ) -> TransitionCost {
        let platform = &self.instance.platform;
        let targets = &self.instance.targets;
        // Old trees through a node the drift disabled cannot drain any
        // in-flight traffic (consistent with the seed-pool filter in
        // `re_realize`): only the still-executable ones bound the drain.
        let drain_time = old_trees
            .trees()
            .iter()
            .filter(|t| self.tree_active(t))
            .map(|t| Simulator::tree_fill_makespan(platform, t, targets))
            .fold(0.0, f64::max);
        let first_delivery_latency = new_trees
            .trees()
            .iter()
            .map(|t| Simulator::tree_fill_makespan(platform, t, targets))
            .fold(f64::INFINITY, f64::min);
        let first_delivery_latency = if first_delivery_latency.is_finite() {
            first_delivery_latency
        } else {
            0.0
        };
        // Diff by edge set (sorted: peel order may list edges differently).
        let edge_key = |t: &MulticastTree| {
            let mut edges: Vec<u32> = t.edges().iter().map(|e| e.0).collect();
            edges.sort_unstable();
            edges
        };
        let old_keys: BTreeSet<Vec<u32>> = old_trees.trees().iter().map(edge_key).collect();
        let new_keys: BTreeSet<Vec<u32>> = new_trees.trees().iter().map(edge_key).collect();
        let trees_kept = new_keys.intersection(&old_keys).count();
        let switch_time = drain_time + first_delivery_latency;
        TransitionCost {
            drain_time,
            first_delivery_latency,
            switch_time,
            multicasts_lost: switch_time * new_throughput,
            throughput_delta: new_throughput - old_throughput,
            trees_kept,
            trees_added: new_keys.len() - trees_kept,
            trees_dropped: old_keys.len() - trees_kept,
        }
    }

    fn slot_built(&self, slot: usize) -> bool {
        match slot {
            SLOT_MS => self.ms_template.is_some(),
            SLOT_MULTI => self.multi_template.is_some(),
            _ => self.flow_templates[slot].is_some(),
        }
    }

    /// Builds the flow template of `slot` if missing, else replays the
    /// pending edge-cost edits into it.
    fn ensure_flow(&mut self, slot: usize) {
        if self.flow_templates[slot].is_none() {
            let mut template = match slot {
                SLOT_EB => MaskedFlowLp::broadcast_eb(&self.instance),
                SLOT_LB => MaskedFlowLp::multicast_lb(&self.instance),
                SLOT_UB => MaskedFlowLp::multicast_ub(&self.instance),
                _ => unreachable!("flow slots are 0..3"),
            };
            template.set_budget(self.budget);
            self.flow_templates[slot] = Some(template);
            self.dirty[slot].clear();
            return;
        }
        let dirty = std::mem::take(&mut self.dirty[slot]);
        let template = self.flow_templates[slot].as_mut().expect("checked above");
        for e in dirty {
            let edge = EdgeId(e);
            template.set_edge_cost(edge, self.instance.platform.cost(edge));
        }
    }

    /// Builds the multi-source template if missing, else replays the
    /// pending edge-cost edits into it.
    fn ensure_ms(&mut self) {
        if self.ms_template.is_none() {
            let mut template = MaskedMultiSourceUb::new(&self.instance);
            template.set_budget(self.budget);
            self.ms_template = Some(template);
            self.dirty[SLOT_MS].clear();
            return;
        }
        let dirty = std::mem::take(&mut self.dirty[SLOT_MS]);
        let template = self.ms_template.as_mut().expect("checked above");
        for e in dirty {
            let edge = EdgeId(e);
            template.set_edge_cost(edge, self.instance.platform.cost(edge));
        }
    }

    fn solve_flow(
        &mut self,
        slot: usize,
        kind: HeuristicKind,
        options: RunOptions,
    ) -> Result<(HeuristicResult, SessionOpStats), FormulationError> {
        self.ensure_flow(slot);
        let hint = self.bases[slot].clone();
        let template = self.flow_templates[slot].as_ref().expect("just built");
        let out = template.solve(&self.mask, hint.as_ref())?;
        let mut op = SessionOpStats::default();
        op.note(&out.stats);
        self.bases[slot] = Some(out.basis);
        let mut result = HeuristicResult::new(kind.label(), out.flow.period);
        result.lp_solves = 1;
        result.warm_hits = op.warm_hits as usize;
        result.warm_misses = op.warm_misses as usize;
        if options.capture_steady_state {
            let commodities = if slot == SLOT_EB {
                broadcast_commodities(&self.instance)
            } else {
                self.instance.targets.clone()
            };
            result.steady_state = SteadyStateSolution::from_flow_solution(
                &self.instance,
                &commodities,
                &out.flow,
                out.flow.period,
            );
        }
        Ok((result, op))
    }

    fn solve_mcph(
        &self,
        options: RunOptions,
    ) -> Result<(HeuristicResult, SessionOpStats), FormulationError> {
        let platform = &self.instance.platform;
        // Edges touching a disabled node are priced out of the tree.
        let costs: Vec<f64> = platform
            .edge_ids()
            .map(|e| {
                if self.mask.edge_active(platform, e) {
                    platform.cost(e)
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        let tree = Mcph.build_tree_with_costs(&self.instance, costs)?;
        let period = tree.period(platform);
        let mut result = HeuristicResult::new(Mcph.name(), period);
        if options.capture_steady_state && period.is_finite() && period > 0.0 {
            let mut trees = WeightedTreeSet::new();
            trees
                .push(tree.clone(), 1.0 / period)
                .expect("a finite period yields a finite weight");
            result.steady_state = Some(SteadyStateSolution::Trees { period, trees });
        }
        result.tree = Some(tree);
        Ok((result, SessionOpStats::default()))
    }

    fn remember_solution(&mut self, kind: HeuristicKind, result: HeuristicResult) {
        match self.solutions.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, slot)) => *slot = result,
            None => self.solutions.push((kind, result)),
        }
    }

    fn remember_realization(&mut self, kind: HeuristicKind, realization: Realization) {
        match self.realizations.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, slot)) => *slot = realization,
            None => self.realizations.push((kind, realization)),
        }
    }
}

/// Renders a caught panic payload (`&str` or `String` payloads; anything
/// else is reported opaquely).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::{BroadcastBaseline, LowerBoundReference, ScatterBaseline};
    use pm_platform::instances::{figure1_instance, figure5_instance};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    /// The one-shot oracle: each heuristic run directly through its
    /// [`ThroughputHeuristic`] impl, rebuilding everything from scratch.
    fn one_shot(kind: HeuristicKind, inst: &MulticastInstance) -> HeuristicResult {
        let options = RunOptions::default();
        match kind {
            HeuristicKind::Scatter => ScatterBaseline.run_with(inst, options),
            HeuristicKind::LowerBound => LowerBoundReference.run_with(inst, options),
            HeuristicKind::Broadcast => BroadcastBaseline.run_with(inst, options),
            HeuristicKind::Mcph => Mcph.run_with(inst, options),
            HeuristicKind::AugmentedMulticast => AugmentedMulticast.run_with(inst, options),
            HeuristicKind::ReducedBroadcast => ReducedBroadcast.run_with(inst, options),
            HeuristicKind::MultisourceMulticast => {
                AugmentedSources::default().run_with(inst, options)
            }
        }
        .unwrap()
    }

    #[test]
    fn session_solves_match_one_shot_runs_on_a_static_platform() {
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        for kind in HeuristicKind::ALL {
            let fresh = one_shot(kind, &inst);
            let live = session.solve(kind).unwrap();
            approx(live.result.period, fresh.period);
        }
        assert_eq!(session.stats().solves, HeuristicKind::ALL.len() as u64);
    }

    #[test]
    fn edge_drift_resolves_warm_and_matches_fresh() {
        let inst = figure5_instance(3);
        let mut session = Session::new(inst.clone());
        session.solve(HeuristicKind::Scatter).unwrap();
        // Drift every relay->target edge cost upward.
        let edits: Vec<(EdgeId, f64)> = inst
            .platform
            .edges()
            .map(|(e, edge)| (e, edge.cost * 1.5))
            .collect();
        let mut drifted = inst.clone();
        for &(e, c) in &edits {
            session.set_edge_cost(e, c).unwrap();
            drifted.platform.set_cost(e, c).unwrap();
        }
        let live = session.solve(HeuristicKind::Scatter).unwrap();
        let fresh = one_shot(HeuristicKind::Scatter, &drifted);
        approx(live.result.period, fresh.period);
        // The re-solve warm-started from the pre-drift basis.
        assert_eq!(live.stats.lp_solves, 1);
        assert_eq!(live.stats.warm_hits, 1);
    }

    #[test]
    fn node_churn_is_a_mask_flip_and_matches_fresh_restriction() {
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        let before = session.solve(HeuristicKind::Broadcast).unwrap();
        // P4/P5 form a redundant backbone detour; disabling them keeps the
        // platform connected.
        assert!(session.disable_node(NodeId(4)).unwrap());
        assert!(session.disable_node(NodeId(5)).unwrap());
        let after = session.solve(HeuristicKind::Broadcast).unwrap();
        // Fewer active nodes = fewer broadcast commodities: the period may
        // move either way; what must hold is parity with a fresh session.
        let mut fresh = Session::new(inst.clone());
        fresh.disable_node(NodeId(4)).unwrap();
        fresh.disable_node(NodeId(5)).unwrap();
        let oracle = fresh.solve(HeuristicKind::Broadcast).unwrap();
        approx(after.result.period, oracle.result.period);
        // Re-enabling restores the original value.
        assert!(session.enable_node(NodeId(4)).unwrap());
        assert!(session.enable_node(NodeId(5)).unwrap());
        let restored = session.solve(HeuristicKind::Broadcast).unwrap();
        approx(restored.result.period, before.result.period);
        assert_eq!(session.stats().node_events, 4);
    }

    #[test]
    fn session_rejects_illegal_mutations() {
        let inst = figure5_instance(2);
        let mut session = Session::new(inst.clone());
        assert!(session.disable_node(inst.source).is_err());
        assert!(session.disable_node(inst.targets[0]).is_err());
        assert!(session.disable_node(NodeId(99)).is_err());
        assert!(session.enable_node(NodeId(99)).is_err());
        let edge = inst.platform.edge_ids().next().unwrap();
        assert!(session.set_edge_cost(edge, 0.0).is_err());
        assert!(session.set_edge_cost(edge, f64::NAN).is_err());
        assert!(session.set_edge_cost(EdgeId(9999), 1.0).is_err());
        assert_eq!(session.stats().edge_edits, 0);
    }

    #[test]
    fn re_realize_reports_transition_costs_after_drift() {
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        session.solve(HeuristicKind::Broadcast).unwrap();
        let first = session.re_realize(HeuristicKind::Broadcast).unwrap();
        assert!(first.transition.is_none());
        assert_eq!(first.realization.simulated.one_port_violations, 0);

        // Drift a backbone edge and re-solve + re-realize.
        let edge = inst.platform.edge_ids().next().unwrap();
        let cost = inst.platform.cost(edge);
        session.set_edge_cost(edge, cost * 2.0).unwrap();
        session.solve(HeuristicKind::Broadcast).unwrap();
        let second = session.re_realize(HeuristicKind::Broadcast).unwrap();
        let transition = second
            .transition
            .expect("second realization has a baseline");
        assert!(transition.drain_time > 0.0);
        assert!(transition.first_delivery_latency > 0.0);
        approx(
            transition.switch_time,
            transition.drain_time + transition.first_delivery_latency,
        );
        assert!(transition.multicasts_lost > 0.0);
        assert_eq!(
            transition.trees_kept + transition.trees_added,
            second.realization.tree_set.len()
        );
        assert_eq!(second.realization.simulated.one_port_violations, 0);
        assert_eq!(session.stats().realizations, 2);
    }

    #[test]
    fn robust_re_realization_measures_crash_and_recovery_transitions() {
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        session.solve(HeuristicKind::LowerBound).unwrap();
        let options = RobustOptions {
            sim: pm_sim::SimulationConfig {
                horizon: 40,
                warmup: 4,
                ..pm_sim::SimulationConfig::default()
            },
            ..RobustOptions::default()
        };
        let healthy = session
            .re_realize_robust(HeuristicKind::LowerBound, &options)
            .unwrap();
        assert!(healthy.transition.is_none());
        assert_eq!(healthy.realization.fault_free.delivery_ratio, 1.0);
        assert_eq!(healthy.realization.fault_free.one_port_violations, 0);

        // Crash a relay: the robust pool rebuilds from what survives the
        // mask and the degradation is measured as a transition.
        assert!(session.disable_node(NodeId(4)).unwrap());
        session.solve(HeuristicKind::LowerBound).unwrap();
        let degraded = session
            .re_realize_robust(HeuristicKind::LowerBound, &options)
            .unwrap();
        let crash = degraded.transition.expect("crash has a baseline");
        assert!(crash.switch_time >= 0.0);
        assert_eq!(degraded.realization.fault_free.delivery_ratio, 1.0);

        // Recovery: re-enable and re-realize again.
        assert!(session.enable_node(NodeId(4)).unwrap());
        session.solve(HeuristicKind::LowerBound).unwrap();
        let recovered = session
            .re_realize_robust(HeuristicKind::LowerBound, &options)
            .unwrap();
        let recovery = recovered.transition.expect("recovery has a baseline");
        // Recovering the node can only restore (or keep) robust capacity.
        assert!(recovery.throughput_delta >= -1e-9);
        assert_eq!(session.stats().realizations, 3);
        assert!(session
            .robust_realization_for(HeuristicKind::LowerBound)
            .is_some());
    }

    #[test]
    fn realize_without_a_solve_is_not_realizable() {
        let mut session = Session::new(figure5_instance(2));
        assert!(matches!(
            session.re_realize(HeuristicKind::Scatter),
            Err(SessionError::Realize(RealizeError::NotRealizable(_)))
        ));
    }

    #[test]
    fn session_errors_expose_their_full_source_chain() {
        use std::error::Error;
        let err = SessionError::from(FormulationError::from(pm_lp::LpError::Infeasible));
        let level1 = err.source().expect("SessionError wraps a cause");
        assert!(level1.is::<FormulationError>());
        let level2 = level1
            .source()
            .expect("FormulationError wraps the LP cause");
        assert!(level2.is::<pm_lp::LpError>());
        assert!(level2.source().is_none());
        // Replay errors point at their boxed inner failure.
        let replay = SessionError::Replay {
            index: 3,
            source: Box::new(SessionError::from(RealizeError::NotRealizable(
                "no steady state".into(),
            ))),
        };
        assert!(replay.source().expect("replay cause").is::<SessionError>());
    }

    #[test]
    fn solve_multisource_matches_the_greedy_template_path() {
        let inst = figure5_instance(3);
        let mut session = Session::new(inst.clone());
        let single = session.solve_multisource(&[inst.source]).unwrap();
        let scatter = session.solve(HeuristicKind::Scatter).unwrap();
        approx(single.period, scatter.result.period);
        // Promoting the relay warm-starts from the single-source basis.
        let multi = session
            .solve_multisource(&[inst.source, NodeId(1)])
            .unwrap();
        assert!(multi.period < single.period - 0.25);
        assert!(session.stats().warm_hits >= 1);
    }

    #[test]
    fn journal_replay_reconstructs_bit_identical_state() {
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        session.solve(HeuristicKind::Broadcast).unwrap();
        let edge = inst.platform.edge_ids().next().unwrap();
        session
            .set_edge_cost(edge, inst.platform.cost(edge) * 2.0)
            .unwrap();
        assert!(session.disable_node(NodeId(4)).unwrap());
        assert!(session.disable_node(NodeId(5)).unwrap());
        session.solve(HeuristicKind::Broadcast).unwrap();
        session.re_realize(HeuristicKind::Broadcast).unwrap();

        let snapshot = session.snapshot();
        let mut replayed = Session::restore(&snapshot).unwrap();
        assert_eq!(replayed.journal(), session.journal());
        assert_eq!(
            replayed.instance().platform.cost(edge).to_bits(),
            session.instance().platform.cost(edge).to_bits()
        );
        assert_eq!(replayed.mask().to_nodes(), session.mask().to_nodes());

        // Deterministic solves: the replayed session's next solve is
        // bit-identical to the original's, down to the pivot counts (it
        // warm-starts from the same reconstructed basis).
        let a = session.solve(HeuristicKind::Broadcast).unwrap();
        let b = replayed.solve(HeuristicKind::Broadcast).unwrap();
        assert_eq!(a.result.period.to_bits(), b.result.period.to_bits());
        assert_eq!(a.stats.lp_solves, b.stats.lp_solves);
        assert_eq!(a.stats.warm_hits, b.stats.warm_hits);
        assert_eq!(a.stats.phase1_pivots, b.stats.phase1_pivots);
        assert_eq!(a.stats.phase2_pivots, b.stats.phase2_pivots);
        let (sa, sb) = (session.stats(), replayed.stats());
        assert_eq!(sa.lp_solves, sb.lp_solves);
        assert_eq!(sa.phase1_pivots, sb.phase1_pivots);
        assert_eq!(sa.phase2_pivots, sb.phase2_pivots);
        assert_eq!(sa.edge_edits, sb.edge_edits);
        assert_eq!(sa.node_events, sb.node_events);
    }

    #[test]
    fn replaying_a_foreign_journal_reports_the_offending_entry() {
        let mut session = Session::new(figure1_instance());
        let edge = session.instance().platform.edge_ids().next().unwrap();
        session.set_edge_cost(edge, 2.0).unwrap();
        let mut journal = session.journal().to_vec();
        // Corrupt the journal: an edge the tiny platform does not have.
        journal.push(SessionEvent::SetEdgeCost {
            edge: EdgeId(9999),
            cost: 1.0,
        });
        match Session::replay(figure1_instance(), &journal) {
            Err(SessionError::Replay { index, .. }) => assert_eq!(index, 1),
            other => panic!("expected a replay error, got {other:?}"),
        }
    }

    #[test]
    fn a_panicking_solve_heals_from_the_journal() {
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        session.solve(HeuristicKind::Broadcast).unwrap();
        let edge = inst.platform.edge_ids().next().unwrap();
        session
            .set_edge_cost(edge, inst.platform.cost(edge) * 1.5)
            .unwrap();

        session.arm_panic(1);
        let healed = session.solve(HeuristicKind::Broadcast).unwrap();
        assert_eq!(session.stats().panics_healed, 1);

        // The healed solve matches a fresh session on the same mutation
        // history bit-for-bit: the quarantine rebuilt everything from the
        // journal, poisoned dirty sets and all.
        let mut fresh = Session::new(inst.clone());
        fresh
            .set_edge_cost(edge, inst.platform.cost(edge) * 1.5)
            .unwrap();
        let oracle = fresh.solve(HeuristicKind::Broadcast).unwrap();
        assert_eq!(
            healed.result.period.to_bits(),
            oracle.result.period.to_bits()
        );

        // And the session stays fully serviceable afterwards.
        session.re_realize(HeuristicKind::Broadcast).unwrap();
    }

    #[test]
    fn a_double_panic_reports_poisoned_instead_of_unwinding() {
        let mut session = Session::new(figure1_instance());
        session.arm_panic(2);
        match session.solve(HeuristicKind::Broadcast) {
            Err(SessionError::Poisoned { op, .. }) => assert!(op.contains("solve")),
            other => panic!("expected Poisoned, got {other:?}"),
        }
        // The panicked operation never committed to the journal, and the
        // quarantined session still solves.
        assert!(session.journal().is_empty());
        session.solve(HeuristicKind::Broadcast).unwrap();
        assert_eq!(session.journal().len(), 1);
    }

    #[test]
    fn session_budgets_degrade_to_anytime_solutions_instead_of_failing() {
        // Probe the unbudgeted pivot counts of a few formulations to pick
        // one whose phase 2 actually pivots, and a budget that exhausts it
        // while letting phase 1 finish.
        let inst = figure1_instance();
        let mut picked = None;
        for kind in [
            HeuristicKind::Broadcast,
            HeuristicKind::Scatter,
            HeuristicKind::LowerBound,
        ] {
            let mut probe = Session::new(inst.clone());
            let full = probe.solve(kind).unwrap();
            if full.stats.phase2_pivots > 0 {
                picked = Some((kind, full));
                break;
            }
        }
        let (kind, full) = picked.expect("some figure 1 formulation pivots in phase 2");
        let (p1, p2) = (full.stats.phase1_pivots, full.stats.phase2_pivots);

        let mut session = Session::new(inst);
        session.set_budget(Some(SolveBudget::pivots(p1 + p2 - 1)));
        let capped = session.solve(kind).unwrap();
        assert_eq!(capped.stats.degraded_solves, 1);
        assert!(session.stats().degraded_solves >= 1);
        // The anytime point is primal feasible, so its period can only be
        // worse than (or equal to) the certified optimum.
        assert!(capped.result.period >= full.result.period - 1e-9);
        // The budget is journaled: a replay reproduces the degraded solve.
        let replayed = Session::restore(&session.snapshot()).unwrap();
        assert_eq!(
            replayed.stats().degraded_solves,
            session.stats().degraded_solves
        );
        assert_eq!(replayed.budget(), session.budget());
    }

    #[test]
    fn compacted_journal_restores_bit_identically() {
        // Trace shape: churn → solve + realize → churn → solve + realize.
        // Compaction folds the leading churn and nothing solve-shaped, so
        // the retained suffix replays through the exact same arithmetic and
        // the two restores agree bit for bit, realizations included.
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        let edges: Vec<EdgeId> = inst.platform.edge_ids().collect();
        session.set_edge_cost(edges[0], 1.75).unwrap();
        session.set_edge_cost(edges[1], 2.5).unwrap();
        session.set_edge_cost(edges[0], 1.25).unwrap();
        assert!(session.disable_node(NodeId(4)).unwrap());
        assert!(session.enable_node(NodeId(4)).unwrap());
        assert!(session.disable_node(NodeId(5)).unwrap());
        session.set_budget(Some(SolveBudget::pivots(100_000)));
        session.solve(HeuristicKind::Broadcast).unwrap();
        session.re_realize(HeuristicKind::Broadcast).unwrap();
        session.set_edge_cost(edges[2], 3.0).unwrap();
        session.solve(HeuristicKind::Broadcast).unwrap();
        session.re_realize(HeuristicKind::Broadcast).unwrap();

        let full = session.snapshot();
        let before = session.journal().len();
        let dropped = session.compact_journal();
        // Seven prefix events fold into two head events (net disable +
        // budget); the five retained suffix events are kept verbatim.
        assert_eq!(dropped, 5);
        assert_eq!(session.journal().len(), before - dropped);
        let compacted = session.snapshot();

        let mut a = Session::restore(&full).unwrap();
        let mut b = Session::restore(&compacted).unwrap();
        for e in inst.platform.edge_ids() {
            assert_eq!(
                a.instance().platform.cost(e).to_bits(),
                b.instance().platform.cost(e).to_bits()
            );
        }
        assert_eq!(a.mask().to_nodes(), b.mask().to_nodes());
        assert_eq!(a.budget(), b.budget());
        let (sa, sb) = (
            a.solution_for(HeuristicKind::Broadcast).unwrap(),
            b.solution_for(HeuristicKind::Broadcast).unwrap(),
        );
        assert_eq!(sa.period.to_bits(), sb.period.to_bits());
        let (ra, rb) = (
            a.realization_for(HeuristicKind::Broadcast).unwrap(),
            b.realization_for(HeuristicKind::Broadcast).unwrap(),
        );
        assert_eq!(
            ra.simulated.throughput.to_bits(),
            rb.simulated.throughput.to_bits()
        );
        assert_eq!(ra.realization_gap.to_bits(), rb.realization_gap.to_bits());
        assert_eq!(ra.tree_set.len(), rb.tree_set.len());
        assert_eq!(ra.simulated.one_port_violations, 0);
        assert_eq!(rb.simulated.one_port_violations, 0);
        // And the *next* operation continues identically on both restores,
        // down to the pivot counts.
        let (na, nb) = (
            a.solve(HeuristicKind::Broadcast).unwrap(),
            b.solve(HeuristicKind::Broadcast).unwrap(),
        );
        assert_eq!(na.result.period.to_bits(), nb.result.period.to_bits());
        assert_eq!(na.stats.phase1_pivots, nb.stats.phase1_pivots);
        assert_eq!(na.stats.phase2_pivots, nb.stats.phase2_pivots);
        assert_eq!(na.stats.warm_hits, nb.stats.warm_hits);
    }

    #[test]
    fn compaction_drops_superseded_solves_and_keeps_results_equal() {
        let inst = figure5_instance(3);
        let e0 = inst.platform.edge_ids().next().unwrap();
        let mut session = Session::new(inst.clone());
        session.solve(HeuristicKind::Scatter).unwrap(); // superseded
        session.set_edge_cost(e0, 1.5).unwrap();
        session.solve(HeuristicKind::LowerBound).unwrap(); // superseded
        session.set_edge_cost(e0, 1.1).unwrap();
        session.solve(HeuristicKind::Scatter).unwrap(); // last of kind: live
        session.solve(HeuristicKind::LowerBound).unwrap(); // live

        let full = session.snapshot();
        let dropped = session.compact_journal();
        // The two superseded solves and the two cost edits fold away.
        assert_eq!(dropped, 4);
        assert_eq!(session.journal().len(), 2);

        let a = Session::restore(&full).unwrap();
        let b = Session::restore(&session.snapshot()).unwrap();
        assert_eq!(
            a.instance().platform.cost(e0).to_bits(),
            b.instance().platform.cost(e0).to_bits()
        );
        // A solve whose superseded predecessor was folded away replays
        // cold instead of warm: the optimum is the same unique value, but
        // the vertex may be reached through different pivots, so the
        // comparison is numeric, not bitwise.
        for kind in [HeuristicKind::Scatter, HeuristicKind::LowerBound] {
            let (pa, pb) = (
                a.solution_for(kind).unwrap().period,
                b.solution_for(kind).unwrap().period,
            );
            assert!((pa - pb).abs() <= 1e-9, "{kind:?}: {pa} vs {pb}");
        }
    }

    #[test]
    fn session_multi_solves_realize_and_replay_bit_identically() {
        let inst = figure1_instance();
        let mut session = Session::new(inst.clone());
        let commodities = vec![
            Commodity {
                source: inst.source,
                targets: inst.targets.clone(),
                demand: 1.0,
            },
            // A second multicast inside the fast P7 cluster: it competes
            // with commodity 0 for P7..P10's ports (figure 1 is a DAG, so
            // no reverse demand exists).
            Commodity {
                source: NodeId(7),
                targets: vec![NodeId(8), NodeId(9), NodeId(10)],
                demand: 2.0,
            },
        ];
        let solved = session.solve_multi(&commodities).unwrap();
        assert!(solved.flow.period.is_finite() && solved.flow.period > 0.0);
        // Demands 1:2 must split the rates 1:2.
        assert!((solved.flow.rates[1] / solved.flow.rates[0] - 2.0).abs() < 1e-6);
        let realized = session.re_realize_multi().unwrap();
        assert!(realized.transition.is_none());
        assert_eq!(realized.realization.simulated.one_port_violations, 0);
        for c in 0..2 {
            let (sim, cert) = (
                realized.realization.simulated_rates[c],
                realized.realization.certified_rates[c],
            );
            assert!(
                (sim - cert).abs() <= 1e-6 * cert.max(1.0),
                "{sim} vs {cert}"
            );
        }

        // Drift an edge: the joint template survives (one LP re-solve, no
        // rebuild), and the second realization reports a transition.
        let e0 = inst.platform.edge_ids().next().unwrap();
        session.set_edge_cost(e0, 1.5).unwrap();
        let re = session.solve_multi(&commodities).unwrap();
        assert_eq!(re.stats.lp_solves, 1);
        let re_realized = session.re_realize_multi().unwrap();
        let transition = re_realized.transition.expect("second realization diffs");
        assert!(transition.switch_time >= 0.0);

        // The journal replays the whole multi history bit-identically.
        let restored = Session::restore(&session.snapshot()).unwrap();
        let (ca, fa) = session.multi_solution().unwrap();
        let (cb, fb) = restored.multi_solution().unwrap();
        assert!(same_commodities(ca, cb));
        assert_eq!(fa.period.to_bits(), fb.period.to_bits());
        let (ra, rb) = (
            session.multi_realization().unwrap(),
            restored.multi_realization().unwrap(),
        );
        assert_eq!(ra.schedule, rb.schedule);
        assert_eq!(ra.simulated_rates, rb.simulated_rates);
        assert_eq!(ra.tag_ranges, rb.tag_ranges);

        // Compaction keeps the last multi solve and every multi
        // realization live; the compacted restore still agrees.
        let mut compacted = session;
        compacted.compact_journal();
        let c = Session::restore(&compacted.snapshot()).unwrap();
        assert_eq!(c.multi_realization().unwrap().schedule, rb.schedule);
    }

    #[test]
    fn session_multi_with_one_commodity_matches_the_lb_pipeline_bitwise() {
        let inst = figure1_instance();
        let commodities = vec![Commodity {
            source: inst.source,
            targets: inst.targets.clone(),
            demand: 1.0,
        }];
        let mut multi_session = Session::new(inst.clone());
        let solved = multi_session.solve_multi(&commodities).unwrap();
        let multi = multi_session.re_realize_multi().unwrap();

        let mut lb_session = Session::new(inst);
        let lb = lb_session.solve(HeuristicKind::LowerBound).unwrap();
        lb_session.re_realize(HeuristicKind::LowerBound).unwrap();
        let single = lb_session
            .realization_for(HeuristicKind::LowerBound)
            .unwrap();

        assert_eq!(
            solved.flow.flows[0].period.to_bits(),
            lb.result.period.to_bits()
        );
        assert_eq!(multi.realization.schedule, single.schedule);
        assert_eq!(multi.realization.tree_sets[0], single.tree_set);
        assert_eq!(multi.realization.simulated, single.simulated);
    }

    #[test]
    fn cache_capacity_is_journaled_and_bounds_the_ambient_cache() {
        let mut session = Session::new(figure1_instance());
        session.set_cache_capacity(Some(2));
        session.solve(HeuristicKind::Broadcast).unwrap();
        session.re_realize(HeuristicKind::Broadcast).unwrap();
        assert!(session.cache().len() <= 2);
        assert_eq!(session.cache().capacity(), Some(2));
        let restored = Session::restore(&session.snapshot()).unwrap();
        assert_eq!(restored.cache().capacity(), Some(2));
        assert_eq!(restored.cache().len(), session.cache().len());
        assert_eq!(restored.cache().evictions, session.cache().evictions);
        // Compaction folds the capacity into a head event that survives.
        session.compact_journal();
        assert!(matches!(
            session.journal()[0],
            SessionEvent::SetCacheCapacity { capacity: Some(2) }
        ));
        let recompacted = Session::restore(&session.snapshot()).unwrap();
        assert_eq!(recompacted.cache().capacity(), Some(2));
    }

    #[test]
    fn preseeded_templates_match_a_lazily_built_session() {
        let inst = figure5_instance(3);
        let mut templates = SessionTemplates::new();
        templates.ensure_for(&inst, HeuristicKind::Scatter);
        templates.ensure_for(&inst, HeuristicKind::AugmentedMulticast);
        assert_eq!(templates.built(), 3); // UB + EB + LB
        let mut seeded = Session::with_templates(inst.clone(), &templates);
        assert_eq!(seeded.templates_built(), 3);
        let mut lazy = Session::new(inst.clone());
        for kind in [HeuristicKind::Scatter, HeuristicKind::AugmentedMulticast] {
            let a = seeded.solve(kind).unwrap();
            let b = lazy.solve(kind).unwrap();
            assert_eq!(a.result.period.to_bits(), b.result.period.to_bits());
            assert_eq!(a.stats.phase1_pivots, b.stats.phase1_pivots);
            assert_eq!(a.stats.phase2_pivots, b.stats.phase2_pivots);
        }
        // A template set built for a different instance is refused and the
        // session stays lazy.
        let other = Session::with_templates(figure5_instance(4), &templates);
        assert_eq!(other.templates_built(), 0);
        // ensure_all builds the remaining slots exactly once.
        templates.ensure_all(&inst);
        assert_eq!(templates.built(), 4);
    }

    #[test]
    fn shard_cache_swap_shares_packing_bases_across_sessions() {
        let inst = figure1_instance();
        let mut shard_cache = WarmStartCache::new();
        // The first session realizes under the shard-level cache...
        let mut a = Session::new(inst.clone());
        a.solve(HeuristicKind::Broadcast).unwrap();
        a.swap_cache(&mut shard_cache);
        a.re_realize(HeuristicKind::Broadcast).unwrap();
        a.swap_cache(&mut shard_cache);
        let hits_after_first = shard_cache.hits;
        assert!(!shard_cache.is_empty());
        // ...and the second one warm-starts its packing LPs from it.
        let mut b = Session::new(inst.clone());
        b.solve(HeuristicKind::Broadcast).unwrap();
        b.swap_cache(&mut shard_cache);
        let realized = b.re_realize(HeuristicKind::Broadcast).unwrap();
        b.swap_cache(&mut shard_cache);
        assert!(shard_cache.hits > hits_after_first);
        assert_eq!(realized.realization.simulated.one_port_violations, 0);
    }
}
