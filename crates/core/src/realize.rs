//! Realizing LP steady-state solutions as simulator-verified periodic
//! schedules — the constructive half of the paper.
//!
//! The LP formulations bound the optimal period; this module closes the loop
//! by *executing* their solutions:
//!
//! ```text
//! rates ──► weighted-tree decomposition ──► packing LP re-weight
//!       ──► weighted König edge coloring ──► PeriodicSchedule
//!       ──► one-port Simulator check
//! ```
//!
//! Every heuristic (and reference curve) exposes what it solved as a
//! [`SteadyStateSolution`]; [`realize`] decomposes it into a
//! [`WeightedTreeSet`] ([`WeightedTreeSet::from_flows`]), re-weights the
//! peeled trees with the packing LP of Theorem 4 ([`crate::exact::pack_trees`])
//! and *clamps* the result to the LP throughput — the realization certifies
//! the claimed period, it does not race past it (tree sharing can beat the
//! scatter-accounted LPs outright, e.g. on Figure 5). The certified tree set
//! is colored into a [`PeriodicSchedule`] carrying exactly one multicast per
//! period and replayed by the [`Simulator`]; the gap between the simulated
//! and the claimed period is reported as [`Realization::realization_gap`].
//!
//! The `Multicast-LB` reference is *not* always achievable (that is the
//! paper's hardness result); its realization honestly reports the best
//! period the peeled trees support. The achievable formulations
//! (`Multicast-UB`, `Broadcast-EB`, the multi-source scatter) realize at
//! gap ≈ 0: for the scatter-accounted ones this is guaranteed — a tree never
//! occupies an edge more than the per-target copies the LP already paid for.

use crate::exact::pack_trees;
use crate::formulations::FlowSolution;
use pm_lp::LpError;
use pm_platform::graph::NodeId;
use pm_platform::instances::MulticastInstance;
use pm_sched::schedule::{PeriodicSchedule, ScheduleError};
use pm_sched::tree::{cancel_flow_cycles, MulticastTree, TreeError, WeightedTreeSet};
use pm_sim::{SimReport, SimulationConfig, Simulator};
use serde::{Deserialize, Serialize};
use std::fmt;

const FLOW_EPS: f64 = 1e-9;

/// Errors raised while realizing a steady-state solution.
#[derive(Debug, Clone, PartialEq)]
pub enum RealizeError {
    /// The solution cannot be realized at all (infinite period, no trees).
    NotRealizable(String),
    /// The flow decomposition failed.
    Decomposition(TreeError),
    /// The tree-packing LP failed.
    Packing(LpError),
    /// The colored schedule could not be built or validated.
    Schedule(ScheduleError),
}

impl fmt::Display for RealizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RealizeError::NotRealizable(msg) => write!(f, "not realizable: {msg}"),
            RealizeError::Decomposition(e) => write!(f, "flow decomposition failed: {e}"),
            RealizeError::Packing(e) => write!(f, "tree packing failed: {e}"),
            RealizeError::Schedule(e) => write!(f, "scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for RealizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RealizeError::NotRealizable(_) => None,
            RealizeError::Decomposition(e) => Some(e),
            RealizeError::Packing(e) => Some(e),
            RealizeError::Schedule(e) => Some(e),
        }
    }
}

impl From<LpError> for RealizeError {
    fn from(e: LpError) -> Self {
        RealizeError::Packing(e)
    }
}

impl From<TreeError> for RealizeError {
    fn from(e: TreeError) -> Self {
        RealizeError::Decomposition(e)
    }
}

impl From<ScheduleError> for RealizeError {
    fn from(e: ScheduleError) -> Self {
        RealizeError::Schedule(e)
    }
}

/// What a heuristic actually solved, in a shape the realization pipeline can
/// execute. Edge indices always refer to the *full* platform (the masked
/// formulations never re-index), and flow rows are per-message fractions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SteadyStateSolution {
    /// A single-source flow: one ≈unit flow row per instance target, in
    /// `instance.targets` order (`Multicast-LB`/`UB` directly; `Broadcast-EB`
    /// solutions are restricted to their instance-target rows first).
    TargetFlows {
        /// The period the LP certified for these flows.
        period: f64,
        /// `target_flows[i][e]`: fraction of target `i`'s message on edge `e`.
        target_flows: Vec<Vec<f64>>,
    },
    /// A multi-source scatter solution: per-destination unit flows plus the
    /// ordered source list, to be composed into end-to-end flows from the
    /// primary source (a secondary source's traffic is re-rooted through the
    /// flows that delivered the message to it).
    MultiSource {
        /// The period the LP certified.
        period: f64,
        /// Ordered sources, the instance's own source first.
        sources: Vec<NodeId>,
        /// Destination nodes, aligned with `dest_flows`.
        dest_nodes: Vec<NodeId>,
        /// `dest_flows[d][e]`: fraction of destination `d`'s message on `e`.
        dest_flows: Vec<Vec<f64>>,
    },
    /// An explicit tree combination (MCPH, exact packing): already realized,
    /// the pipeline only re-packs, schedules and simulates it.
    Trees {
        /// The period claimed for the combination.
        period: f64,
        /// The trees with their rates (multicasts per time-unit).
        trees: WeightedTreeSet,
    },
}

impl SteadyStateSolution {
    /// The period the solution claims (what the realization must certify).
    pub fn period(&self) -> f64 {
        match self {
            SteadyStateSolution::TargetFlows { period, .. }
            | SteadyStateSolution::MultiSource { period, .. }
            | SteadyStateSolution::Trees { period, .. } => *period,
        }
    }

    /// Builds the [`SteadyStateSolution::TargetFlows`] view of a
    /// [`FlowSolution`] whose commodity rows follow `commodity_targets`
    /// (e.g. every non-source node for a `Broadcast-EB` solve): only the
    /// rows of the instance's own targets are kept, in instance order.
    /// Returns `None` when some instance target has no commodity row.
    pub fn from_flow_solution(
        instance: &MulticastInstance,
        commodity_targets: &[NodeId],
        flow: &FlowSolution,
        period: f64,
    ) -> Option<Self> {
        let rows: Option<Vec<Vec<f64>>> = instance
            .targets
            .iter()
            .map(|t| {
                commodity_targets
                    .iter()
                    .position(|c| c == t)
                    .map(|i| flow.target_flows[i].clone())
            })
            .collect();
        Some(SteadyStateSolution::TargetFlows {
            period,
            target_flows: rows?,
        })
    }
}

/// The result of realizing a steady-state solution: a certified tree set,
/// its periodic schedule and the simulator's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Realization {
    /// The period the LP (or tree heuristic) claimed.
    pub lp_period: f64,
    /// The realized combination, with rates clamped to the LP throughput
    /// (the schedule certifies the claim; any surplus the trees could reach
    /// beyond it is reported in `packed_throughput` instead).
    pub tree_set: WeightedTreeSet,
    /// The best throughput the packing LP found over the peeled trees
    /// (may exceed `1 / lp_period` when tree sharing beats the LP's
    /// accounting).
    pub packed_throughput: f64,
    /// The certified period (`1 /` the clamped throughput). Equals
    /// `lp_period` whenever the decomposition fully supports the claim.
    pub achieved_period: f64,
    /// The periodic schedule executing one multicast per `achieved_period`.
    pub schedule: PeriodicSchedule,
    /// The simulator's replay of `schedule`.
    pub simulated: SimReport,
    /// `|simulated_period − lp_period| / lp_period`.
    pub realization_gap: f64,
}

/// Realizes a steady-state solution as a simulator-verified periodic
/// schedule (see the module docs for the pipeline).
pub fn realize(
    instance: &MulticastInstance,
    solution: &SteadyStateSolution,
) -> Result<Realization, RealizeError> {
    realize_with(instance, solution, SimulationConfig::default())
}

/// [`realize`] with an explicit simulation configuration.
pub fn realize_with(
    instance: &MulticastInstance,
    solution: &SteadyStateSolution,
    config: SimulationConfig,
) -> Result<Realization, RealizeError> {
    realize_with_pool(instance, solution, &[], config)
}

/// [`realize_with`] with a *seed tree pool*: trees realized earlier (e.g.
/// the previous realization of a long-lived [`crate::session::Session`])
/// join the candidate pool before the packing LP runs. On a drifting
/// platform most of the previous combination usually stays packable, so the
/// re-weight starts from a pool that already certifies (most of) the claim
/// instead of re-discovering it; seeding can only extend the pool the
/// packing LP chooses from, so the certified period is never worse than the
/// unseeded one. Seeds must span the instance's targets (they are
/// [`MulticastTree`]s of this instance); the caller filters out trees that
/// use currently disabled nodes.
pub fn realize_with_pool(
    instance: &MulticastInstance,
    solution: &SteadyStateSolution,
    seed_trees: &[MulticastTree],
    config: SimulationConfig,
) -> Result<Realization, RealizeError> {
    let platform = &instance.platform;
    let lp_period = solution.period();
    if !(lp_period.is_finite() && lp_period > 0.0) {
        return Err(RealizeError::NotRealizable(format!(
            "period {lp_period} is not finite and positive"
        )));
    }

    let (mut pool, flow_rows) = candidate_pool(instance, solution, seed_trees)?;

    // 3. Re-weight with the packing LP of Theorem 4 (the peel fixes
    // structure, the LP fixes rates), then close any remaining gap by
    // pricing: while the packed trees fall short of the LP throughput,
    // rebuild an MCPH tree inside the flow support with edge costs inflated
    // by the congestion of the current packing — a column-generation step
    // whose pricing is heuristic — and re-pack. Bounded and deterministic.
    let lp_throughput = 1.0 / lp_period;
    let (mut weights, mut packed_throughput) =
        pack_trees(platform, &pool).map_err(RealizeError::Packing)?;
    if let Some(rows) = &flow_rows {
        let support: Vec<bool> = (0..platform.edge_count())
            .map(|e| rows.iter().any(|row| row[e] > FLOW_EPS))
            .collect();
        const PRICING_ROUNDS: usize = 4;
        for _ in 0..PRICING_ROUNDS {
            if packed_throughput >= lp_throughput * (1.0 - 1e-9) {
                break;
            }
            // Port utilizations of the current packing.
            let mut send_util = vec![0.0; platform.node_count()];
            let mut recv_util = vec![0.0; platform.node_count()];
            for (tree, &w) in pool.iter().zip(&weights) {
                for &e in tree.edges() {
                    let edge = platform.edge(e);
                    send_util[edge.src.index()] += w * edge.cost;
                    recv_util[edge.dst.index()] += w * edge.cost;
                }
            }
            let priced: Vec<f64> = platform
                .edge_ids()
                .map(|e| {
                    if !support[e.index()] {
                        return f64::INFINITY;
                    }
                    let edge = platform.edge(e);
                    edge.cost * (0.05 + send_util[edge.src.index()] + recv_util[edge.dst.index()])
                })
                .collect();
            let Ok(tree) = crate::heuristics::Mcph.build_tree_with_costs(instance, priced) else {
                break;
            };
            let key = tree_edge_key(&tree);
            if pool.iter().any(|p| tree_edge_key(p) == key) {
                break;
            }
            pool.push(tree);
            let packed = pack_trees(platform, &pool).map_err(RealizeError::Packing)?;
            weights = packed.0;
            packed_throughput = packed.1;
        }
    }
    let trees = pool;
    if packed_throughput <= FLOW_EPS {
        return Err(RealizeError::NotRealizable(
            "the packed tree set carries no throughput".to_string(),
        ));
    }

    // 4. Clamp to the claimed throughput: certify, don't overshoot.
    let certified_throughput = packed_throughput.min(lp_throughput);
    let mut packed_set = WeightedTreeSet::new();
    for (tree, &w) in trees.iter().zip(&weights) {
        if w > FLOW_EPS {
            packed_set.push(tree.clone(), w)?;
        }
    }
    let tree_set = packed_set.scaled_to_throughput(certified_throughput);
    let achieved_period = 1.0 / certified_throughput;

    // 5. Color the period and replay it: one multicast per period.
    let schedule = PeriodicSchedule::from_weighted_trees(platform, &tree_set, achieved_period)?;
    schedule.validate(platform)?;
    let simulated = Simulator::new(config).run_schedule(platform, &schedule);
    let realization_gap = (simulated.period - lp_period).abs() / lp_period;

    Ok(Realization {
        lp_period,
        tree_set,
        packed_throughput,
        achieved_period,
        schedule,
        simulated,
        realization_gap,
    })
}

/// A tree's identity for pool deduplication: its sorted edge-id set.
/// Different peel orders (and seed trees from a previous realization) can
/// list the same tree's edges in different orders, and duplicate columns
/// would only bloat the packing LP.
pub(crate) fn tree_edge_key(tree: &MulticastTree) -> Vec<u32> {
    let mut edges: Vec<u32> = tree.edges().iter().map(|e| e.0).collect();
    edges.sort_unstable();
    edges
}

/// Per-target end-to-end flow rows of a flow-shaped solution.
pub(crate) type FlowRows = Vec<Vec<f64>>;

/// The candidate-tree pool of a steady-state solution: the flow peels (two
/// target orders lay down different round skeletons) or the explicit tree
/// combination, extended with `seed_trees`, deduplicated by edge set.
/// Returns the pool together with the per-target flow rows when the
/// solution is flow-shaped (the rows bound the support of pricing rounds).
pub(crate) fn candidate_pool(
    instance: &MulticastInstance,
    solution: &SteadyStateSolution,
    seed_trees: &[MulticastTree],
) -> Result<(Vec<MulticastTree>, Option<FlowRows>), RealizeError> {
    // 1. Per-target end-to-end flows (when the solution is flow-shaped).
    let flow_rows: Option<Vec<Vec<f64>>> = match solution {
        SteadyStateSolution::TargetFlows { target_flows, .. } => Some(target_flows.clone()),
        SteadyStateSolution::MultiSource {
            sources,
            dest_nodes,
            dest_flows,
            ..
        } => Some(compose_target_flows(
            instance, sources, dest_nodes, dest_flows,
        )?),
        SteadyStateSolution::Trees { .. } => None,
    };

    // 2. Candidate trees: peel the flows, or take the explicit combination.
    let mut pool: Vec<MulticastTree> = Vec::new();
    let add_tree = |pool: &mut Vec<MulticastTree>, tree: MulticastTree| {
        let key = tree_edge_key(&tree);
        if !pool.iter().any(|p| tree_edge_key(p) == key) {
            pool.push(tree);
        }
    };
    match (&flow_rows, solution) {
        (Some(rows), _) => {
            let natural = WeightedTreeSet::from_flows(instance, rows)?;
            for tree in natural.trees() {
                add_tree(&mut pool, tree.clone());
            }
            let reversed: Vec<usize> = (0..instance.targets.len()).rev().collect();
            if let Ok(set) = WeightedTreeSet::from_flows_with_order(instance, rows, &reversed) {
                for tree in set.trees() {
                    add_tree(&mut pool, tree.clone());
                }
            }
        }
        (None, SteadyStateSolution::Trees { trees, .. }) => {
            for tree in trees.trees() {
                add_tree(&mut pool, tree.clone());
            }
        }
        (None, _) => unreachable!("flow-shaped solutions always produce rows"),
    }
    for tree in seed_trees {
        add_tree(&mut pool, tree.clone());
    }
    if pool.is_empty() {
        return Err(RealizeError::NotRealizable(
            "the decomposition produced no tree".to_string(),
        ));
    }
    Ok((pool, flow_rows))
}

/// Composes the per-destination flows of a multi-source solution into one
/// end-to-end ≈unit flow per instance target, rooted at the primary source:
/// whatever a destination receives from a secondary source is re-rooted
/// through (its share of) the flows that delivered the message to that
/// source, recursively down to the primary source. Sources are ordered and
/// a secondary source only draws from strictly earlier ones, so the
/// recursion is well-founded.
fn compose_target_flows(
    instance: &MulticastInstance,
    sources: &[NodeId],
    dest_nodes: &[NodeId],
    dest_flows: &[Vec<f64>],
) -> Result<Vec<Vec<f64>>, RealizeError> {
    let platform = &instance.platform;
    let m = platform.edge_count();
    if dest_nodes.len() != dest_flows.len() {
        return Err(RealizeError::NotRealizable(format!(
            "{} destination rows for {} destinations",
            dest_flows.len(),
            dest_nodes.len()
        )));
    }
    let row_of = |node: NodeId| dest_nodes.iter().position(|&d| d == node);
    let mut composed: Vec<Option<Vec<f64>>> = vec![None; dest_nodes.len()];

    // Resolve destinations in source order first (each only pulls from
    // earlier sources), then the plain targets (they pull from any source).
    let mut order: Vec<usize> = Vec::with_capacity(dest_nodes.len());
    for &s in sources.iter().skip(1) {
        if let Some(di) = row_of(s) {
            order.push(di);
        }
    }
    for (di, &d) in dest_nodes.iter().enumerate() {
        if !sources.contains(&d) {
            order.push(di);
        }
    }

    for di in order {
        let mut row: Vec<f64> = dest_flows[di]
            .iter()
            .map(|&v| if v > FLOW_EPS { v } else { 0.0 })
            .collect();
        cancel_flow_cycles(platform, &mut row, FLOW_EPS);
        // Net injection at every secondary source = what this destination
        // drew from it; replace it by that share of the source's own
        // (already composed) delivery flow.
        let mut additions: Vec<(f64, usize)> = Vec::new();
        for &s in sources.iter().skip(1) {
            if s == dest_nodes[di] {
                continue;
            }
            let mut divergence = 0.0;
            for &e in platform.out_edges(s) {
                divergence += row[e.index()];
            }
            for &e in platform.in_edges(s) {
                divergence -= row[e.index()];
            }
            if divergence > FLOW_EPS {
                let si = row_of(s).ok_or_else(|| {
                    RealizeError::NotRealizable(format!(
                        "secondary source {s} injects flow but has no delivery row"
                    ))
                })?;
                additions.push((divergence, si));
            }
        }
        for (share, si) in additions {
            let delivery = composed[si].as_ref().ok_or_else(|| {
                RealizeError::NotRealizable(format!(
                    "delivery flow of source {} not composed yet",
                    dest_nodes[si]
                ))
            })?;
            for e in 0..m {
                row[e] += share * delivery[e];
            }
        }
        cancel_flow_cycles(platform, &mut row, FLOW_EPS);
        composed[di] = Some(row);
    }

    instance
        .targets
        .iter()
        .map(|&t| {
            let di = row_of(t).ok_or_else(|| {
                RealizeError::NotRealizable(format!("target {t} has no destination row"))
            })?;
            composed[di].clone().ok_or_else(|| {
                RealizeError::NotRealizable(format!("target {t} flow was never composed"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulations::{BroadcastEb, MulticastLb, MulticastMultiSourceUb, MulticastUb};
    use crate::heuristics::{Mcph, ThroughputHeuristic};
    use pm_platform::instances::{chain_instance, figure1_instance, figure5_instance};

    fn target_flows_solution(
        instance: &MulticastInstance,
        flow: &FlowSolution,
    ) -> SteadyStateSolution {
        SteadyStateSolution::from_flow_solution(instance, &instance.targets, flow, flow.period)
            .expect("rows align with targets")
    }

    #[test]
    fn figure1_lower_bound_realizes_at_period_one() {
        // Figure 1 is the paper's worked example where the LB (period 1) is
        // actually achievable by two weighted trees: the decomposition must
        // find a certificate.
        let inst = figure1_instance();
        let lb = MulticastLb::new(&inst).solve().unwrap();
        let real = realize(&inst, &target_flows_solution(&inst, &lb)).unwrap();
        assert!(
            real.realization_gap < 1e-6,
            "gap {} (achieved {} vs LP {})",
            real.realization_gap,
            real.achieved_period,
            real.lp_period
        );
        assert_eq!(real.simulated.one_port_violations, 0);
        assert!(real.tree_set.len() >= 2, "one tree cannot reach period 1");
    }

    #[test]
    fn scatter_flows_always_realize_their_period() {
        // Sum accounting dominates tree sharing: the scatter bound is
        // achievable by construction.
        for inst in [
            figure1_instance(),
            figure5_instance(3),
            chain_instance(5, 0.7),
        ] {
            let ub = MulticastUb::new(&inst).solve().unwrap();
            let real = realize(&inst, &target_flows_solution(&inst, &ub)).unwrap();
            assert!(
                real.realization_gap < 1e-6,
                "gap {} on {} nodes",
                real.realization_gap,
                inst.platform.node_count()
            );
            assert_eq!(real.simulated.one_port_violations, 0);
            // The trees may genuinely beat the scatter accounting...
            assert!(real.packed_throughput >= ub.throughput - 1e-7);
            // ... but the certified schedule never overshoots the claim.
            assert!(real.achieved_period >= ub.period - 1e-7);
        }
    }

    #[test]
    fn broadcast_eb_realizes_on_figure1() {
        let inst = figure1_instance();
        let eb = BroadcastEb::new(&inst).solve().unwrap();
        // Broadcast commodity rows cover every non-source node; restrict to
        // the instance targets.
        let commodities: Vec<NodeId> = inst
            .platform
            .nodes()
            .filter(|&v| v != inst.source)
            .collect();
        let solution =
            SteadyStateSolution::from_flow_solution(&inst, &commodities, &eb, eb.period).unwrap();
        let real = realize(&inst, &solution).unwrap();
        assert!(real.realization_gap < 1e-6, "gap {}", real.realization_gap);
        assert_eq!(real.simulated.one_port_violations, 0);
    }

    #[test]
    fn multisource_composition_realizes_figure5() {
        let inst = figure5_instance(3);
        let relay = NodeId(1);
        let ms = MulticastMultiSourceUb::new(&inst, vec![inst.source, relay])
            .unwrap()
            .solve()
            .unwrap();
        let solution = SteadyStateSolution::MultiSource {
            period: ms.period,
            sources: vec![inst.source, relay],
            dest_nodes: ms.dest_nodes.clone(),
            dest_flows: ms.dest_flows.clone(),
        };
        let real = realize(&inst, &solution).unwrap();
        // The single source->relay->targets tree beats the multi-source
        // scatter accounting (period 1 vs 1+1/3): packed exceeds the LP,
        // the certificate clamps to it.
        assert!(real.packed_throughput >= ms.throughput - 1e-7);
        assert!(real.realization_gap < 1e-6, "gap {}", real.realization_gap);
        assert_eq!(real.simulated.one_port_violations, 0);
    }

    #[test]
    fn tree_solutions_realize_trivially() {
        let inst = figure1_instance();
        let res = Mcph.run(&inst).unwrap();
        let tree = res.tree.clone().unwrap();
        let mut set = WeightedTreeSet::new();
        set.push(tree, 1.0 / res.period).unwrap();
        let solution = SteadyStateSolution::Trees {
            period: res.period,
            trees: set,
        };
        let real = realize(&inst, &solution).unwrap();
        assert!(real.realization_gap < 1e-6, "gap {}", real.realization_gap);
        assert_eq!(real.simulated.one_port_violations, 0);
    }

    #[test]
    fn infinite_periods_are_not_realizable() {
        let inst = chain_instance(3, 1.0);
        let solution = SteadyStateSolution::TargetFlows {
            period: f64::INFINITY,
            target_flows: vec![vec![0.0; inst.platform.edge_count()]; inst.targets.len()],
        };
        assert!(matches!(
            realize(&inst, &solution),
            Err(RealizeError::NotRealizable(_))
        ));
    }
}
