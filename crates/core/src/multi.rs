//! Multi-commodity steady state: k concurrent demands — distinct
//! multicasts, scatters and broadcast mixes, each with its own source,
//! target set and required rate — jointly scheduled on one shared one-port
//! platform.
//!
//! The paper optimizes a *single* series of multicasts; every layer of this
//! workspace (templates, realization, sessions, serve) was built around
//! that. This module generalizes the whole vertical slice:
//!
//! * [`CommoditySet`] describes the workload: commodity `c` wants `demand_c`
//!   messages from its source to its targets per *super-unit*. Rates are
//!   relative — the joint LP maximizes the common scale at which all
//!   demands are met simultaneously.
//! * [`MultiFlowLp`] is the joint LP in the [`crate::masked`] template
//!   style: per-commodity unit flow conservation (identical to the
//!   single-commodity `Multicast-LB` rows) plus **shared one-port
//!   occupation rows** — every node's send and receive capacity is split
//!   across all commodities: `Σ_c d_c · Σ_{e ∈ port} c(e) · n_{c,e} ≤ T*`.
//!   `T*` is the super-unit period: the time to deliver `d_c` messages of
//!   *every* commodity `c`, so commodity `c`'s rate is `d_c / T*`. The
//!   template re-solves under any [`NodeMask`] through a
//!   [`pm_lp::BoundsOverlay`], warm-starting from any previous basis —
//!   sessions and drift work unchanged.
//! * [`realize_multi`] is the constructive half: per-commodity flow
//!   decomposition ([`WeightedTreeSet::from_flows`] per commodity), one
//!   **shared packing LP** with a scale variable (`Σ_k y_{c,k} = d_c · s`
//!   per commodity, one-port rows shared, maximize `s`), heuristic pricing
//!   rounds inside each commodity's flow support, and a single weighted
//!   König coloring interleaving all commodities' trees into one
//!   *super-period* [`PeriodicSchedule`] of length `P = 1 / s_cert` (each
//!   commodity completes exactly `d_c` messages per super-period). Every
//!   commodity's own rate is then verified in `pm-sim` by replaying its
//!   tag-restricted sub-schedule against its own target set.
//!
//! `k = 1` delegates to the existing single-commodity pipeline
//! ([`MaskedFlowLp::multicast_lb`] + [`crate::realize::realize_with_pool`])
//! via [`MultiTemplate::Single`], so a one-commodity set reproduces the
//! single-commodity results bit for bit — the reduction is by construction,
//! not by coincidence.

use crate::formulations::{FlowSolution, FormulationError};
use crate::masked::{MaskedFlowLp, MaskedStats};
use crate::realize::SteadyStateSolution;
use crate::realize::{candidate_pool, realize_with_pool, tree_edge_key, RealizeError};
use pm_lp::{
    Basis, BoundsOverlay, LpError, LpProblem, Objective, Relation, SolveBudget, SparseBuilder,
    VarId,
};
use pm_platform::graph::{EdgeId, NodeId, Platform};
use pm_platform::instances::MulticastInstance;
use pm_platform::mask::NodeMask;
use pm_sched::schedule::PeriodicSchedule;
use pm_sched::tree::{MulticastTree, WeightedTreeSet};
use pm_sim::{CommodityLane, SimReport, SimulationConfig, Simulator};
use serde::{Deserialize, Serialize};

const FLOW_EPS: f64 = 1e-9;

/// One steady-state demand: `demand` messages from `source` to every node
/// of `targets` per super-unit. A broadcast is a commodity whose targets
/// are every other node; a scatter decomposes into single-target
/// commodities; rate skew is expressed through `demand` (rates across
/// commodities are proportional to demands).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Commodity {
    /// The commodity's source processor.
    pub source: NodeId,
    /// The commodity's destination processors (normalized by
    /// [`CommoditySet::new`]: sorted, deduplicated, never the source).
    pub targets: Vec<NodeId>,
    /// Relative rate weight (finite, strictly positive).
    pub demand: f64,
}

impl Commodity {
    /// Bit-exact equality (demands compared by bits, not tolerance) — the
    /// criterion under which a session may keep reusing a built
    /// [`MultiTemplate`].
    pub fn bits_eq(&self, other: &Commodity) -> bool {
        self.source == other.source
            && self.targets == other.targets
            && self.demand.to_bits() == other.demand.to_bits()
    }
}

/// Bit-exact equality of two commodity lists (see [`Commodity::bits_eq`]).
pub fn same_commodities(a: &[Commodity], b: &[Commodity]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.bits_eq(y))
}

/// A validated multi-commodity workload on a shared platform.
#[derive(Debug, Clone)]
pub struct CommoditySet {
    platform: Platform,
    commodities: Vec<Commodity>,
}

impl CommoditySet {
    /// Validates and normalizes the workload: at least one commodity, every
    /// source and target a platform node, targets sorted and deduplicated
    /// without their source, demands finite and strictly positive.
    pub fn new(platform: Platform, commodities: Vec<Commodity>) -> Result<Self, FormulationError> {
        if commodities.is_empty() {
            return Err(FormulationError::InvalidArgument(
                "a commodity set needs at least one commodity".to_string(),
            ));
        }
        let mut normalized = Vec::with_capacity(commodities.len());
        for (c, commodity) in commodities.into_iter().enumerate() {
            if !(commodity.demand.is_finite() && commodity.demand > 0.0) {
                return Err(FormulationError::InvalidArgument(format!(
                    "commodity {c} demand {} is not finite and positive",
                    commodity.demand
                )));
            }
            let instance = MulticastInstance::new(
                platform.clone(),
                commodity.source,
                commodity.targets.clone(),
            )
            .map_err(|e| FormulationError::InvalidArgument(format!("commodity {c}: {e}")))?;
            normalized.push(Commodity {
                source: commodity.source,
                targets: instance.targets,
                demand: commodity.demand,
            });
        }
        Ok(CommoditySet {
            platform,
            commodities: normalized,
        })
    }

    /// The shared platform (carrying the set's *current* edge costs).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The normalized commodities, in input order.
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    /// Number of commodities.
    pub fn len(&self) -> usize {
        self.commodities.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.commodities.is_empty()
    }

    /// Total demand `Σ_c d_c` (messages per super-unit across commodities).
    pub fn total_demand(&self) -> f64 {
        self.commodities.iter().map(|c| c.demand).sum()
    }

    /// The single-commodity [`MulticastInstance`] of commodity `c` (a
    /// platform clone; used to drive the per-commodity decomposition and
    /// the `k = 1` delegation).
    pub fn instance(&self, c: usize) -> MulticastInstance {
        MulticastInstance::new(
            self.platform.clone(),
            self.commodities[c].source,
            self.commodities[c].targets.clone(),
        )
        .expect("a validated commodity is a valid instance")
    }
}

/// A successful multi-commodity solve: the joint super-unit period, the
/// per-commodity rates it implies, and per-commodity unit flows ready for
/// decomposition.
#[derive(Debug, Clone)]
pub struct MultiFlow {
    /// The joint super-unit period `T*`: the time to deliver `d_c`
    /// messages of every commodity `c` simultaneously.
    pub period: f64,
    /// Per commodity: its steady-state rate `d_c / T*` (messages per
    /// time-unit).
    pub rates: Vec<f64>,
    /// Per commodity: its unit flow solution — `period` is the
    /// per-message period `T* / d_c`, `target_flows[i][e]` the fraction of
    /// one message bound to target `i` crossing edge `e`, `edge_load` the
    /// commodity's max-accounting edge loads.
    pub flows: Vec<FlowSolution>,
    /// The optimal basis (warm-start hint for the next solve of the same
    /// template, under any mask or drifted costs).
    pub basis: Basis,
    /// Solve accounting.
    pub stats: MaskedStats,
}

/// The joint multi-commodity LP as a reusable masked template (the
/// [`crate::masked`] pattern): built once on the full platform, re-solved
/// under any [`NodeMask`] via bound overlays, edge-cost drift applied in
/// place through [`MultiFlowLp::set_edge_cost`].
#[derive(Debug, Clone)]
pub struct MultiFlowLp {
    set: CommoditySet,
    problem: LpProblem,
    /// `x[c][i][e]`: fraction of commodity `c`'s message bound to its
    /// target `i` crossing edge `e`.
    x: Vec<Vec<Vec<VarId>>>,
    /// `n[c][e]`: commodity `c`'s max-accounting load on edge `e`.
    n: Vec<Vec<VarId>>,
    t_star: VarId,
    /// Per node: the `(in-port, out-port)` shared occupation row indices.
    port_rows: Vec<(Option<usize>, Option<usize>)>,
    /// Per edge: its own shared occupation row index.
    edge_rows: Vec<usize>,
    /// Deterministic per-solve work caps; `None` defers to `PM_LP_BUDGET`.
    budget: Option<SolveBudget>,
}

impl MultiFlowLp {
    /// Builds the joint template: per-commodity `Multicast-LB` conservation
    /// rows (unit demand per target, max accounting per commodity) and
    /// shared one-port occupation rows splitting every node's capacity
    /// across all commodities at their demand weights.
    pub fn new(set: &CommoditySet) -> Self {
        let platform = &set.platform;
        let m = platform.edge_count();
        let k = set.len();

        let mut lp = SparseBuilder::new(Objective::Minimize);
        let mut x: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(k);
        for (c, commodity) in set.commodities.iter().enumerate() {
            x.push(
                (0..commodity.targets.len())
                    .map(|i| {
                        (0..m)
                            .map(|e| lp.add_var(&format!("x_{c}_{i}_{e}")))
                            .collect()
                    })
                    .collect(),
            );
        }
        let n: Vec<Vec<VarId>> = (0..k)
            .map(|c| (0..m).map(|e| lp.add_var(&format!("n_{c}_{e}"))).collect())
            .collect();
        let t_star = lp.add_var("T*");
        lp.set_objective_coeff(t_star, 1.0);

        for (c, commodity) in set.commodities.iter().enumerate() {
            let source = commodity.source;
            // (1) one whole message of commodity `c` leaves its source, per
            // target — and (per commodity) never flows back into it. Other
            // commodities may still route *through* this commodity's source.
            for x_row in &x[c] {
                lp.add_constraint(
                    platform
                        .out_edges(source)
                        .iter()
                        .map(|&e| (x_row[e.index()], 1.0)),
                    Relation::Eq,
                    1.0,
                );
            }
            for x_row in &x[c] {
                for &e in platform.in_edges(source) {
                    lp.add_constraint([(x_row[e.index()], 1.0)], Relation::Eq, 0.0);
                }
            }
            // (2) the whole message reaches each of the commodity's targets.
            for (i, &target) in commodity.targets.iter().enumerate() {
                lp.add_constraint(
                    platform
                        .in_edges(target)
                        .iter()
                        .map(|&e| (x[c][i][e.index()], 1.0)),
                    Relation::Eq,
                    1.0,
                );
            }
            // (3) conservation at every other node.
            for (i, &target) in commodity.targets.iter().enumerate() {
                for node in platform.nodes() {
                    if node == source || node == target {
                        continue;
                    }
                    let terms: Vec<(VarId, f64)> = platform
                        .out_edges(node)
                        .iter()
                        .map(|&e| (x[c][i][e.index()], 1.0))
                        .chain(
                            platform
                                .in_edges(node)
                                .iter()
                                .map(|&e| (x[c][i][e.index()], -1.0)),
                        )
                        .collect();
                    if !terms.is_empty() {
                        lp.add_constraint(terms, Relation::Eq, 0.0);
                    }
                }
            }
            // (10') n_{c,e} >= x_{c,i,e}: max accounting per commodity.
            for x_row in &x[c] {
                for e in 0..m {
                    lp.add_constraint([(x_row[e], 1.0), (n[c][e], -1.0)], Relation::Le, 0.0);
                }
            }
        }

        // Shared occupation rows: a port (or edge) serves *all* commodities,
        // each at its demand weight, within one super-unit period.
        let load_terms = |e: usize| -> Vec<(VarId, f64)> {
            let cost = platform.cost(EdgeId(e as u32));
            set.commodities
                .iter()
                .enumerate()
                .map(|(c, commodity)| (n[c][e], commodity.demand * cost))
                .collect()
        };
        let mut port_rows: Vec<(Option<usize>, Option<usize>)> =
            vec![(None, None); platform.node_count()];
        for node in platform.nodes() {
            for (incoming, edges) in [
                (true, platform.in_edges(node)),
                (false, platform.out_edges(node)),
            ] {
                if edges.is_empty() {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &e in edges {
                    terms.extend(load_terms(e.index()));
                }
                terms.push((t_star, -1.0));
                let row = lp.add_constraint(terms, Relation::Le, 0.0);
                let slot = &mut port_rows[node.index()];
                if incoming {
                    slot.0 = Some(row.0);
                } else {
                    slot.1 = Some(row.0);
                }
            }
        }
        let mut edge_rows = Vec::with_capacity(m);
        for e in 0..m {
            let mut terms = load_terms(e);
            terms.push((t_star, -1.0));
            edge_rows.push(lp.add_constraint(terms, Relation::Le, 0.0).0);
        }
        // Lexicographic tie-break: among tied-optimal vertices, the one
        // moving the least demand-weighted cost-weighted traffic (the
        // multi-commodity analogue of the single template's tie-break).
        for e in 0..m {
            let cost = platform.cost(EdgeId(e as u32));
            for (c, commodity) in set.commodities.iter().enumerate() {
                for x_row in &x[c] {
                    lp.set_secondary_coeff(x_row[e], commodity.demand * cost);
                }
                lp.set_secondary_coeff(n[c][e], commodity.demand * cost);
            }
        }

        let problem = lp.build().expect("multi-commodity template is a valid LP");
        MultiFlowLp {
            set: set.clone(),
            problem,
            x,
            n,
            t_star,
            port_rows,
            edge_rows,
            budget: None,
        }
    }

    /// The commodity set the template was built from (its platform carries
    /// the template's current edge costs).
    pub fn set(&self) -> &CommoditySet {
        &self.set
    }

    /// Sets the deterministic per-solve work caps (`None` defers to
    /// `PM_LP_BUDGET`); see [`MaskedFlowLp::set_budget`].
    pub fn set_budget(&mut self, budget: Option<SolveBudget>) {
        self.budget = budget;
    }

    /// Updates the cost of edge `e` in place, rewriting every shared
    /// occupation-row coefficient that carries it (one per commodity per
    /// row). The constraint pattern — and every cached basis — survives.
    ///
    /// # Panics
    /// Panics if `cost` is not finite and strictly positive.
    pub fn set_edge_cost(&mut self, e: EdgeId, cost: f64) {
        self.set
            .platform
            .set_cost(e, cost)
            .expect("edge-cost drift must keep costs finite and positive");
        let edge = *self.set.platform.edge(e);
        let rows = [
            self.port_rows[edge.dst.index()].0,
            self.port_rows[edge.src.index()].1,
            Some(self.edge_rows[e.index()]),
        ];
        for row in rows.into_iter().flatten() {
            for (c, commodity) in self.set.commodities.iter().enumerate() {
                self.problem
                    .set_coeff(row, self.n[c][e.index()], commodity.demand * cost);
            }
        }
        for (c, commodity) in self.set.commodities.iter().enumerate() {
            for x_row in &self.x[c] {
                self.problem
                    .set_secondary_coeff(x_row[e.index()], commodity.demand * cost);
            }
            self.problem
                .set_secondary_coeff(self.n[c][e.index()], commodity.demand * cost);
        }
    }

    /// Solves the joint formulation restricted to the active nodes of
    /// `mask`, warm-starting from `hint`. Every commodity's source and
    /// targets must stay active ([`FormulationError::InvalidArgument`]
    /// otherwise), and every target must be reachable from its commodity's
    /// source over the masked platform ([`FormulationError::Unreachable`],
    /// detected by a BFS pre-check before any LP work).
    pub fn solve(
        &self,
        mask: &NodeMask,
        hint: Option<&Basis>,
    ) -> Result<MultiFlow, FormulationError> {
        let platform = &self.set.platform;
        for (c, commodity) in self.set.commodities.iter().enumerate() {
            if !mask.contains(commodity.source) {
                return Err(FormulationError::InvalidArgument(format!(
                    "mask deactivates commodity {c}'s source {}",
                    commodity.source
                )));
            }
            for &t in &commodity.targets {
                if !mask.contains(t) {
                    return Err(FormulationError::InvalidArgument(format!(
                        "mask deactivates commodity {c}'s target {t}"
                    )));
                }
            }
            let seen = mask.reachable_from(platform, commodity.source);
            for &t in &commodity.targets {
                if !seen[t.index()] {
                    return Err(FormulationError::Unreachable(t));
                }
            }
        }

        let edge_active: Vec<bool> = platform
            .edge_ids()
            .map(|e| mask.edge_active(platform, e))
            .collect();
        let mut overlay = BoundsOverlay::new();
        for c in 0..self.set.len() {
            for (e, &active) in edge_active.iter().enumerate() {
                if !active {
                    for x_row in &self.x[c] {
                        overlay.fix_zero.push(x_row[e]);
                    }
                    overlay.fix_zero.push(self.n[c][e]);
                }
            }
        }

        let out = self
            .problem
            .resolve_with_bounds_budgeted(&overlay, hint, self.budget)
            .map_err(|e| match e {
                // The reachability pre-check passed, so a reported
                // Infeasible is numerical; mirror the single-template
                // convention (see `MaskedFlowLp::solve`).
                LpError::Infeasible => {
                    FormulationError::Unreachable(self.set.commodities[0].targets[0])
                }
                other => FormulationError::Lp(other),
            })?;
        let sol = &out.solution;
        let period = sol.value(self.t_star);
        let mut rates = Vec::with_capacity(self.set.len());
        let mut flows = Vec::with_capacity(self.set.len());
        for (c, commodity) in self.set.commodities.iter().enumerate() {
            let per_message = if commodity.demand > 0.0 {
                period / commodity.demand
            } else {
                f64::INFINITY
            };
            rates.push(if period > 0.0 {
                commodity.demand / period
            } else {
                f64::INFINITY
            });
            flows.push(FlowSolution {
                period: per_message,
                throughput: if per_message > 0.0 {
                    1.0 / per_message
                } else {
                    f64::INFINITY
                },
                target_flows: self.x[c]
                    .iter()
                    .map(|row| row.iter().map(|&v| sol.value(v)).collect())
                    .collect(),
                edge_load: self.n[c].iter().map(|&v| sol.value(v)).collect(),
            });
        }
        Ok(MultiFlow {
            period,
            rates,
            flows,
            basis: out.basis,
            stats: MaskedStats {
                warm: out.stats.warm,
                solve: out.stats,
            },
        })
    }
}

/// A multi-commodity template: the joint LP for `k ≥ 2`, or the existing
/// single-commodity `Multicast-LB` template for `k = 1` (bit-for-bit
/// delegation — the reduction is structural, not numerical).
#[derive(Debug, Clone)]
pub enum MultiTemplate {
    /// `k = 1`: the single-commodity masked template plus the commodity's
    /// demand (pure bookkeeping: the rate of a lone commodity never
    /// depends on its demand weight).
    Single {
        /// The wrapped single-commodity template.
        template: Box<MaskedFlowLp>,
        /// The commodity's demand weight.
        demand: f64,
    },
    /// `k ≥ 2`: the joint LP with shared occupation rows.
    Joint(Box<MultiFlowLp>),
}

impl MultiTemplate {
    /// Builds the template for a commodity set.
    pub fn new(set: &CommoditySet) -> Self {
        if set.len() == 1 {
            MultiTemplate::Single {
                template: Box::new(MaskedFlowLp::multicast_lb(&set.instance(0))),
                demand: set.commodities[0].demand,
            }
        } else {
            MultiTemplate::Joint(Box::new(MultiFlowLp::new(set)))
        }
    }

    /// Sets the deterministic per-solve work caps.
    pub fn set_budget(&mut self, budget: Option<SolveBudget>) {
        match self {
            MultiTemplate::Single { template, .. } => template.set_budget(budget),
            MultiTemplate::Joint(lp) => lp.set_budget(budget),
        }
    }

    /// Applies edge-cost drift in place (see [`MultiFlowLp::set_edge_cost`]).
    pub fn set_edge_cost(&mut self, e: EdgeId, cost: f64) {
        match self {
            MultiTemplate::Single { template, .. } => template.set_edge_cost(e, cost),
            MultiTemplate::Joint(lp) => lp.set_edge_cost(e, cost),
        }
    }

    /// Solves under `mask`, warm-starting from `hint`; both variants return
    /// the same [`MultiFlow`] shape.
    pub fn solve(
        &self,
        mask: &NodeMask,
        hint: Option<&Basis>,
    ) -> Result<MultiFlow, FormulationError> {
        match self {
            MultiTemplate::Single { template, demand } => {
                let out = template.solve(mask, hint)?;
                Ok(MultiFlow {
                    period: demand * out.flow.period,
                    rates: vec![out.flow.throughput],
                    flows: vec![out.flow],
                    basis: out.basis,
                    stats: out.stats,
                })
            }
            MultiTemplate::Joint(lp) => lp.solve(mask, hint),
        }
    }
}

/// The result of realizing a multi-commodity solve: one super-period
/// schedule interleaving every commodity's weighted trees, with
/// per-commodity certification and simulator verdicts.
#[derive(Debug, Clone)]
pub struct MultiRealization {
    /// The joint super-unit period the LP claimed (`T*`).
    pub lp_period: f64,
    /// The certified super-period `P`: each commodity `c` completes
    /// exactly `d_c` messages per `P`. Equals `lp_period` whenever the
    /// packing fully supports the LP's claim.
    pub super_period: f64,
    /// The best common scale the shared packing LP reached (`s_packed`;
    /// the certified scale is `min(s_packed, 1 / T*)`).
    pub packed_scale: f64,
    /// Per commodity: its weighted tree set, scaled to its certified rate.
    pub tree_sets: Vec<WeightedTreeSet>,
    /// Per commodity: the half-open range of transfer tags its trees
    /// occupy inside the shared schedule.
    pub tag_ranges: Vec<(usize, usize)>,
    /// Per commodity: its certified rate `d_c · s_cert`.
    pub certified_rates: Vec<f64>,
    /// Per commodity: the scheduled rate its replayed sub-schedule
    /// actually sustains.
    pub simulated_rates: Vec<f64>,
    /// Per commodity: the full simulator report of its tag-restricted
    /// sub-schedule replayed against its own target set.
    pub commodity_reports: Vec<SimReport>,
    /// The shared super-period schedule.
    pub schedule: PeriodicSchedule,
    /// The simulator's replay of the *combined* schedule (the one-port
    /// verdict across commodities).
    pub simulated: SimReport,
    /// `max_c |simulated_rate_c − certified_rate_c| / certified_rate_c`.
    pub realization_gap: f64,
}

/// Realizes a multi-commodity solve with default simulation settings.
pub fn realize_multi(
    set: &CommoditySet,
    flow: &MultiFlow,
) -> Result<MultiRealization, RealizeError> {
    realize_multi_with_pool(set, flow, &[], SimulationConfig::default())
}

/// Realizes a multi-commodity solve as a simulator-verified super-period
/// schedule, seeding each commodity's candidate pool with `seeds[c]` (trees
/// of a previous realization; pass `&[]` for no seeds).
///
/// `k = 1` delegates to [`crate::realize::realize_with_pool`] — the
/// resulting schedule is bit-identical to the single-commodity pipeline's.
pub fn realize_multi_with_pool(
    set: &CommoditySet,
    flow: &MultiFlow,
    seeds: &[Vec<MulticastTree>],
    config: SimulationConfig,
) -> Result<MultiRealization, RealizeError> {
    if !seeds.is_empty() && seeds.len() != set.len() {
        return Err(RealizeError::NotRealizable(format!(
            "{} seed pools for {} commodities",
            seeds.len(),
            set.len()
        )));
    }
    if flow.flows.len() != set.len() {
        return Err(RealizeError::NotRealizable(format!(
            "{} flow solutions for {} commodities",
            flow.flows.len(),
            set.len()
        )));
    }
    let t_star = flow.period;
    if !(t_star.is_finite() && t_star > 0.0) {
        return Err(RealizeError::NotRealizable(format!(
            "super-unit period {t_star} is not finite and positive"
        )));
    }
    let no_seeds: Vec<MulticastTree> = Vec::new();
    let seeds_for = |c: usize| -> &[MulticastTree] {
        if seeds.is_empty() {
            &no_seeds
        } else {
            &seeds[c]
        }
    };

    // k = 1: the single-commodity pipeline, verbatim.
    if set.len() == 1 {
        let demand = set.commodities[0].demand;
        let instance = set.instance(0);
        let solution = SteadyStateSolution::TargetFlows {
            period: flow.flows[0].period,
            target_flows: flow.flows[0].target_flows.clone(),
        };
        let single = realize_with_pool(&instance, &solution, seeds_for(0), config)?;
        let certified = 1.0 / single.achieved_period;
        let gap = {
            let sim = single.simulated.throughput;
            (sim - certified).abs() / certified
        };
        return Ok(MultiRealization {
            lp_period: demand * single.lp_period,
            super_period: demand * single.achieved_period,
            packed_scale: single.packed_throughput / demand,
            tag_ranges: vec![(0, single.tree_set.trees().len())],
            certified_rates: vec![certified],
            simulated_rates: vec![single.simulated.throughput],
            commodity_reports: vec![single.simulated.clone()],
            schedule: single.schedule,
            simulated: single.simulated,
            realization_gap: gap,
            tree_sets: vec![single.tree_set],
        });
    }

    let platform = set.platform();
    let k = set.len();
    let demands: Vec<f64> = set.commodities.iter().map(|c| c.demand).collect();
    let instances: Vec<MulticastInstance> = (0..k).map(|c| set.instance(c)).collect();

    // 1. Per-commodity decomposition into candidate pools.
    let mut pools: Vec<Vec<MulticastTree>> = Vec::with_capacity(k);
    let mut flow_rows: Vec<Option<Vec<Vec<f64>>>> = Vec::with_capacity(k);
    for (c, instance) in instances.iter().enumerate() {
        let solution = SteadyStateSolution::TargetFlows {
            period: flow.flows[c].period,
            target_flows: flow.flows[c].target_flows.clone(),
        };
        let (pool, rows) = candidate_pool(instance, &solution, seeds_for(c))?;
        if pool.is_empty() {
            return Err(RealizeError::NotRealizable(format!(
                "commodity {c} decomposed into no trees"
            )));
        }
        pools.push(pool);
        flow_rows.push(rows);
    }

    // 2. Shared packing with a scale variable, plus bounded pricing rounds
    // inside each commodity's flow support (mirrors `realize_with_pool`,
    // with congestion shared across commodities).
    let s_target = 1.0 / t_star;
    let (mut weights, mut s_packed) =
        pack_tree_groups(platform, &demands, &pools).map_err(RealizeError::Packing)?;
    let supports: Vec<Option<Vec<bool>>> = flow_rows
        .iter()
        .map(|rows| {
            rows.as_ref().map(|rows| {
                (0..platform.edge_count())
                    .map(|e| rows.iter().any(|row| row[e] > FLOW_EPS))
                    .collect()
            })
        })
        .collect();
    const PRICING_ROUNDS: usize = 4;
    for _ in 0..PRICING_ROUNDS {
        if s_packed >= s_target * (1.0 - 1e-9) {
            break;
        }
        let mut send_util = vec![0.0; platform.node_count()];
        let mut recv_util = vec![0.0; platform.node_count()];
        for (c, pool) in pools.iter().enumerate() {
            for (tree, &w) in pool.iter().zip(&weights[c]) {
                for &e in tree.edges() {
                    let edge = platform.edge(e);
                    send_util[edge.src.index()] += w * edge.cost;
                    recv_util[edge.dst.index()] += w * edge.cost;
                }
            }
        }
        let mut added = false;
        for c in 0..k {
            let Some(support) = &supports[c] else {
                continue;
            };
            let priced: Vec<f64> = platform
                .edge_ids()
                .map(|e| {
                    if !support[e.index()] {
                        return f64::INFINITY;
                    }
                    let edge = platform.edge(e);
                    edge.cost * (0.05 + send_util[edge.src.index()] + recv_util[edge.dst.index()])
                })
                .collect();
            let Ok(tree) = crate::heuristics::Mcph.build_tree_with_costs(&instances[c], priced)
            else {
                continue;
            };
            let key = tree_edge_key(&tree);
            if pools[c].iter().any(|p| tree_edge_key(p) == key) {
                continue;
            }
            pools[c].push(tree);
            added = true;
        }
        if !added {
            break;
        }
        let packed = pack_tree_groups(platform, &demands, &pools).map_err(RealizeError::Packing)?;
        weights = packed.0;
        s_packed = packed.1;
    }
    if s_packed <= FLOW_EPS {
        return Err(RealizeError::NotRealizable(
            "the shared packing carries no throughput".to_string(),
        ));
    }

    // 3. Certify: never overshoot the LP's claim; every commodity is scaled
    // by the same factor, preserving the demand mix exactly.
    let s_cert = s_packed.min(s_target);
    let super_period = 1.0 / s_cert;
    let mut tree_sets = Vec::with_capacity(k);
    for (c, pool) in pools.iter().enumerate() {
        let mut packed_set = WeightedTreeSet::new();
        for (tree, &w) in pool.iter().zip(&weights[c]) {
            if w > FLOW_EPS {
                packed_set.push(tree.clone(), w)?;
            }
        }
        if packed_set.trees().is_empty() {
            return Err(RealizeError::NotRealizable(format!(
                "commodity {c} packed into no positive-rate trees"
            )));
        }
        tree_sets.push(packed_set.scaled_to_throughput(demands[c] * s_cert));
    }
    let certified_rates: Vec<f64> = demands.iter().map(|&d| d * s_cert).collect();

    // 4. One shared König coloring interleaves every commodity's trees
    // into a single super-period; commodity `c` completes `d_c` messages
    // per super-period.
    let group_refs: Vec<&WeightedTreeSet> = tree_sets.iter().collect();
    let (schedule, tag_ranges) =
        PeriodicSchedule::from_weighted_tree_groups(platform, &group_refs, super_period)?;
    schedule.validate(platform)?;

    // 5. Verify: the combined replay checks the one-port model across
    // commodities; each commodity's tag-restricted sub-schedule is
    // replayed against its *own* target set to certify its own rate.
    let simulator = Simulator::new(config);
    let simulated = simulator.run_schedule(platform, &schedule);
    let lanes: Vec<CommodityLane> = (0..k)
        .map(|c| CommodityLane {
            tags: tag_ranges[c].0..tag_ranges[c].1,
            multicasts_per_period: demands[c],
            targets: set.commodities[c].targets.clone(),
        })
        .collect();
    let commodity_reports = simulator.verify_commodity_rates(platform, &schedule, &lanes);
    let simulated_rates: Vec<f64> = commodity_reports.iter().map(|r| r.throughput).collect();
    let realization_gap = simulated_rates
        .iter()
        .zip(&certified_rates)
        .map(|(&sim, &cert)| (sim - cert).abs() / cert)
        .fold(0.0, f64::max);

    Ok(MultiRealization {
        lp_period: t_star,
        super_period,
        packed_scale: s_packed,
        tree_sets,
        tag_ranges,
        certified_rates,
        simulated_rates,
        commodity_reports,
        schedule,
        simulated,
        realization_gap,
    })
}

/// The shared tree-packing LP of the super-period: maximize the common
/// scale `s` subject to per-commodity mix rows `Σ_k y_{c,k} = d_c · s` and
/// the per-node one-port rows `Σ_{c,k} y_{c,k} · load ≤ 1` shared across
/// all commodities. Returns the per-commodity tree rates (aligned with
/// `pools`) and the optimal scale.
pub fn pack_tree_groups(
    platform: &Platform,
    demands: &[f64],
    pools: &[Vec<MulticastTree>],
) -> Result<(Vec<Vec<f64>>, f64), LpError> {
    let mut lp = LpProblem::new(Objective::Maximize);
    let s = lp.add_var("s");
    lp.set_objective_coeff(s, 1.0);
    let y: Vec<Vec<VarId>> = pools
        .iter()
        .enumerate()
        .map(|(c, pool)| {
            (0..pool.len())
                .map(|k| lp.add_var(&format!("y_{c}_{k}")))
                .collect()
        })
        .collect();
    for (c, vars) in y.iter().enumerate() {
        let mut terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        terms.push((s, -demands[c]));
        lp.add_constraint(terms, Relation::Eq, 0.0);
    }
    for node in platform.nodes() {
        let mut send_terms: Vec<(VarId, f64)> = Vec::new();
        let mut recv_terms: Vec<(VarId, f64)> = Vec::new();
        for (c, pool) in pools.iter().enumerate() {
            for (k, tree) in pool.iter().enumerate() {
                let mut send = 0.0;
                let mut recv = 0.0;
                for &e in tree.edges() {
                    let edge = platform.edge(e);
                    if edge.src == node {
                        send += edge.cost;
                    }
                    if edge.dst == node {
                        recv += edge.cost;
                    }
                }
                if send > 0.0 {
                    send_terms.push((y[c][k], send));
                }
                if recv > 0.0 {
                    recv_terms.push((y[c][k], recv));
                }
            }
        }
        if !send_terms.is_empty() {
            lp.add_constraint(send_terms, Relation::Le, 1.0);
        }
        if !recv_terms.is_empty() {
            lp.add_constraint(recv_terms, Relation::Le, 1.0);
        }
    }
    let sol = lp.solve()?;
    let weights: Vec<Vec<f64>> = y
        .iter()
        .map(|vars| vars.iter().map(|&v| sol.value(v).max(0.0)).collect())
        .collect();
    Ok((weights, sol.objective.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_platform::graph::PlatformBuilder;

    /// A diamond with symmetric return edges: S <-> A <-> T, S <-> B <-> T.
    fn diamond_platform() -> Platform {
        let mut b = PlatformBuilder::new();
        let s = b.add_named_node("s");
        let a = b.add_named_node("a");
        let bb = b.add_named_node("b");
        let t = b.add_named_node("t");
        for (u, v, c) in [(s, a, 1.0), (s, bb, 1.0), (a, t, 0.5), (bb, t, 0.5)] {
            b.add_edge(u, v, c).unwrap();
            b.add_edge(v, u, c).unwrap();
        }
        b.build().unwrap()
    }

    fn full_mask(platform: &Platform) -> NodeMask {
        NodeMask::full(platform.node_count())
    }

    #[test]
    fn single_commodity_multi_matches_the_single_template_bit_for_bit() {
        let platform = diamond_platform();
        let set = CommoditySet::new(
            platform.clone(),
            vec![Commodity {
                source: NodeId(0),
                targets: vec![NodeId(3)],
                demand: 2.0,
            }],
        )
        .unwrap();
        let template = MultiTemplate::new(&set);
        let mask = full_mask(&platform);
        let multi = template.solve(&mask, None).unwrap();

        let single = MaskedFlowLp::multicast_lb(&set.instance(0))
            .solve(&mask, None)
            .unwrap();
        assert_eq!(
            multi.flows[0].period.to_bits(),
            single.flow.period.to_bits()
        );
        assert_eq!(multi.flows[0].target_flows, single.flow.target_flows);
        assert_eq!(multi.period.to_bits(), (2.0 * single.flow.period).to_bits());
        assert_eq!(multi.rates[0].to_bits(), single.flow.throughput.to_bits());

        // The realization delegates to the single pipeline, bit for bit.
        let realized = realize_multi(&set, &multi).unwrap();
        let solution = SteadyStateSolution::TargetFlows {
            period: single.flow.period,
            target_flows: single.flow.target_flows.clone(),
        };
        let direct = realize_with_pool(
            &set.instance(0),
            &solution,
            &[],
            SimulationConfig::default(),
        )
        .unwrap();
        assert_eq!(realized.schedule, direct.schedule);
        assert_eq!(realized.tree_sets[0], direct.tree_set);
        assert_eq!(realized.simulated, direct.simulated);
    }

    #[test]
    fn two_commodities_share_the_platform_and_both_meet_their_rates() {
        let platform = diamond_platform();
        // Two opposing multicasts: S -> T and T -> S, equal demand. Each
        // alone reaches rate 1 (two disjoint paths of period 1 each); the
        // relay ports are shared, so jointly each still reaches rate 1
        // (send and receive ports are distinct resources).
        let set = CommoditySet::new(
            platform.clone(),
            vec![
                Commodity {
                    source: NodeId(0),
                    targets: vec![NodeId(3)],
                    demand: 1.0,
                },
                Commodity {
                    source: NodeId(3),
                    targets: vec![NodeId(0)],
                    demand: 1.0,
                },
            ],
        )
        .unwrap();
        let template = MultiTemplate::new(&set);
        let flow = template.solve(&full_mask(&platform), None).unwrap();
        assert!(flow.period.is_finite() && flow.period > 0.0);
        assert_eq!(flow.rates.len(), 2);
        // Equal demands: equal rates, by the mix constraint.
        assert!((flow.rates[0] - flow.rates[1]).abs() < 1e-9);

        let realized = realize_multi(&set, &flow).unwrap();
        assert_eq!(realized.simulated.one_port_violations, 0);
        realized.schedule.validate(&platform).unwrap();
        for c in 0..2 {
            let report = &realized.commodity_reports[c];
            assert_eq!(report.one_port_violations, 0);
            assert!(
                (realized.simulated_rates[c] - realized.certified_rates[c]).abs()
                    <= 1e-6 * realized.certified_rates[c].max(1.0),
                "commodity {c}: simulated {} vs certified {}",
                realized.simulated_rates[c],
                realized.certified_rates[c]
            );
            assert!((report.delivery_ratio - 1.0).abs() < 1e-12);
        }
        // Each commodity completes d_c messages per super-period.
        for (c, report) in realized.commodity_reports.iter().enumerate() {
            let per_period = report.throughput * realized.super_period;
            assert!((per_period - set.commodities()[c].demand).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_demands_split_rates_proportionally() {
        let platform = diamond_platform();
        // Both commodities multicast S -> T: they compete head-on for the
        // same source send port, so the 3:1 demand skew must show up as a
        // 3:1 rate split.
        let set = CommoditySet::new(
            platform.clone(),
            vec![
                Commodity {
                    source: NodeId(0),
                    targets: vec![NodeId(3)],
                    demand: 3.0,
                },
                Commodity {
                    source: NodeId(0),
                    targets: vec![NodeId(3)],
                    demand: 1.0,
                },
            ],
        )
        .unwrap();
        let template = MultiTemplate::new(&set);
        let flow = template.solve(&full_mask(&platform), None).unwrap();
        assert!((flow.rates[0] / flow.rates[1] - 3.0).abs() < 1e-6);
        // Jointly they cannot beat the single-commodity optimum of the
        // shared path structure: total rate <= 1.
        let total: f64 = flow.rates.iter().sum();
        assert!(total <= 1.0 + 1e-9);

        let realized = realize_multi(&set, &flow).unwrap();
        assert_eq!(realized.simulated.one_port_violations, 0);
        for c in 0..2 {
            assert!(
                (realized.simulated_rates[c] - realized.certified_rates[c]).abs()
                    <= 1e-6 * realized.certified_rates[c].max(1.0)
            );
        }
    }

    #[test]
    fn masked_solve_and_drift_mirror_a_fresh_template() {
        let platform = diamond_platform();
        let commodities = vec![
            Commodity {
                source: NodeId(0),
                targets: vec![NodeId(3)],
                demand: 1.0,
            },
            Commodity {
                source: NodeId(3),
                targets: vec![NodeId(1), NodeId(2)],
                demand: 2.0,
            },
        ];
        let set = CommoditySet::new(platform.clone(), commodities.clone()).unwrap();
        let mut template = MultiFlowLp::new(&set);
        let mask = full_mask(&platform);
        let before = template.solve(&mask, None).unwrap();

        // Drift an edge: a *cold* re-solve of the edited template must match
        // a template built fresh on the drifted platform, bit for bit (the
        // in-place coefficient rewrite preserves the constraint pattern).
        let e = platform.find_edge(NodeId(0), NodeId(1)).unwrap();
        template.set_edge_cost(e, 2.5);
        let cold = template.solve(&mask, None).unwrap();

        let mut fresh_platform = platform.clone();
        fresh_platform.set_cost(e, 2.5).unwrap();
        let fresh_set = CommoditySet::new(fresh_platform, commodities).unwrap();
        let fresh = MultiFlowLp::new(&fresh_set).solve(&mask, None).unwrap();
        assert_eq!(cold.period.to_bits(), fresh.period.to_bits());
        for (a, b) in cold.flows.iter().zip(&fresh.flows) {
            assert_eq!(a.target_flows, b.target_flows);
        }

        // A warm re-solve from the pre-drift basis reaches the same optimum
        // (possibly through a different pivot path, so compare by value).
        let warm = template.solve(&mask, Some(&before.basis)).unwrap();
        assert!((warm.period - fresh.period).abs() < 1e-9);
    }

    #[test]
    fn masked_commodity_endpoints_are_validated() {
        let platform = diamond_platform();
        let set = CommoditySet::new(
            platform.clone(),
            vec![
                Commodity {
                    source: NodeId(0),
                    targets: vec![NodeId(3)],
                    demand: 1.0,
                },
                Commodity {
                    source: NodeId(1),
                    targets: vec![NodeId(2)],
                    demand: 1.0,
                },
            ],
        )
        .unwrap();
        let template = MultiFlowLp::new(&set);
        let mut mask = full_mask(&platform);
        mask.remove(NodeId(1));
        // Node 1 is commodity 1's source.
        assert!(matches!(
            template.solve(&mask, None),
            Err(FormulationError::InvalidArgument(_))
        ));
    }

    #[test]
    fn commodity_set_rejects_bad_demands_and_unknown_nodes() {
        let platform = diamond_platform();
        for demand in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(CommoditySet::new(
                platform.clone(),
                vec![Commodity {
                    source: NodeId(0),
                    targets: vec![NodeId(3)],
                    demand,
                }],
            )
            .is_err());
        }
        assert!(CommoditySet::new(
            platform.clone(),
            vec![Commodity {
                source: NodeId(9),
                targets: vec![NodeId(3)],
                demand: 1.0,
            }],
        )
        .is_err());
        assert!(CommoditySet::new(platform, vec![]).is_err());
    }
}
