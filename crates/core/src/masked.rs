//! Masked sub-platform formulations: the paper's LPs built *once* on the
//! full platform and re-solved under [`NodeMask`] views.
//!
//! The greedy heuristics of Section 5.2 evaluate one steady-state LP per
//! candidate node per round. Rebuilding the LP on the candidate sub-platform
//! ([`MulticastInstance::restrict_to`] + [`crate::formulations`]) re-indexes
//! nodes and edges, so every candidate is a structurally different problem
//! and no warm start applies. The masked formulations keep the original
//! indices: node removal is expressed as a [`pm_lp::BoundsOverlay`] — the
//! flow variables of every edge incident to a deactivated node are fixed to
//! zero. The constraint pattern — and with it the warm-start signature —
//! is identical across *all* candidates of a greedy run, so each candidate
//! solve starts from the previous optimal basis and costs a few repair
//! pivots instead of a cold phase 1 + 2.
//!
//! Deactivating a node must also deactivate its *commodity* in the
//! broadcast and multi-source families (whose demand sets follow the node
//! set). Naively that is an RHS change (`demand = 1 → 0`), and lowering an
//! RHS under a basis whose solution carried that demand usually turns the
//! basis primal infeasible — rejecting the hint and paying a cold solve.
//! Instead, every toggling demand row carries a *skip* variable
//! (`Σ in-flow + w_i = 1`): while the commodity is active, `w_i` is fixed
//! to zero and the row is the paper's constraint; when the commodity
//! deactivates, `w_i` is released and absorbs the demand. Node removal is
//! then a pure bound-set change with an unchanged RHS, which the
//! warm-start repair phase in `pm-lp` settles in a handful of pivots.
//!
//! The rebuild path stays available as the differential oracle; the
//! `masked_vs_rebuilt` integration test checks the two agree on status and
//! period for all four formulations on random platforms.
//!
//! Templates are *owned* values (they clone the instance they are built
//! from), so a long-lived [`crate::session::Session`] can hold them next to
//! its authoritative platform without self-referential lifetimes. Edge-cost
//! drift is an in-place delta: [`MaskedFlowLp::set_edge_cost`] /
//! [`MaskedMultiSourceUb::set_edge_cost`] rewrite the occupation-row
//! coefficients through [`LpProblem::set_coeff`] — the constraint pattern
//! (and with it every cached warm-start basis) survives the edit.

use crate::formulations::{FlowSolution, FormulationError, MultiSourceSolution};
use pm_lp::{
    Basis, BoundsOverlay, LpError, LpProblem, Objective, Relation, SolveBudget, SolveStats,
    SparseBuilder, VarId, WarmStatus,
};
use pm_platform::graph::{EdgeId, NodeId};
use pm_platform::instances::MulticastInstance;
use pm_platform::mask::NodeMask;

/// Accounting of one masked solve.
#[derive(Debug, Clone, Copy)]
pub struct MaskedStats {
    /// Warm-start outcome of the underlying LP solve. Solves skipped by the
    /// reachability pre-check report [`WarmStatus::None`].
    pub warm: WarmStatus,
    /// The full per-solve diagnostics of the underlying LP solve (pivot
    /// counts, refactorizations, wall time) — the structured counterpart of
    /// the `PM_LP_STATS=1` stderr lines, aggregated by
    /// [`crate::session::SessionStats`].
    pub solve: SolveStats,
}

/// A successful masked solve of a single-source formulation: the flow
/// solution (indexed by *full-platform* commodity and edge ids), the optimal
/// basis to warm-start the next candidate, and the solve accounting.
#[derive(Debug, Clone)]
pub struct MaskedFlow {
    /// The optimal flows and period.
    pub flow: FlowSolution,
    /// The optimal basis (a warm-start hint for any other mask of the same
    /// template).
    pub basis: Basis,
    /// Solve accounting.
    pub stats: MaskedStats,
}

/// Which of the paper's single-source formulations a [`MaskedFlowLp`]
/// template encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowKind {
    /// `Broadcast-EB` on the masked sub-platform: one commodity per
    /// non-source node, deactivated along with its node.
    BroadcastEb,
    /// `Multicast-LB` (equation 10', max accounting) on the masked
    /// sub-platform; the target set is the instance's and must stay active.
    MulticastLb,
    /// `Multicast-UB` (equation 10, scatter accounting); targets must stay
    /// active.
    MulticastUb,
}

/// A reusable full-platform template of one of the single-source
/// formulations, re-solvable under any [`NodeMask`].
///
/// The template is immutable after construction: concurrent candidate
/// evaluations share one template (and one hint basis) and each build only a
/// per-solve [`BoundsOverlay`].
#[derive(Debug, Clone)]
pub struct MaskedFlowLp {
    instance: MulticastInstance,
    kind: FlowKind,
    problem: LpProblem,
    /// `x[i][e]`: fraction of commodity `i` crossing edge `e`.
    x: Vec<Vec<VarId>>,
    /// `n[e]` edge-load variables (max accounting only).
    n: Option<Vec<VarId>>,
    t_star: VarId,
    /// The target node of each commodity.
    commodity_targets: Vec<NodeId>,
    /// Per commodity: the skip variables of the source-outflow and
    /// target-demand rows (`None` when the commodity can never deactivate,
    /// i.e. for the multicast templates). Fixed to zero while the commodity
    /// is active; released to absorb the demand when it deactivates.
    commodity_skips: Vec<Option<(VarId, VarId)>>,
    /// Per node: the `(in-port, out-port)` occupation row indices (absent
    /// for nodes without edges on that side) — the rows an edge-cost edit
    /// must rewrite.
    port_rows: Vec<(Option<usize>, Option<usize>)>,
    /// Per edge: its own occupation row index.
    edge_rows: Vec<usize>,
    /// Deterministic per-solve work caps; `None` defers to `PM_LP_BUDGET`.
    budget: Option<SolveBudget>,
}

impl MaskedFlowLp {
    /// Builds the masked `Broadcast-EB` template: targets are every
    /// non-source node of the platform; deactivating a node also
    /// deactivates its commodity.
    pub fn broadcast_eb(instance: &MulticastInstance) -> Self {
        let targets: Vec<NodeId> = instance
            .platform
            .nodes()
            .filter(|&v| v != instance.source)
            .collect();
        Self::build(instance, FlowKind::BroadcastEb, targets)
    }

    /// Builds the masked `Multicast-LB` template (max accounting, the lower
    /// bound). Every instance target must stay active in the masks it is
    /// solved under.
    pub fn multicast_lb(instance: &MulticastInstance) -> Self {
        Self::build(instance, FlowKind::MulticastLb, instance.targets.clone())
    }

    /// Builds the masked `Multicast-UB` template (scatter accounting, the
    /// upper bound). Every instance target must stay active.
    pub fn multicast_ub(instance: &MulticastInstance) -> Self {
        Self::build(instance, FlowKind::MulticastUb, instance.targets.clone())
    }

    fn build(instance: &MulticastInstance, kind: FlowKind, targets: Vec<NodeId>) -> Self {
        let platform = &instance.platform;
        let m = platform.edge_count();
        let t_count = targets.len();
        let max_rule = matches!(kind, FlowKind::BroadcastEb | FlowKind::MulticastLb);

        let mut lp = SparseBuilder::new(Objective::Minimize);
        let mut x: Vec<Vec<VarId>> = Vec::with_capacity(t_count);
        for i in 0..t_count {
            x.push((0..m).map(|e| lp.add_var(&format!("x_{i}_{e}"))).collect());
        }
        let n: Option<Vec<VarId>> =
            max_rule.then(|| (0..m).map(|e| lp.add_var(&format!("n_{e}"))).collect());
        // Skip variables, only for the broadcast template (a commodity of a
        // multicast template can never deactivate: its target must stay in
        // every mask).
        let commodity_skips: Vec<Option<(VarId, VarId)>> = (0..t_count)
            .map(|i| {
                matches!(kind, FlowKind::BroadcastEb).then(|| {
                    (
                        lp.add_var(&format!("skip_src_{i}")),
                        lp.add_var(&format!("skip_dem_{i}")),
                    )
                })
            })
            .collect();
        let t_star = lp.add_var("T*");
        lp.set_objective_coeff(t_star, 1.0);

        // (1) the whole message leaves the source, per commodity — or its
        // skip variable absorbs the demand when the commodity deactivates.
        for (i, x_row) in x.iter().enumerate() {
            lp.add_constraint(
                platform
                    .out_edges(instance.source)
                    .iter()
                    .map(|&e| (x_row[e.index()], 1.0))
                    .chain(commodity_skips[i].map(|(u, _)| (u, 1.0))),
                Relation::Eq,
                1.0,
            );
        }
        // No commodity flows back into the source (see
        // `formulations::solve_single_source` for the rationale).
        for x_row in &x {
            for &e in platform.in_edges(instance.source) {
                lp.add_constraint([(x_row[e.index()], 1.0)], Relation::Eq, 0.0);
            }
        }
        // (2) the whole message reaches each target (or its skip absorbs
        // it). A never-deactivating target with no incoming edge gets an
        // unsatisfiable `0 = 1` row: harmless, because the reachability
        // pre-check reports it as unreachable before any solve.
        for (i, &target) in targets.iter().enumerate() {
            lp.add_constraint(
                platform
                    .in_edges(target)
                    .iter()
                    .map(|&e| (x[i][e.index()], 1.0))
                    .chain(commodity_skips[i].map(|(_, w)| (w, 1.0))),
                Relation::Eq,
                1.0,
            );
        }
        // (3) conservation at every other node.
        for (i, &target) in targets.iter().enumerate() {
            for node in platform.nodes() {
                if node == instance.source || node == target {
                    continue;
                }
                let terms: Vec<(VarId, f64)> = platform
                    .out_edges(node)
                    .iter()
                    .map(|&e| (x[i][e.index()], 1.0))
                    .chain(
                        platform
                            .in_edges(node)
                            .iter()
                            .map(|&e| (x[i][e.index()], -1.0)),
                    )
                    .collect();
                if !terms.is_empty() {
                    lp.add_constraint(terms, Relation::Eq, 0.0);
                }
            }
        }
        // (10') n_e >= x_i_e for the max rule.
        if let Some(n) = &n {
            for x_row in &x {
                for e in 0..m {
                    lp.add_constraint([(x_row[e], 1.0), (n[e], -1.0)], Relation::Le, 0.0);
                }
            }
        }
        let load_terms = |e: usize| -> Vec<(VarId, f64)> {
            let cost = platform.cost(EdgeId(e as u32));
            match &n {
                Some(n) => vec![(n[e], cost)],
                None => x.iter().map(|row| (row[e], cost)).collect(),
            }
        };
        // (5)(8)/(6)(9) port occupations and (4)(7) edge occupations. The
        // row indices are recorded so edge-cost drift can rewrite exactly
        // the coefficients that carry a cost (see `set_edge_cost`).
        let mut port_rows: Vec<(Option<usize>, Option<usize>)> =
            vec![(None, None); platform.node_count()];
        for node in platform.nodes() {
            for (incoming, edges) in [
                (true, platform.in_edges(node)),
                (false, platform.out_edges(node)),
            ] {
                if edges.is_empty() {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &e in edges {
                    terms.extend(load_terms(e.index()));
                }
                terms.push((t_star, -1.0));
                let row = lp.add_constraint(terms, Relation::Le, 0.0);
                let slot = &mut port_rows[node.index()];
                if incoming {
                    slot.0 = Some(row.0);
                } else {
                    slot.1 = Some(row.0);
                }
            }
        }
        let mut edge_rows = Vec::with_capacity(m);
        for e in 0..m {
            let mut terms = load_terms(e);
            terms.push((t_star, -1.0));
            edge_rows.push(lp.add_constraint(terms, Relation::Le, 0.0).0);
        }
        // Lexicographic tie-break: among the tied-optimal vertices of these
        // highly degenerate flow LPs, pick the one moving the least
        // cost-weighted traffic. This pins the greedy candidate scores (and
        // hence heuristic outcomes) to a canonical vertex, independent of
        // engine, pricing rule, or warm-start history. Skip variables stay
        // unpenalized: skipping a commodity must never look like traffic.
        for e in 0..m {
            let cost = platform.cost(EdgeId(e as u32));
            for x_row in &x {
                lp.set_secondary_coeff(x_row[e], cost);
            }
            if let Some(n) = &n {
                lp.set_secondary_coeff(n[e], cost);
            }
        }

        let problem = lp.build().expect("masked flow template is a valid LP");
        MaskedFlowLp {
            instance: instance.clone(),
            kind,
            problem,
            x,
            n,
            t_star,
            commodity_targets: targets,
            commodity_skips,
            port_rows,
            edge_rows,
            budget: None,
        }
    }

    /// Sets the deterministic per-solve work caps for every subsequent
    /// [`MaskedFlowLp::solve`] of this template (`None` defers to the
    /// `PM_LP_BUDGET` default). Under an exhausted budget a solve returns a
    /// primal-feasible anytime solution whose stats flag
    /// [`pm_lp::SolveStats::degraded`] instead of erroring — a session
    /// under pressure serves a certified-suboptimal schedule rather than
    /// failing. Set it before sharing the template across threads: solves
    /// take `&self`.
    pub fn set_budget(&mut self, budget: Option<SolveBudget>) {
        self.budget = budget;
    }

    /// The instance the template was built from (its platform carries the
    /// template's *current* edge costs — [`MaskedFlowLp::set_edge_cost`]
    /// keeps the two in sync).
    pub fn instance(&self) -> &MulticastInstance {
        &self.instance
    }

    /// Updates the cost of edge `e` in place: the template's platform copy
    /// and every occupation-row coefficient that carries the cost are
    /// rewritten through [`LpProblem::set_coeff`]. The constraint pattern —
    /// and with it the warm-start signature and every previously returned
    /// [`Basis`] — is unchanged, so the next [`MaskedFlowLp::solve`] repairs
    /// the old basis in a few pivots instead of paying a rebuild + cold
    /// solve.
    ///
    /// # Panics
    /// Panics if `cost` is not finite and strictly positive.
    pub fn set_edge_cost(&mut self, e: EdgeId, cost: f64) {
        self.instance
            .platform
            .set_cost(e, cost)
            .expect("edge-cost drift must keep costs finite and positive");
        let edge = *self.instance.platform.edge(e);
        let rows = [
            self.port_rows[edge.dst.index()].0,
            self.port_rows[edge.src.index()].1,
            Some(self.edge_rows[e.index()]),
        ];
        for row in rows.into_iter().flatten() {
            match &self.n {
                // Max accounting: the cost multiplies the edge-load variable.
                Some(n) => self.problem.set_coeff(row, n[e.index()], cost),
                // Scatter accounting: one term per commodity.
                None => {
                    for x_row in &self.x {
                        self.problem.set_coeff(row, x_row[e.index()], cost);
                    }
                }
            }
        }
        // Keep the lexicographic tie-break priced at the drifted cost.
        for x_row in &self.x {
            self.problem.set_secondary_coeff(x_row[e.index()], cost);
        }
        if let Some(n) = &self.n {
            self.problem.set_secondary_coeff(n[e.index()], cost);
        }
    }

    /// The number of commodities of the template.
    pub fn commodity_count(&self) -> usize {
        self.commodity_targets.len()
    }

    /// Solves the formulation restricted to the active nodes of `mask`,
    /// warm-starting from `hint` (the basis of any previous solve of this
    /// template, under any mask).
    ///
    /// Errors mirror the rebuild path: an active target that the masked
    /// platform cannot reach reports [`FormulationError::Unreachable`]
    /// (detected by a BFS pre-check, so no LP is solved), and a mask
    /// deactivating the source (or, for the multicast templates, a target)
    /// is an [`FormulationError::InvalidArgument`].
    pub fn solve(
        &self,
        mask: &NodeMask,
        hint: Option<&Basis>,
    ) -> Result<MaskedFlow, FormulationError> {
        let platform = &self.instance.platform;
        let source = self.instance.source;
        if !mask.contains(source) {
            return Err(FormulationError::InvalidArgument(format!(
                "mask deactivates the source {source}"
            )));
        }
        if !matches!(self.kind, FlowKind::BroadcastEb) {
            for &t in &self.commodity_targets {
                if !mask.contains(t) {
                    return Err(FormulationError::InvalidArgument(format!(
                        "mask deactivates target {t}"
                    )));
                }
            }
        }
        // Reachability pre-check over the masked platform: every active
        // commodity must be reachable, else the LP would be infeasible.
        let seen = mask.reachable_from(platform, source);
        for &t in &self.commodity_targets {
            if mask.contains(t) && !seen[t.index()] {
                return Err(FormulationError::Unreachable(t));
            }
        }

        let edge_active: Vec<bool> = platform
            .edge_ids()
            .map(|e| mask.edge_active(platform, e))
            .collect();
        let mut overlay = BoundsOverlay::new();
        for (i, &target) in self.commodity_targets.iter().enumerate() {
            if !mask.contains(target) {
                // Deactivated commodity: all flow forced to zero, the skip
                // variables released to absorb the demand rows.
                overlay.fix_zero.extend(self.x[i].iter().copied());
            } else {
                if let Some((u, w)) = self.commodity_skips[i] {
                    overlay.fix_zero.push(u);
                    overlay.fix_zero.push(w);
                }
                for (e, &active) in edge_active.iter().enumerate() {
                    if !active {
                        overlay.fix_zero.push(self.x[i][e]);
                    }
                }
            }
        }
        if let Some(n) = &self.n {
            for (e, &active) in edge_active.iter().enumerate() {
                if !active {
                    overlay.fix_zero.push(n[e]);
                }
            }
        }

        let out = self
            .problem
            .resolve_with_bounds_budgeted(&overlay, hint, self.budget)
            .map_err(|e| match e {
                // The reachability pre-check passed, so a reported
                // Infeasible is numerical (the flow LP of a reachable
                // demand is always feasible). The rebuild path maps it to
                // Unreachable all the same (`formulations`), and status
                // parity with that oracle is what the differential tests
                // pin down — so mirror it rather than diverge.
                LpError::Infeasible => FormulationError::Unreachable(self.commodity_targets[0]),
                other => FormulationError::Lp(other),
            })?;
        let sol = &out.solution;
        let period = sol.value(self.t_star);
        let target_flows: Vec<Vec<f64>> = self
            .x
            .iter()
            .map(|row| row.iter().map(|&v| sol.value(v)).collect())
            .collect();
        let edge_load: Vec<f64> = (0..platform.edge_count())
            .map(|e| match &self.n {
                Some(n) => sol.value(n[e]),
                None => target_flows.iter().map(|row| row[e]).sum(),
            })
            .collect();
        Ok(MaskedFlow {
            flow: FlowSolution {
                period,
                throughput: if period > 0.0 {
                    1.0 / period
                } else {
                    f64::INFINITY
                },
                target_flows,
                edge_load,
            },
            basis: out.basis,
            stats: MaskedStats {
                warm: out.stats.warm,
                solve: out.stats,
            },
        })
    }
}

/// A successful masked multi-source solve.
#[derive(Debug, Clone)]
pub struct MaskedMultiSource {
    /// The optimal period, loads and per-node incoming scores.
    pub solution: MultiSourceSolution,
    /// The optimal basis (a warm-start hint for any other source selection
    /// or mask of the same template).
    pub basis: Basis,
    /// Solve accounting.
    pub stats: MaskedStats,
}

/// A reusable template of `MulticastMultiSource-UB` (Section 5.2.3) whose
/// source list is a per-solve *selection* instead of a structural property.
///
/// The per-origin commodities of the rebuild formulation are merged into one
/// flow per destination plus per-node *injection* variables `z[d][v]` ("the
/// share of `d`'s message entering the network at `v`"): conservation at
/// every node `v ≠ d` reads `out(v) − in(v) = z[d][v]`, the injections of a
/// destination sum to one, and one full message enters the destination.
/// Promoting a node to a source is then a pure bound update — unfix the
/// corresponding injections — and every node is a potential destination
/// whose demand toggles with the target/source sets. The merged LP has the
/// same optimal period as the per-origin form: any merged flow decomposes
/// into per-origin path flows and vice versa, with cycles (the only
/// decomposition obstruction) never load-decreasing. The `masked_vs_rebuilt`
/// differential test checks this equivalence on random platforms.
#[derive(Debug, Clone)]
pub struct MaskedMultiSourceUb {
    instance: MulticastInstance,
    problem: LpProblem,
    /// `x[d][e]`: flow of destination `d`'s message on edge `e` (destination
    /// index over `dest_nodes`).
    x: Vec<Vec<VarId>>,
    /// `z[d][v]`: injection of destination `d`'s message at node `v`
    /// (`None` at `v == d`).
    z: Vec<Vec<Option<VarId>>>,
    t_star: VarId,
    /// Every non-source node, in id order: the potential destinations.
    dest_nodes: Vec<NodeId>,
    /// Per destination: the skip variables of the injection-total and
    /// demand rows (fixed to zero while the destination is active).
    dest_skips: Vec<(VarId, VarId)>,
    /// Per node: the `(in-port, out-port)` occupation row indices.
    port_rows: Vec<(Option<usize>, Option<usize>)>,
    /// Per edge: its own occupation row index.
    edge_rows: Vec<usize>,
    /// Deterministic per-solve work caps; `None` defers to `PM_LP_BUDGET`.
    budget: Option<SolveBudget>,
}

impl MaskedMultiSourceUb {
    /// Builds the template. Every non-source node is a potential destination
    /// and a potential (secondary) source; the actual selection is made per
    /// solve.
    pub fn new(instance: &MulticastInstance) -> Self {
        let platform = &instance.platform;
        let m = platform.edge_count();
        let nn = platform.node_count();
        let dest_nodes: Vec<NodeId> = platform.nodes().filter(|&v| v != instance.source).collect();

        let mut lp = SparseBuilder::new(Objective::Minimize);
        let mut x: Vec<Vec<VarId>> = Vec::with_capacity(dest_nodes.len());
        let mut z: Vec<Vec<Option<VarId>>> = Vec::with_capacity(dest_nodes.len());
        for (di, &d) in dest_nodes.iter().enumerate() {
            x.push((0..m).map(|e| lp.add_var(&format!("x_{di}_{e}"))).collect());
            z.push(
                (0..nn)
                    .map(|v| (v != d.index()).then(|| lp.add_var(&format!("z_{di}_{v}"))))
                    .collect(),
            );
        }
        let dest_skips: Vec<(VarId, VarId)> = (0..dest_nodes.len())
            .map(|di| {
                (
                    lp.add_var(&format!("skip_inj_{di}")),
                    lp.add_var(&format!("skip_dem_{di}")),
                )
            })
            .collect();
        let t_star = lp.add_var("T*");
        lp.set_objective_coeff(t_star, 1.0);

        for (di, &d) in dest_nodes.iter().enumerate() {
            // (1) the injections of destination d sum to one message (the
            // skip variable absorbs it while d is not a destination).
            lp.add_constraint(
                z[di]
                    .iter()
                    .flatten()
                    .map(|&v| (v, 1.0))
                    .chain(std::iter::once((dest_skips[di].0, 1.0))),
                Relation::Eq,
                1.0,
            );
            // (2) one full message enters the destination (or its skip).
            lp.add_constraint(
                platform
                    .in_edges(d)
                    .iter()
                    .map(|&e| (x[di][e.index()], 1.0))
                    .chain(std::iter::once((dest_skips[di].1, 1.0))),
                Relation::Eq,
                1.0,
            );
            // (3) conservation with injection at every node v ≠ d:
            // out(v) − in(v) − z[d][v] = 0.
            for v in platform.nodes() {
                if v == d {
                    continue;
                }
                let terms: Vec<(VarId, f64)> = platform
                    .out_edges(v)
                    .iter()
                    .map(|&e| (x[di][e.index()], 1.0))
                    .chain(
                        platform
                            .in_edges(v)
                            .iter()
                            .map(|&e| (x[di][e.index()], -1.0)),
                    )
                    .chain(std::iter::once((
                        z[di][v.index()].expect("z exists for v != d"),
                        -1.0,
                    )))
                    .collect();
                lp.add_constraint(terms, Relation::Eq, 0.0);
            }
        }
        // (10) scatter accounting + port/edge occupations against T*, with
        // the row indices recorded for in-place edge-cost edits.
        let load_terms = |e: usize| -> Vec<(VarId, f64)> {
            let cost = platform.cost(EdgeId(e as u32));
            x.iter().map(|row| (row[e], cost)).collect()
        };
        let mut port_rows: Vec<(Option<usize>, Option<usize>)> = vec![(None, None); nn];
        for node in platform.nodes() {
            for (incoming, edges) in [
                (true, platform.in_edges(node)),
                (false, platform.out_edges(node)),
            ] {
                if edges.is_empty() {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &e in edges {
                    terms.extend(load_terms(e.index()));
                }
                terms.push((t_star, -1.0));
                let row = lp.add_constraint(terms, Relation::Le, 0.0);
                let slot = &mut port_rows[node.index()];
                if incoming {
                    slot.0 = Some(row.0);
                } else {
                    slot.1 = Some(row.0);
                }
            }
        }
        let mut edge_rows = Vec::with_capacity(m);
        for e in 0..m {
            let mut terms = load_terms(e);
            terms.push((t_star, -1.0));
            edge_rows.push(lp.add_constraint(terms, Relation::Le, 0.0).0);
        }
        // Canonical-vertex tie-break, as in `MaskedFlowLp::build`: minimize
        // cost-weighted traffic over the optimal face. Injection (`z`) and
        // skip variables stay unpenalized — only edge traffic is "cost".
        for e in 0..m {
            let cost = platform.cost(EdgeId(e as u32));
            for x_row in &x {
                lp.set_secondary_coeff(x_row[e], cost);
            }
        }

        let problem = lp.build().expect("masked multi-source template is valid");
        MaskedMultiSourceUb {
            instance: instance.clone(),
            problem,
            x,
            z,
            t_star,
            dest_nodes,
            dest_skips,
            port_rows,
            edge_rows,
            budget: None,
        }
    }

    /// Sets the deterministic per-solve work caps; see
    /// [`MaskedFlowLp::set_budget`].
    pub fn set_budget(&mut self, budget: Option<SolveBudget>) {
        self.budget = budget;
    }

    /// The instance the template was built from (kept cost-synchronised by
    /// [`MaskedMultiSourceUb::set_edge_cost`]).
    pub fn instance(&self) -> &MulticastInstance {
        &self.instance
    }

    /// In-place edge-cost update; see [`MaskedFlowLp::set_edge_cost`] — the
    /// scatter accounting rewrites one coefficient per destination in each
    /// of the three occupation rows the edge participates in.
    ///
    /// # Panics
    /// Panics if `cost` is not finite and strictly positive.
    pub fn set_edge_cost(&mut self, e: EdgeId, cost: f64) {
        self.instance
            .platform
            .set_cost(e, cost)
            .expect("edge-cost drift must keep costs finite and positive");
        let edge = *self.instance.platform.edge(e);
        let rows = [
            self.port_rows[edge.dst.index()].0,
            self.port_rows[edge.src.index()].1,
            Some(self.edge_rows[e.index()]),
        ];
        for row in rows.into_iter().flatten() {
            for x_row in &self.x {
                self.problem.set_coeff(row, x_row[e.index()], cost);
            }
        }
        // Keep the lexicographic tie-break priced at the drifted cost.
        for x_row in &self.x {
            self.problem.set_secondary_coeff(x_row[e.index()], cost);
        }
    }

    /// Solves the formulation for the ordered source list `sources`
    /// (beginning with the instance's source) on the sub-platform of `mask`,
    /// warm-starting from `hint`.
    ///
    /// Destinations are the secondary sources (each served by strictly
    /// earlier sources) and the active targets that are not sources (served
    /// by all sources), exactly as in the rebuild formulation.
    pub fn solve(
        &self,
        mask: &NodeMask,
        sources: &[NodeId],
        hint: Option<&Basis>,
    ) -> Result<MaskedMultiSource, FormulationError> {
        self.solve_opts(mask, sources, hint, true)
    }

    /// [`MaskedMultiSourceUb::solve`] with the per-destination flow
    /// extraction made optional: the greedy candidate loop solves dozens of
    /// LPs per round and only reads periods and incoming scores, so it skips
    /// the `O(dests × edges)` `dest_flows` allocation (`want_flows = false`)
    /// and extracts the matrices only on runs that capture their
    /// steady state for realization.
    pub fn solve_opts(
        &self,
        mask: &NodeMask,
        sources: &[NodeId],
        hint: Option<&Basis>,
        want_flows: bool,
    ) -> Result<MaskedMultiSource, FormulationError> {
        let platform = &self.instance.platform;
        let nn = platform.node_count();
        if sources.first() != Some(&self.instance.source) {
            return Err(FormulationError::InvalidArgument(
                "the first source must be the instance's source".to_string(),
            ));
        }
        let mut source_rank = vec![usize::MAX; nn];
        for (i, &s) in sources.iter().enumerate() {
            if s.index() >= nn {
                return Err(FormulationError::InvalidArgument(format!(
                    "unknown node {s}"
                )));
            }
            if source_rank[s.index()] != usize::MAX {
                return Err(FormulationError::InvalidArgument(format!(
                    "duplicate source {s}"
                )));
            }
            if !mask.contains(s) {
                return Err(FormulationError::InvalidArgument(format!(
                    "mask deactivates source {s}"
                )));
            }
            source_rank[s.index()] = i;
        }
        for &t in &self.instance.targets {
            if !mask.contains(t) {
                return Err(FormulationError::InvalidArgument(format!(
                    "mask deactivates target {t}"
                )));
            }
        }

        // Reachability pre-check: destination d must be reachable (over the
        // masked platform) from its allowed origins — the sources ranked
        // strictly below it for a secondary source, all sources for a plain
        // target. `reach[i]` marks the nodes reachable from the first `i+1`
        // sources; it grows monotonically, so one pass seeding source by
        // source suffices.
        let mut seen = vec![false; nn];
        let mut reach_at_rank: Vec<Vec<bool>> = Vec::with_capacity(sources.len());
        let mut stack: Vec<NodeId> = Vec::new();
        for &s in sources {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
            while let Some(u) = stack.pop() {
                for &e in platform.out_edges(u) {
                    let v = platform.edge(e).dst;
                    if mask.contains(v) && !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
            reach_at_rank.push(seen.clone());
        }
        let full_reach = &reach_at_rank[sources.len() - 1];
        let is_target = |v: NodeId| self.instance.is_target(v);
        let mut any_active = false;
        for &d in &self.dest_nodes {
            let rank = source_rank[d.index()];
            let active = mask.contains(d) && (rank != usize::MAX || is_target(d));
            if !active {
                continue;
            }
            any_active = true;
            let reachable = if rank != usize::MAX {
                // Secondary source: served by strictly earlier sources.
                reach_at_rank[rank - 1][d.index()]
            } else {
                full_reach[d.index()]
            };
            if !reachable {
                return Err(FormulationError::Unreachable(d));
            }
        }
        if !any_active {
            return Err(FormulationError::InvalidArgument(
                "no destination left: every target is already a source".to_string(),
            ));
        }

        let edge_active: Vec<bool> = platform
            .edge_ids()
            .map(|e| mask.edge_active(platform, e))
            .collect();
        let mut overlay = BoundsOverlay::new();
        for (di, &d) in self.dest_nodes.iter().enumerate() {
            let rank = source_rank[d.index()];
            let active = mask.contains(d) && (rank != usize::MAX || is_target(d));
            if !active {
                // Not a destination: flow and injections forced to zero,
                // the skip variables absorb the two demand rows.
                overlay.fix_zero.extend(self.x[di].iter().copied());
                overlay
                    .fix_zero
                    .extend(self.z[di].iter().flatten().copied());
                continue;
            }
            overlay.fix_zero.push(self.dest_skips[di].0);
            overlay.fix_zero.push(self.dest_skips[di].1);
            // Allowed origins: sources ranked strictly below d (secondary
            // source) or every source (plain target).
            let origin_limit = if rank != usize::MAX {
                rank
            } else {
                sources.len()
            };
            for (&zv, &rank_v) in self.z[di].iter().zip(&source_rank) {
                let Some(zv) = zv else { continue };
                if rank_v >= origin_limit {
                    overlay.fix_zero.push(zv);
                }
            }
            for (e, &ea) in edge_active.iter().enumerate() {
                if !ea {
                    overlay.fix_zero.push(self.x[di][e]);
                }
            }
        }

        let out = self
            .problem
            .resolve_with_bounds_budgeted(&overlay, hint, self.budget)
            .map_err(|e| match e {
                // Post-pre-check Infeasible is numerical; mapped to
                // Unreachable for status parity with the rebuild oracle
                // (see the single-source counterpart above).
                LpError::Infeasible => FormulationError::Unreachable(self.dest_nodes[0]),
                other => FormulationError::Lp(other),
            })?;
        let sol = &out.solution;
        let period = sol.value(self.t_star);
        let m = platform.edge_count();
        let mut edge_load = vec![0.0; m];
        let mut dest_nodes: Vec<NodeId> = Vec::new();
        let mut dest_flows: Vec<Vec<f64>> = Vec::new();
        for (di, &d) in self.dest_nodes.iter().enumerate() {
            let rank = source_rank[d.index()];
            let active = mask.contains(d) && (rank != usize::MAX || is_target(d));
            if active && want_flows {
                let row: Vec<f64> = (0..m).map(|e| sol.value(self.x[di][e])).collect();
                for (e, load) in edge_load.iter_mut().enumerate() {
                    *load += row[e];
                }
                dest_nodes.push(d);
                dest_flows.push(row);
            } else {
                // Inactive destination (flows fixed to zero) or a solve
                // that skips extraction: accumulate without allocating.
                for (e, load) in edge_load.iter_mut().enumerate() {
                    *load += sol.value(self.x[di][e]);
                }
            }
        }
        let mut incoming_score = vec![0.0; nn];
        for node in platform.nodes() {
            let mut s = 0.0;
            for &e in platform.in_edges(node) {
                for x_row in &self.x {
                    s += sol.value(x_row[e.index()]);
                }
            }
            incoming_score[node.index()] = s;
        }
        Ok(MaskedMultiSource {
            solution: MultiSourceSolution {
                period,
                throughput: if period > 0.0 {
                    1.0 / period
                } else {
                    f64::INFINITY
                },
                edge_load,
                incoming_score,
                dest_nodes,
                dest_flows,
            },
            basis: out.basis,
            stats: MaskedStats {
                warm: out.stats.warm,
                solve: out.stats,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulations::{BroadcastEb, MulticastLb, MulticastMultiSourceUb, MulticastUb};
    use pm_platform::instances::{figure1_instance, figure5_instance, relay_cross_instance};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn full_mask_matches_rebuild_formulations() {
        for inst in [
            figure1_instance(),
            figure5_instance(3),
            relay_cross_instance(),
        ] {
            let full = NodeMask::full(inst.platform.node_count());
            let masked = MaskedFlowLp::broadcast_eb(&inst)
                .solve(&full, None)
                .unwrap();
            approx(
                masked.flow.period,
                BroadcastEb::new(&inst).solve().unwrap().period,
            );
            let masked = MaskedFlowLp::multicast_lb(&inst)
                .solve(&full, None)
                .unwrap();
            approx(
                masked.flow.period,
                MulticastLb::new(&inst).solve().unwrap().period,
            );
            let masked = MaskedFlowLp::multicast_ub(&inst)
                .solve(&full, None)
                .unwrap();
            approx(
                masked.flow.period,
                MulticastUb::new(&inst).solve().unwrap().period,
            );
        }
    }

    #[test]
    fn masked_broadcast_matches_restricted_rebuild() {
        let inst = figure1_instance();
        let n = inst.platform.node_count();
        // Remove the backbone detour P4 -> P5 (P6 stays reachable via P2).
        let mask = NodeMask::full(n).without(NodeId(4)).without(NodeId(5));
        let masked = MaskedFlowLp::broadcast_eb(&inst)
            .solve(&mask, None)
            .unwrap();
        let sub = MulticastInstance::new(inst.platform.clone(), inst.source, inst.targets.clone())
            .unwrap()
            .restrict_to(&mask.to_nodes())
            .unwrap();
        let rebuilt = BroadcastEb::new(&sub).solve().unwrap();
        approx(masked.flow.period, rebuilt.period);
    }

    #[test]
    fn masked_broadcast_warm_chain_agrees_with_cold() {
        // A chain of masks warm-starting each other must match per-mask
        // cold solves.
        let inst = figure1_instance();
        let n = inst.platform.node_count();
        let template = MaskedFlowLp::broadcast_eb(&inst);
        let mut mask = NodeMask::full(n);
        let mut hint = None;
        // P8 and P9 are cluster leaves with alternative feeds from P7.
        for node in [NodeId(8), NodeId(9)] {
            mask.remove(node);
            let warm = template.solve(&mask, hint.as_ref()).unwrap();
            let cold = template.solve(&mask, None).unwrap();
            approx(warm.flow.period, cold.flow.period);
            hint = Some(warm.basis);
        }
    }

    #[test]
    fn masked_detects_unreachable_active_nodes() {
        // Figure 1: P7's only in-edge comes from P6; removing P6 cuts the
        // whole P7 cluster off.
        let inst = figure1_instance();
        let n = inst.platform.node_count();
        let mask = NodeMask::full(n).without(NodeId(6));
        let res = MaskedFlowLp::broadcast_eb(&inst).solve(&mask, None);
        assert!(matches!(res, Err(FormulationError::Unreachable(_))));
        // Deactivating the source or a target is an argument error.
        let res =
            MaskedFlowLp::broadcast_eb(&inst).solve(&NodeMask::full(n).without(inst.source), None);
        assert!(matches!(res, Err(FormulationError::InvalidArgument(_))));
        let res = MaskedFlowLp::multicast_lb(&inst)
            .solve(&NodeMask::full(n).without(inst.targets[0]), None);
        assert!(matches!(res, Err(FormulationError::InvalidArgument(_))));
    }

    #[test]
    fn masked_multisource_matches_rebuild_on_figure5() {
        let inst = figure5_instance(3);
        let n = inst.platform.node_count();
        let full = NodeMask::full(n);
        let template = MaskedMultiSourceUb::new(&inst);
        // Single source: equals Multicast-UB.
        let single = template.solve(&full, &[inst.source], None).unwrap();
        let oracle = MulticastMultiSourceUb::new(&inst, vec![inst.source])
            .unwrap()
            .solve()
            .unwrap();
        approx(single.solution.period, oracle.period);
        // Relay promoted: equals the rebuild formulation, warm-started from
        // the single-source basis.
        let relay = NodeId(1);
        let multi = template
            .solve(&full, &[inst.source, relay], Some(&single.basis))
            .unwrap();
        let oracle = MulticastMultiSourceUb::new(&inst, vec![inst.source, relay])
            .unwrap()
            .solve()
            .unwrap();
        approx(multi.solution.period, oracle.period);
        assert!(multi.solution.period < single.solution.period - 0.25);
    }

    #[test]
    fn edge_cost_edits_match_a_fresh_template() {
        // Drift a third of the edge costs: the edited template re-solved
        // warm from the pre-drift basis must match a template built fresh
        // on the drifted platform, for every formulation family.
        let mut inst = figure1_instance();
        let full = NodeMask::full(inst.platform.node_count());
        let edits: Vec<(EdgeId, f64)> = inst
            .platform
            .edges()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(i, (e, edge))| (e, edge.cost * (1.0 + 0.1 * (1 + i % 5) as f64)))
            .collect();

        let mut eb = MaskedFlowLp::broadcast_eb(&inst);
        let mut lb = MaskedFlowLp::multicast_lb(&inst);
        let mut ms = MaskedMultiSourceUb::new(&inst);
        let eb_base = eb.solve(&full, None).unwrap();
        let lb_base = lb.solve(&full, None).unwrap();
        let ms_base = ms.solve(&full, &[inst.source], None).unwrap();
        for &(e, c) in &edits {
            inst.platform.set_cost(e, c).unwrap();
            eb.set_edge_cost(e, c);
            lb.set_edge_cost(e, c);
            ms.set_edge_cost(e, c);
            assert_eq!(eb.instance().platform.cost(e), c);
        }

        let eb_warm = eb.solve(&full, Some(&eb_base.basis)).unwrap();
        let eb_fresh = MaskedFlowLp::broadcast_eb(&inst)
            .solve(&full, None)
            .unwrap();
        approx(eb_warm.flow.period, eb_fresh.flow.period);
        assert!(eb_warm.flow.period > eb_base.flow.period - 1e-9);

        let lb_warm = lb.solve(&full, Some(&lb_base.basis)).unwrap();
        let lb_fresh = MaskedFlowLp::multicast_lb(&inst)
            .solve(&full, None)
            .unwrap();
        approx(lb_warm.flow.period, lb_fresh.flow.period);

        let ms_warm = ms
            .solve(&full, &[inst.source], Some(&ms_base.basis))
            .unwrap();
        let ms_fresh = MaskedMultiSourceUb::new(&inst)
            .solve(&full, &[inst.source], None)
            .unwrap();
        approx(ms_warm.solution.period, ms_fresh.solution.period);
    }

    #[test]
    fn masked_multisource_rejects_bad_selections() {
        let inst = figure5_instance(2);
        let n = inst.platform.node_count();
        let full = NodeMask::full(n);
        let template = MaskedMultiSourceUb::new(&inst);
        assert!(template.solve(&full, &[NodeId(1)], None).is_err());
        assert!(template
            .solve(&full, &[inst.source, inst.source], None)
            .is_err());
        assert!(template
            .solve(&full, &[inst.source, NodeId(99)], None)
            .is_err());
        assert!(template
            .solve(&full.without(NodeId(1)), &[inst.source, NodeId(1)], None)
            .is_err());
    }

    #[test]
    fn masked_multisource_incoming_scores_cover_used_relays() {
        let inst = figure5_instance(3);
        let n = inst.platform.node_count();
        let sol = MaskedMultiSourceUb::new(&inst)
            .solve(&NodeMask::full(n), &[inst.source], None)
            .unwrap();
        // The relay forwards everything: its incoming score is the largest.
        let relay = NodeId(1);
        let max = sol
            .solution
            .incoming_score
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        assert!(sol.solution.incoming_score[relay.index()] >= max - 1e-9);
    }
}
