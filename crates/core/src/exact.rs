//! Exact optimum by explicit tree enumeration and tree-packing LP.
//!
//! Theorem 4 of the paper shows that the optimal steady-state throughput is
//! the value of the linear program that packs weighted multicast trees under
//! the one-port constraints, and that an optimal solution uses at most
//! `2|E|` trees. The number of multicast trees is finite but exponential, so
//! this module is an *exact baseline for small platforms only*: it enumerates
//! every minimal multicast tree and solves the packing LP over them.
//!
//! This is what lets the test-suite verify, on the paper's worked example
//! (Figure 1), that no single tree reaches the optimal throughput while a
//! weighted combination does — and more generally that every heuristic stays
//! between the LP lower bound and the exact optimum.

use crate::formulations::FormulationError;
use pm_lp::{LpError, LpProblem, Objective, Relation, VarId};
use pm_platform::graph::{EdgeId, NodeId, Platform};
use pm_platform::instances::MulticastInstance;
use pm_sched::tree::{MulticastTree, WeightedTreeSet};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Limits protecting the exponential enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnumerationLimits {
    /// Maximum number of relay subsets explored.
    pub max_subsets: usize,
    /// Maximum number of trees enumerated.
    pub max_trees: usize,
}

impl Default for EnumerationLimits {
    fn default() -> Self {
        EnumerationLimits {
            max_subsets: 1 << 16,
            max_trees: 200_000,
        }
    }
}

/// Errors of the exact solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactError {
    /// The enumeration limits were exceeded; the instance is too large for
    /// the exact baseline.
    TooLarge,
    /// No multicast tree exists (some target unreachable).
    NoTree,
    /// The packing LP failed.
    Formulation(FormulationError),
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::TooLarge => write!(f, "instance too large for exact tree enumeration"),
            ExactError::NoTree => write!(f, "no multicast tree exists"),
            ExactError::Formulation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExactError::Formulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormulationError> for ExactError {
    fn from(e: FormulationError) -> Self {
        ExactError::Formulation(e)
    }
}

/// Result of the exact tree-packing optimisation.
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Optimal steady-state throughput (multicasts per time-unit).
    pub throughput: f64,
    /// Optimal period (`1 / throughput`).
    pub period: f64,
    /// An optimal weighted tree set achieving the throughput.
    pub tree_set: WeightedTreeSet,
    /// Number of minimal multicast trees enumerated.
    pub trees_enumerated: usize,
    /// The best *single* tree (largest throughput when used alone).
    pub best_single_tree: MulticastTree,
    /// Throughput of the best single tree.
    pub best_single_tree_throughput: f64,
}

/// Exact optimum of the series-of-multicasts problem on small platforms.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactTreePacking {
    /// Enumeration limits (see [`EnumerationLimits`]).
    pub limits: EnumerationLimits,
}

impl ExactTreePacking {
    /// Creates the solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enumerates every *minimal* multicast tree of the instance: trees
    /// rooted at the source whose leaves are all targets (relay nodes with no
    /// children never appear).
    pub fn enumerate_trees(
        &self,
        instance: &MulticastInstance,
    ) -> Result<Vec<MulticastTree>, ExactError> {
        let platform = &instance.platform;
        let relays: Vec<NodeId> = platform
            .nodes()
            .filter(|&v| v != instance.source && !instance.is_target(v))
            .collect();
        if relays.len() >= usize::BITS as usize - 1
            || (1usize << relays.len()) > self.limits.max_subsets
        {
            return Err(ExactError::TooLarge);
        }
        let target_set: HashSet<NodeId> = instance.targets.iter().copied().collect();
        let mut trees: Vec<MulticastTree> = Vec::new();

        for mask in 0..(1usize << relays.len()) {
            let mut nodes: Vec<NodeId> = vec![instance.source];
            nodes.extend(instance.targets.iter().copied());
            for (i, &r) in relays.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    nodes.push(r);
                }
            }
            let node_set: HashSet<NodeId> = nodes.iter().copied().collect();
            // Non-root nodes, each of which must pick one incoming edge from
            // inside the subset.
            let non_root: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|&v| v != instance.source)
                .collect();
            let choices: Vec<Vec<EdgeId>> = non_root
                .iter()
                .map(|&v| {
                    platform
                        .in_edges(v)
                        .iter()
                        .copied()
                        .filter(|&e| node_set.contains(&platform.edge(e).src))
                        .collect::<Vec<_>>()
                })
                .collect();
            if choices.iter().any(|c| c.is_empty()) {
                continue; // some node of the subset cannot be reached at all
            }
            // Depth-first enumeration of parent assignments.
            let mut assignment: Vec<usize> = vec![0; non_root.len()];
            let mut depth = 0usize;
            loop {
                if depth == non_root.len() {
                    // Candidate assignment complete: check acyclicity /
                    // reachability from the root and relay minimality.
                    if let Some(tree) = self.finalize_assignment(
                        instance,
                        &non_root,
                        &choices,
                        &assignment,
                        &target_set,
                    ) {
                        trees.push(tree);
                        if trees.len() > self.limits.max_trees {
                            return Err(ExactError::TooLarge);
                        }
                    }
                    // Backtrack.
                    depth -= 1;
                    loop {
                        assignment[depth] += 1;
                        if assignment[depth] < choices[depth].len() {
                            depth += 1;
                            break;
                        }
                        assignment[depth] = 0;
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    if depth == 0 && assignment[0] == 0 {
                        break;
                    }
                    continue;
                }
                depth += 1;
            }
        }
        if trees.is_empty() {
            return Err(ExactError::NoTree);
        }
        Ok(trees)
    }

    fn finalize_assignment(
        &self,
        instance: &MulticastInstance,
        non_root: &[NodeId],
        choices: &[Vec<EdgeId>],
        assignment: &[usize],
        target_set: &HashSet<NodeId>,
    ) -> Option<MulticastTree> {
        let platform = &instance.platform;
        let edges: Vec<EdgeId> = non_root
            .iter()
            .enumerate()
            .map(|(i, _)| choices[i][assignment[i]])
            .collect();
        // Reachability from the root through the chosen parent edges.
        let mut parent = vec![None; platform.node_count()];
        for &e in &edges {
            parent[platform.edge(e).dst.index()] = Some(platform.edge(e).src);
        }
        let mut has_child = vec![false; platform.node_count()];
        for &v in non_root {
            // Walk up to the root, detecting cycles by bounding the walk.
            let mut cur = v;
            let mut steps = 0;
            loop {
                match parent[cur.index()] {
                    None => {
                        if cur != instance.source {
                            return None; // dangling chain (should not happen)
                        }
                        break;
                    }
                    Some(p) => {
                        cur = p;
                        steps += 1;
                        if steps > non_root.len() + 1 {
                            return None; // cycle
                        }
                    }
                }
            }
        }
        for &e in &edges {
            has_child[platform.edge(e).src.index()] = true;
        }
        // Minimality: every relay of the subset must have at least one child.
        for &v in non_root {
            if !target_set.contains(&v) && !has_child[v.index()] {
                return None;
            }
        }
        MulticastTree::new(instance, edges).ok()
    }

    /// Solves the tree-packing LP over the enumerated trees: maximize
    /// `Σ_k y_k` subject to the one-port send/receive constraints of every
    /// node (the LP of Theorem 4).
    pub fn solve(&self, instance: &MulticastInstance) -> Result<ExactSolution, ExactError> {
        let platform = &instance.platform;
        let trees = self.enumerate_trees(instance)?;

        // Best single tree while we are at it.
        let (best_idx, best_period) = trees
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.period(platform)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("at least one tree");

        let (weights, throughput) = pack_trees(platform, &trees)
            .map_err(|e| ExactError::Formulation(FormulationError::Lp(e)))?;

        let mut tree_set = WeightedTreeSet::new();
        for (tree, &w) in trees.iter().zip(&weights) {
            if w > 1e-9 {
                tree_set
                    .push(tree.clone(), w)
                    .expect("LP weights are non-negative");
            }
        }
        Ok(ExactSolution {
            throughput,
            period: if throughput > 0.0 {
                1.0 / throughput
            } else {
                f64::INFINITY
            },
            tree_set,
            trees_enumerated: trees.len(),
            best_single_tree: trees[best_idx].clone(),
            best_single_tree_throughput: 1.0 / best_period,
        })
    }
}

/// Solves the tree-packing LP of Theorem 4 over an explicit tree list:
/// maximize `Σ_k y_k` subject to every node's one-port send and receive
/// budgets. Returns the optimal weights (aligned with `trees`, zeros
/// included) and the achieved throughput.
///
/// Shared by the exhaustive exact baseline (which enumerates *all* minimal
/// trees) and the realization pipeline of [`crate::realize`] (which packs
/// only the trees peeled from an LP flow).
pub fn pack_trees(
    platform: &Platform,
    trees: &[MulticastTree],
) -> Result<(Vec<f64>, f64), LpError> {
    let mut lp = LpProblem::new(Objective::Maximize);
    let y: Vec<VarId> = (0..trees.len())
        .map(|k| lp.add_var(&format!("y{k}")))
        .collect();
    for &v in &y {
        lp.set_objective_coeff(v, 1.0);
    }
    // Per-node send and receive constraints.
    for node in platform.nodes() {
        let mut send_terms: Vec<(VarId, f64)> = Vec::new();
        let mut recv_terms: Vec<(VarId, f64)> = Vec::new();
        for (k, tree) in trees.iter().enumerate() {
            let mut send = 0.0;
            let mut recv = 0.0;
            for &e in tree.edges() {
                let edge = platform.edge(e);
                if edge.src == node {
                    send += edge.cost;
                }
                if edge.dst == node {
                    recv += edge.cost;
                }
            }
            if send > 0.0 {
                send_terms.push((y[k], send));
            }
            if recv > 0.0 {
                recv_terms.push((y[k], recv));
            }
        }
        if !send_terms.is_empty() {
            lp.add_constraint(send_terms, Relation::Le, 1.0);
        }
        if !recv_terms.is_empty() {
            lp.add_constraint(recv_terms, Relation::Le, 1.0);
        }
    }
    let sol = lp.solve()?;
    let weights: Vec<f64> = y.iter().map(|&v| sol.value(v).max(0.0)).collect();
    Ok((weights, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulations::{MulticastLb, MulticastUb};
    use pm_platform::instances::{chain_instance, figure1_instance, figure5_instance};

    #[test]
    fn chain_has_a_single_tree() {
        let inst = chain_instance(4, 2.0);
        let exact = ExactTreePacking::new().solve(&inst).unwrap();
        assert_eq!(exact.trees_enumerated, 1);
        assert!((exact.period - 2.0).abs() < 1e-6);
        assert!((exact.best_single_tree_throughput - 0.5).abs() < 1e-6);
    }

    #[test]
    fn figure5_exact_matches_the_lower_bound() {
        let inst = figure5_instance(3);
        let exact = ExactTreePacking::new().solve(&inst).unwrap();
        assert!((exact.period - 1.0).abs() < 1e-6);
        // Only one tree exists (source -> relay -> all targets).
        assert_eq!(exact.trees_enumerated, 1);
    }

    #[test]
    fn figure1_single_tree_cannot_reach_the_optimum_but_a_combination_can() {
        let inst = figure1_instance();
        let exact = ExactTreePacking::new().solve(&inst).unwrap();
        // The optimal steady-state throughput is exactly 1 multicast per
        // time-unit (Section 3)...
        assert!(
            (exact.throughput - 1.0).abs() < 1e-5,
            "throughput {}",
            exact.throughput
        );
        // ... no single tree achieves it ...
        assert!(exact.best_single_tree_throughput < 1.0 - 1e-6);
        // ... and the optimal combination is feasible under one-port.
        assert!(exact.tree_set.is_feasible(&inst.platform, 1e-6));
        assert!(exact.tree_set.len() >= 2);
    }

    #[test]
    fn exact_is_sandwiched_between_the_lp_bounds() {
        for inst in [
            figure1_instance(),
            figure5_instance(4),
            chain_instance(5, 1.0),
        ] {
            let lb = MulticastLb::new(&inst).solve().unwrap().period;
            let ub = MulticastUb::new(&inst).solve().unwrap().period;
            let exact = ExactTreePacking::new().solve(&inst).unwrap();
            assert!(
                lb <= exact.period + 1e-6,
                "LB {lb} > exact {}",
                exact.period
            );
            assert!(
                exact.period <= ub + 1e-6,
                "exact {} > UB {ub}",
                exact.period
            );
        }
    }

    #[test]
    fn enumeration_limits_are_enforced() {
        let inst = figure1_instance();
        let solver = ExactTreePacking {
            limits: EnumerationLimits {
                max_subsets: 4,
                max_trees: 10,
            },
        };
        assert_eq!(
            solver.enumerate_trees(&inst).unwrap_err(),
            ExactError::TooLarge
        );
    }
}
