//! Differential proptest for the served protocol: a random interleaved
//! request trace over several tenants must produce the same outcomes
//! through the sharded, batching server as through per-session direct
//! [`Session`] calls — independent of the shard count and of the batching
//! tick. Checked per request:
//!
//! * status parity — ok vs error, with matching machine codes (random
//!   churn may legitimately disconnect a tenant's platform, invalid drift
//!   must be rejected identically, `re_realize` before any solve must fail
//!   identically on both paths),
//! * solve periods within `1e-9` (the coalesced flush reconstructs exactly
//!   the per-event platform state at every barrier),
//! * realizations: zero one-port violations on both paths, throughput and
//!   gap within `1e-6`, transition-cost presence and numerics in
//!   agreement, and the drained transition stream equal entry for entry,
//! * schedule queries: same availability, same period/throughput/tree
//!   count.

use pm_core::multi::Commodity;
use pm_core::report::HeuristicKind;
use pm_core::session::{Session, TransitionCost};
use pm_platform::graph::{EdgeId, NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use pm_serve::{
    error_code, CommoditySpec, InstanceSpec, MultiSpec, Request, Response, ServeConfig, Server,
    TransitionDesc,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;
const SIM_TOL: f64 = 1e-6;

/// Server shapes the same trace is replayed through: single-shard
/// single-event ticks (no batching at all), a small pool with a mid tick,
/// and a tick so large only barriers ever flush.
const CONFIGS: &[(usize, usize)] = &[(1, 1), (3, 4), (2, 64)];

fn random_instance(rng: &mut StdRng) -> MulticastInstance {
    let n = rng.gen_range(4usize..8);
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    for i in 1..n {
        let parent = nodes[rng.gen_range(0..i)];
        b.add_edge(parent, nodes[i], rng.gen_range(0.2..2.0))
            .unwrap();
    }
    for _ in 0..rng.gen_range(n..3 * n) {
        let a = nodes[rng.gen_range(0..n)];
        let c = nodes[rng.gen_range(0..n)];
        if a != c {
            let _ = b.add_edge(a, c, rng.gen_range(0.2..2.0));
        }
    }
    let platform = b.build().unwrap();
    let source = nodes[0];
    let mut targets: Vec<NodeId> = nodes[1..]
        .iter()
        .copied()
        .filter(|_| rng.gen_range(0u32..100) < 40)
        .collect();
    if targets.is_empty() {
        targets.push(nodes[rng.gen_range(1..n)]);
    }
    MulticastInstance::new(platform, source, targets).unwrap()
}

const SOLVE_KINDS: &[HeuristicKind] = &[
    HeuristicKind::Scatter,
    HeuristicKind::LowerBound,
    HeuristicKind::Broadcast,
];

/// Builds a random interleaved trace over `tenants` sessions. The first
/// two tenants share one instance shape (exercising the template arena);
/// drift includes deliberately invalid events to check error parity.
fn random_trace(seed: u64, tenants: usize, steps: usize) -> (Vec<InstanceSpec>, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let shared = InstanceSpec::from_instance(&random_instance(&mut rng));
    let mut specs = vec![shared.clone(), shared];
    while specs.len() < tenants {
        specs.push(InstanceSpec::from_instance(&random_instance(&mut rng)));
    }
    let mut requests = Vec::with_capacity(tenants + steps);
    for (i, spec) in specs.iter().enumerate() {
        requests.push(Request::CreateSession {
            id: requests.len() as u64 + 1,
            session: format!("t{i}"),
            spec: spec.clone(),
            kinds: vec![HeuristicKind::Scatter],
        });
    }
    for _ in 0..steps {
        let tenant = rng.gen_range(0..tenants);
        let session = format!("t{tenant}");
        let spec = &specs[tenant];
        let id = requests.len() as u64 + 1;
        let request = match rng.gen_range(0u32..100) {
            // Edge-cost drift (sometimes on an out-of-range edge).
            0..=34 => Request::SetEdgeCost {
                id,
                session,
                edge: rng.gen_range(0..spec.edges.len() as u32 + 1),
                cost: rng.gen_range(0.05f64..20.0),
            },
            // Node churn — the generator does not avoid the source or the
            // targets, so a fair share of these must error identically.
            35..=49 => {
                let node = rng.gen_range(0..spec.nodes as u32 + 1);
                if rng.gen_bool(0.5) {
                    Request::DisableNode { id, session, node }
                } else {
                    Request::EnableNode { id, session, node }
                }
            }
            50..=74 => Request::Solve {
                id,
                session,
                kind: SOLVE_KINDS[rng.gen_range(0..SOLVE_KINDS.len())],
            },
            75..=86 => Request::ReRealize {
                id,
                session,
                kind: HeuristicKind::Scatter,
            },
            87..=94 => Request::QuerySchedule {
                id,
                session,
                kind: HeuristicKind::Scatter,
            },
            _ => Request::StreamTransitionCosts { id, session },
        };
        requests.push(request);
    }
    (specs, requests)
}

const DEMANDS: &[f64] = &[0.5, 1.0, 2.0, 4.0];

/// A random multi-commodity workload on a strongly connected platform (a
/// directed ring plus random chords), so any commodity endpoints are
/// reachable from any source.
fn random_multi_spec(rng: &mut StdRng) -> MultiSpec {
    let n = rng.gen_range(4usize..7);
    let mut edges: Vec<(u32, u32, f64)> = (0..n)
        .map(|i| (i as u32, ((i + 1) % n) as u32, rng.gen_range(0.2..2.0)))
        .collect();
    for _ in 0..rng.gen_range(n..2 * n) {
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        if a != b && !edges.iter().any(|&(x, y, _)| x == a && y == b) {
            edges.push((a, b, rng.gen_range(0.2..2.0)));
        }
    }
    let k = rng.gen_range(1usize..4);
    let commodities = (0..k)
        .map(|_| {
            let source = rng.gen_range(0..n) as u32;
            let mut targets: Vec<u32> = (0..n as u32)
                .filter(|&t| t != source)
                .filter(|_| rng.gen_range(0u32..100) < 40)
                .collect();
            if targets.is_empty() {
                targets.push((source + 1) % n as u32);
            }
            CommoditySpec {
                source,
                targets,
                demand: DEMANDS[rng.gen_range(0..DEMANDS.len())],
            }
        })
        .collect();
    MultiSpec {
        nodes: n,
        edges,
        commodities,
    }
}

/// An interleaved trace over two multi-commodity tenants (sharing one
/// workload shape, exercising the domain-separated template arena) and one
/// single-commodity tenant. Multi barriers, single barriers and coalesced
/// drift mix freely; multi requests also land on the single tenant (and
/// must be rejected identically on both paths).
fn random_multi_trace(seed: u64, steps: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let multi = random_multi_spec(&mut rng);
    let single = InstanceSpec::from_instance(&random_instance(&mut rng));
    let mut requests: Vec<Request> = Vec::with_capacity(steps + 3);
    for name in ["m0", "m1"] {
        requests.push(Request::CreateMultiSession {
            id: requests.len() as u64 + 1,
            session: name.to_string(),
            spec: multi.clone(),
        });
    }
    requests.push(Request::CreateSession {
        id: requests.len() as u64 + 1,
        session: "s2".to_string(),
        spec: single.clone(),
        kinds: vec![HeuristicKind::Scatter],
    });
    let tenants = ["m0", "m1", "s2"];
    for _ in 0..steps {
        let tenant = rng.gen_range(0..tenants.len());
        let session = tenants[tenant].to_string();
        let edge_count = if tenant < 2 {
            multi.edges.len()
        } else {
            single.edges.len()
        } as u32;
        let node_count = if tenant < 2 {
            multi.nodes
        } else {
            single.nodes
        } as u32;
        let id = requests.len() as u64 + 1;
        let request = match rng.gen_range(0u32..100) {
            // Drift, sometimes on an out-of-range edge for error parity.
            0..=29 => Request::SetEdgeCost {
                id,
                session,
                edge: rng.gen_range(0..edge_count + 1),
                cost: rng.gen_range(0.05f64..20.0),
            },
            // Node churn against the base instance (commodity 0 for the
            // multi tenants); flips of a non-base commodity's endpoints are
            // admitted and must fail identically at the next multi barrier.
            30..=41 => {
                let node = rng.gen_range(0..node_count + 1);
                if rng.gen_bool(0.6) {
                    Request::DisableNode { id, session, node }
                } else {
                    Request::EnableNode { id, session, node }
                }
            }
            // Joint solves — also on the single tenant, which must reject.
            42..=64 => Request::SolveMulti { id, session },
            65..=84 => Request::ReRealizeMulti { id, session },
            // Single-commodity barriers on any tenant (a multi tenant's
            // base instance is an ordinary session underneath).
            85..=93 => Request::Solve {
                id,
                session,
                kind: SOLVE_KINDS[rng.gen_range(0..SOLVE_KINDS.len())],
            },
            _ => Request::ReRealize {
                id,
                session,
                kind: HeuristicKind::Scatter,
            },
        };
        requests.push(request);
    }
    requests
}

/// The oracle: plain per-session [`Session`]s, every event applied
/// immediately (no batching, no sharding, no shared caches).
struct Direct {
    sessions: std::collections::HashMap<String, Session>,
    /// The commodity list of multi tenants (`None` for single tenants).
    commodities: std::collections::HashMap<String, Option<Vec<Commodity>>>,
    transitions: std::collections::HashMap<String, Vec<(HeuristicKind, TransitionCost)>>,
}

/// What the oracle says one request must produce.
enum Expected {
    Ack,
    Error(&'static str),
    Solved {
        period: f64,
    },
    Realized {
        violations: u64,
        gap: f64,
        throughput: f64,
        transition: Option<TransitionDesc>,
    },
    Schedule {
        period: f64,
        throughput: f64,
        trees: usize,
    },
    Transitions(Vec<(HeuristicKind, TransitionDesc)>),
    MultiSolved {
        period: f64,
        rates: Vec<f64>,
    },
    MultiRealized {
        super_period: f64,
        violations: u64,
        gap: f64,
        rates: Vec<f64>,
        rate_met: Vec<bool>,
        transition: Option<TransitionDesc>,
    },
}

impl Direct {
    fn new() -> Direct {
        Direct {
            sessions: Default::default(),
            commodities: Default::default(),
            transitions: Default::default(),
        }
    }

    fn apply(&mut self, request: &Request) -> Expected {
        match request {
            Request::CreateSession { session, spec, .. } => {
                let instance = spec.build().expect("generated specs are valid");
                self.sessions
                    .insert(session.clone(), Session::new(instance));
                self.commodities.insert(session.clone(), None);
                self.transitions.insert(session.clone(), Vec::new());
                Expected::Ack
            }
            Request::CreateMultiSession { session, spec, .. } => {
                let (instance, commodities) =
                    spec.build().expect("generated multi specs are valid");
                self.sessions
                    .insert(session.clone(), Session::new(instance));
                self.commodities.insert(session.clone(), Some(commodities));
                self.transitions.insert(session.clone(), Vec::new());
                Expected::Ack
            }
            Request::SetEdgeCost {
                session,
                edge,
                cost,
                ..
            } => {
                let s = self.sessions.get_mut(session).unwrap();
                match s.set_edge_cost(EdgeId(*edge), *cost) {
                    Ok(()) => Expected::Ack,
                    Err(e) => Expected::Error(error_code(&e)),
                }
            }
            Request::DisableNode { session, node, .. } => {
                let s = self.sessions.get_mut(session).unwrap();
                match s.disable_node(NodeId(*node)) {
                    Ok(_) => Expected::Ack,
                    Err(e) => Expected::Error(error_code(&e)),
                }
            }
            Request::EnableNode { session, node, .. } => {
                let s = self.sessions.get_mut(session).unwrap();
                match s.enable_node(NodeId(*node)) {
                    Ok(_) => Expected::Ack,
                    Err(e) => Expected::Error(error_code(&e)),
                }
            }
            Request::Solve { session, kind, .. } => {
                let s = self.sessions.get_mut(session).unwrap();
                match s.solve(*kind) {
                    Ok(solve) => Expected::Solved {
                        period: solve.result.period,
                    },
                    Err(e) => Expected::Error(error_code(&e)),
                }
            }
            Request::ReRealize { session, kind, .. } => {
                let s = self.sessions.get_mut(session).unwrap();
                match s.re_realize(*kind) {
                    Ok(re) => {
                        if let Some(t) = re.transition {
                            self.transitions.get_mut(session).unwrap().push((*kind, t));
                        }
                        Expected::Realized {
                            violations: re.realization.simulated.one_port_violations as u64,
                            gap: re.realization.realization_gap,
                            throughput: re.realization.simulated.throughput,
                            transition: re.transition.as_ref().map(TransitionDesc::from_cost),
                        }
                    }
                    Err(e) => Expected::Error(error_code(&e)),
                }
            }
            Request::QuerySchedule { session, kind, .. } => {
                let s = self.sessions.get_mut(session).unwrap();
                match s.realization_for(*kind) {
                    Some(r) => Expected::Schedule {
                        period: r.achieved_period,
                        throughput: r.packed_throughput,
                        trees: r.tree_set.len(),
                    },
                    None => Expected::Error("no_schedule"),
                }
            }
            Request::StreamTransitionCosts { session, .. } => {
                let drained = std::mem::take(self.transitions.get_mut(session).unwrap());
                Expected::Transitions(
                    drained
                        .into_iter()
                        .map(|(k, t)| (k, TransitionDesc::from_cost(&t)))
                        .collect(),
                )
            }
            Request::SolveMulti { session, .. } => {
                let Some(Some(commodities)) = self.commodities.get(session).cloned() else {
                    return Expected::Error("not_multi");
                };
                let s = self.sessions.get_mut(session).unwrap();
                match s.solve_multi(&commodities) {
                    Ok(solve) => Expected::MultiSolved {
                        period: solve.flow.period,
                        rates: solve.flow.rates.clone(),
                    },
                    Err(e) => Expected::Error(error_code(&e)),
                }
            }
            Request::ReRealizeMulti { session, .. } => {
                if !matches!(self.commodities.get(session), Some(Some(_))) {
                    return Expected::Error("not_multi");
                }
                let s = self.sessions.get_mut(session).unwrap();
                match s.re_realize_multi() {
                    Ok(re) => {
                        let r = &re.realization;
                        // Mirror the server's rate acceptance: simulated
                        // rate within 1e-6 of the LP's claim per commodity.
                        let lp_rates: Vec<f64> = s
                            .multi_solution()
                            .map(|(_, flow)| flow.rates.clone())
                            .unwrap_or_else(|| r.certified_rates.clone());
                        Expected::MultiRealized {
                            super_period: r.super_period,
                            violations: r.simulated.one_port_violations as u64,
                            gap: r.realization_gap,
                            rates: r.simulated_rates.clone(),
                            rate_met: r
                                .simulated_rates
                                .iter()
                                .zip(&lp_rates)
                                .map(|(&sim, &lp)| sim >= lp - 1e-6)
                                .collect(),
                            transition: re.transition.as_ref().map(TransitionDesc::from_cost),
                        }
                    }
                    Err(e) => Expected::Error(error_code(&e)),
                }
            }
            other => panic!("oracle does not model {other:?}"),
        }
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a.is_infinite() && b.is_infinite() && a.signum() == b.signum()) || (a - b).abs() <= tol
}

fn transition_close(a: &TransitionDesc, b: &TransitionDesc) -> bool {
    close(a.drain_time, b.drain_time, SIM_TOL)
        && close(a.first_delivery_latency, b.first_delivery_latency, SIM_TOL)
        && close(a.switch_time, b.switch_time, SIM_TOL)
        && close(a.multicasts_lost, b.multicasts_lost, SIM_TOL)
        && close(a.throughput_delta, b.throughput_delta, SIM_TOL)
        && a.trees_kept == b.trees_kept
        && a.trees_added == b.trees_added
        && a.trees_dropped == b.trees_dropped
}

fn check(
    label: &str,
    request: &Request,
    expected: &Expected,
    got: &Response,
) -> Result<(), TestCaseError> {
    let fail = |detail: String| {
        Err(TestCaseError {
            message: format!("{label}: {detail}\n  request: {request:?}\n  response: {got:?}"),
        })
    };
    match (expected, got) {
        (Expected::Ack, Response::Ok { .. }) => Ok(()),
        (Expected::Error(code), Response::Error { code: got_code, .. }) => {
            if code == got_code {
                Ok(())
            } else {
                fail(format!(
                    "error code mismatch: direct '{code}', served '{got_code}'"
                ))
            }
        }
        (Expected::Solved { period }, Response::Solved { period: got_p, .. }) => {
            if close(*period, *got_p, TOL) {
                Ok(())
            } else {
                fail(format!("period mismatch: direct {period}, served {got_p}"))
            }
        }
        (
            Expected::Realized {
                violations,
                gap,
                throughput,
                transition,
            },
            Response::Realized {
                violations: got_v,
                gap: got_g,
                throughput: got_t,
                transition: got_tr,
                ..
            },
        ) => {
            prop_assert_eq!(*violations, 0);
            prop_assert_eq!(*got_v, 0);
            if !close(*gap, *got_g, SIM_TOL) || !close(*throughput, *got_t, SIM_TOL) {
                return fail(format!(
                    "realization mismatch: direct gap {gap} tp {throughput}, served gap {got_g} tp {got_t}"
                ));
            }
            match (transition, got_tr) {
                (None, None) => Ok(()),
                (Some(a), Some(b)) if transition_close(a, b) => Ok(()),
                _ => fail("transition-cost mismatch".to_string()),
            }
        }
        (
            Expected::Schedule {
                period,
                throughput,
                trees,
            },
            Response::Schedule {
                period: got_p,
                throughput: got_t,
                trees: got_trees,
                ..
            },
        ) => {
            if close(*period, *got_p, SIM_TOL)
                && close(*throughput, *got_t, SIM_TOL)
                && *trees == got_trees.len()
            {
                Ok(())
            } else {
                fail(format!(
                    "schedule mismatch: direct ({period}, {throughput}, {trees} trees), served ({got_p}, {got_t}, {} trees)",
                    got_trees.len()
                ))
            }
        }
        (Expected::Transitions(entries), Response::Transitions { entries: got_e, .. }) => {
            prop_assert_eq!(entries.len(), got_e.len());
            for ((ka, ta), (kb, tb)) in entries.iter().zip(got_e) {
                if ka != kb || !transition_close(ta, tb) {
                    return fail("transition stream entry mismatch".to_string());
                }
            }
            Ok(())
        }
        (
            Expected::MultiSolved { period, rates },
            Response::MultiSolved {
                period: got_p,
                rates: got_r,
                ..
            },
        ) => {
            if !close(*period, *got_p, TOL) {
                return fail(format!(
                    "joint period mismatch: direct {period}, served {got_p}"
                ));
            }
            prop_assert_eq!(rates.len(), got_r.len());
            for (c, (a, b)) in rates.iter().zip(got_r).enumerate() {
                if !close(*a, *b, TOL) {
                    return fail(format!("commodity {c} rate mismatch: {a} vs {b}"));
                }
            }
            Ok(())
        }
        (
            Expected::MultiRealized {
                super_period,
                violations,
                gap,
                rates,
                rate_met,
                transition,
            },
            Response::MultiRealized {
                super_period: got_sp,
                violations: got_v,
                gap: got_g,
                rates: got_r,
                rate_met: got_m,
                transition: got_tr,
                ..
            },
        ) => {
            // A valid super-period realization never violates the one-port
            // model, on either path.
            prop_assert_eq!(*violations, 0);
            prop_assert_eq!(*got_v, 0);
            if !close(*super_period, *got_sp, SIM_TOL) || !close(*gap, *got_g, SIM_TOL) {
                return fail(format!(
                    "super-period mismatch: direct ({super_period}, gap {gap}), served ({got_sp}, gap {got_g})"
                ));
            }
            prop_assert_eq!(rates.len(), got_r.len());
            for (c, (a, b)) in rates.iter().zip(got_r).enumerate() {
                if !close(*a, *b, SIM_TOL) {
                    return fail(format!("commodity {c} simulated rate mismatch: {a} vs {b}"));
                }
            }
            prop_assert_eq!(rate_met, got_m);
            match (transition, got_tr) {
                (None, None) => Ok(()),
                (Some(a), Some(b)) if transition_close(a, b) => Ok(()),
                _ => fail("multi transition-cost mismatch".to_string()),
            }
        }
        _ => fail("response shape does not match the direct outcome".to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: served ≡ direct, for every shard count and
    /// batching tick.
    #[test]
    fn served_traces_match_direct_sessions(seed in 0u64..1_000_000_000_000) {
        let (_, requests) = random_trace(seed, 3, 28);
        // Oracle pass.
        let mut direct = Direct::new();
        let expected: Vec<Expected> = requests.iter().map(|r| direct.apply(r)).collect();
        // One server pass per (shards, tick) shape.
        for &(shards, tick) in CONFIGS {
            let server = Server::start(ServeConfig {
                shards,
                tick,
                ..ServeConfig::default()
            });
            let label = format!("shards={shards} tick={tick}");
            for (request, want) in requests.iter().zip(&expected) {
                // Requests travel as protocol lines, as over stdio.
                let line = server.call_line(&request.to_line());
                let response = Response::from_line(&line).map_err(|e| TestCaseError {
                    message: format!("{label}: malformed response '{line}': {e}"),
                })?;
                prop_assert_eq!(response.id(), request.id());
                check(&label, request, want, &response)?;
            }
            server.shutdown();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite invariant: interleaved multi-commodity traces — joint
    /// solves, super-period realizations, coalesced drift and ordinary
    /// single-commodity barriers mixed over shared-shape tenants — match
    /// direct sessions for every shard count and batching tick.
    #[test]
    fn served_multi_traces_match_direct_sessions(seed in 0u64..1_000_000_000_000) {
        let requests = random_multi_trace(seed, 20);
        let mut direct = Direct::new();
        let expected: Vec<Expected> = requests.iter().map(|r| direct.apply(r)).collect();
        for &(shards, tick) in CONFIGS {
            let server = Server::start(ServeConfig {
                shards,
                tick,
                ..ServeConfig::default()
            });
            let label = format!("multi shards={shards} tick={tick}");
            for (request, want) in requests.iter().zip(&expected) {
                let line = server.call_line(&request.to_line());
                let response = Response::from_line(&line).map_err(|e| TestCaseError {
                    message: format!("{label}: malformed response '{line}': {e}"),
                })?;
                prop_assert_eq!(response.id(), request.id());
                check(&label, request, want, &response)?;
            }
            let counters = server.shutdown();
            // The multi counters account for exactly the successful joint
            // barriers, independent of sharding and batching.
            let successes = expected
                .iter()
                .filter(|e| {
                    matches!(e, Expected::MultiSolved { .. } | Expected::MultiRealized { .. })
                })
                .count() as u64;
            prop_assert_eq!(counters.multi_solves + counters.multi_realizes, successes);
        }
    }
}
