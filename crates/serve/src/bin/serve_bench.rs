//! `serve_bench` — closed-loop load driver for the sharded session server.
//!
//! Spawns one client thread per shard (each driving only the sessions that
//! route to its shard, so every shard sees one deterministic request
//! stream), pushes batched drift traffic through the full line protocol,
//! and emits `BENCH_serve_baseline.json` (schema `pm-bench/serve/v1`).
//!
//! Two timed micro-phases measure the coalescing win directly on disjoint
//! warmed session populations:
//!
//! * **phase A (per-event)** — 8 × (edit, solve): every drift event pays a
//!   full re-solve;
//! * **phase B (batched)** — 8 edits then one solve: the same drift volume
//!   coalesced behind one barrier.
//!
//! `batch_speedup = phase_a_ms / phase_b_ms` is the artifact's headline
//! ratio (CI gates it at ≥ 2).
//!
//! Every response line is re-parsed; a line the protocol decoder rejects
//! counts as `malformed_responses` (CI gates at 0). All count fields are
//! deterministic; wall-clock fields are line-filtered by the CI
//! byte-compare, mirroring `solve_ms` in the other artifacts.
//!
//! ```text
//! serve_bench [--sessions N] [--rounds R] [--out PATH]
//! ```

use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use pm_core::report::HeuristicKind;
use pm_serve::{InstanceSpec, Request, Response, ServeConfig, Server};

const SCHEMA: &str = "pm-bench/serve/v1";
/// Drift events per burst in the main load loop.
const BURST: usize = 8;
/// Sessions driven through each timed micro-phase.
const PHASE_SESSIONS: usize = 64;

/// The two instance shapes tenants are spread over (exercises the per-shard
/// template arena with more than one key). Both keep every target reachable
/// when either relay is disabled.
fn shapes() -> Vec<InstanceSpec> {
    vec![
        InstanceSpec {
            nodes: 6,
            edges: vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 3, 1.5),
                (1, 4, 2.5),
                (2, 5, 1.8),
                (0, 3, 3.0),
                (2, 4, 2.2),
                (1, 5, 2.7),
                (0, 4, 3.5),
                (0, 5, 3.2),
            ],
            source: 0,
            targets: vec![3, 4, 5],
        },
        InstanceSpec {
            nodes: 5,
            edges: vec![
                (0, 1, 1.2),
                (0, 2, 1.7),
                (1, 3, 2.1),
                (2, 4, 1.4),
                (0, 3, 2.9),
                (0, 4, 2.6),
                (1, 4, 3.1),
            ],
            source: 0,
            targets: vec![3, 4],
        },
    ]
}

struct ClientStats {
    latencies_us: Vec<u64>,
    requests: u64,
    malformed: u64,
    overloaded: u64,
    errors: u64,
    transition_entries: u64,
}

impl ClientStats {
    fn new() -> ClientStats {
        ClientStats {
            latencies_us: Vec::new(),
            requests: 0,
            malformed: 0,
            overloaded: 0,
            errors: 0,
            transition_entries: 0,
        }
    }

    /// Round-trips one request through the line protocol, recording latency
    /// and well-formedness.
    fn call(&mut self, server: &Server, request: &Request) -> Option<Response> {
        let line = request.to_line();
        let start = Instant::now();
        let response_line = server.call_line(&line);
        let elapsed = start.elapsed().as_micros() as u64;
        self.requests += 1;
        self.latencies_us.push(elapsed);
        match Response::from_line(&response_line) {
            Ok(response) => {
                match &response {
                    Response::Overloaded { .. } => self.overloaded += 1,
                    Response::Error { .. } => self.errors += 1,
                    Response::Transitions { entries, .. } => {
                        self.transition_entries += entries.len() as u64;
                    }
                    _ => {}
                }
                Some(response)
            }
            Err(_) => {
                self.malformed += 1;
                None
            }
        }
    }
}

fn session_name(i: usize) -> String {
    format!("tenant-{i}")
}

/// The deterministic per-session load script for one round.
fn round_requests(i: usize, round: usize, spec: &InstanceSpec, next_id: &mut u64) -> Vec<Request> {
    let mut requests = Vec::with_capacity(BURST + 3);
    let session = session_name(i);
    let edge_count = spec.edges.len() as u32;
    let edge_a = (i as u32 + round as u32) % edge_count;
    let edge_b = (edge_a + 1) % edge_count;
    let mut id = || {
        *next_id += 1;
        *next_id
    };
    // Burst: 3 + 3 repeated edge edits (→ 2 net writes) and one
    // disable/enable flip pair on a relay (→ 1 net no-op write).
    for k in 0..3 {
        requests.push(Request::SetEdgeCost {
            id: id(),
            session: session.clone(),
            edge: edge_a,
            cost: 0.5 + ((i + round + k) % 17) as f64 * 0.25,
        });
        requests.push(Request::SetEdgeCost {
            id: id(),
            session: session.clone(),
            edge: edge_b,
            cost: 0.75 + ((i * 3 + round + k) % 13) as f64 * 0.3,
        });
    }
    let relay = 1 + (round % 2) as u32;
    requests.push(Request::DisableNode {
        id: id(),
        session: session.clone(),
        node: relay,
    });
    requests.push(Request::EnableNode {
        id: id(),
        session: session.clone(),
        node: relay,
    });
    // Barrier: one coalesced re-solve per burst.
    requests.push(Request::Solve {
        id: id(),
        session: session.clone(),
        kind: HeuristicKind::Scatter,
    });
    // A quarter of the tenants also re-realize and read back the schedule.
    if i.is_multiple_of(4) {
        requests.push(Request::ReRealize {
            id: id(),
            session: session.clone(),
            kind: HeuristicKind::Scatter,
        });
        requests.push(Request::QuerySchedule {
            id: id(),
            session,
            kind: HeuristicKind::Scatter,
        });
    }
    requests
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mut sessions = 1000usize;
    let mut rounds = 3usize;
    let mut out_path = "BENCH_serve_baseline.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sessions N");
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds R");
            }
            "--out" => {
                out_path = args.next().expect("--out PATH");
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: serve_bench [--sessions N] [--rounds R] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut config = ServeConfig::from_env();
    if std::env::var("PM_SERVE_COMPACT").is_err() {
        // The per-tenant journals of this workload are short (a handful of
        // coalesced writes per round); compact aggressively so the artifact
        // actually exercises the compaction path.
        config.compact_interval = 10;
    }
    eprintln!(
        "serve_bench: {sessions} sessions x {rounds} rounds, {} shards, tick {}, queue {}",
        config.shards, config.tick, config.queue_cap
    );
    let server = Server::start(config.clone());
    let shapes = shapes();

    // Partition tenants by the shard their name routes to, so each client
    // thread drives exactly one shard: per-shard request order — and with it
    // every counter — is deterministic regardless of thread scheduling.
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); config.shards];
    for i in 0..sessions {
        by_shard[server.shard_of(&session_name(i))].push(i);
    }

    // Phase 0: create + warmup solve, per shard in parallel.
    let stats = Mutex::new(ClientStats::new());
    let setup_start = Instant::now();
    std::thread::scope(|scope| {
        for shard_sessions in &by_shard {
            let server = &server;
            let shapes = &shapes;
            let stats = &stats;
            scope.spawn(move || {
                let mut local = ClientStats::new();
                let mut next_id = 0u64;
                for &i in shard_sessions {
                    let spec = &shapes[i % shapes.len()];
                    next_id += 1;
                    local.call(
                        server,
                        &Request::CreateSession {
                            id: next_id,
                            session: session_name(i),
                            spec: spec.clone(),
                            kinds: vec![HeuristicKind::Scatter],
                        },
                    );
                    next_id += 1;
                    local.call(
                        server,
                        &Request::Solve {
                            id: next_id,
                            session: session_name(i),
                            kind: HeuristicKind::Scatter,
                        },
                    );
                }
                // Setup latencies are not part of the load-phase percentiles;
                // only the counts are merged.
                let mut merged = stats.lock().unwrap();
                merged.requests += local.requests;
                merged.malformed += local.malformed;
                merged.overloaded += local.overloaded;
                merged.errors += local.errors;
            });
        }
    });
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;

    // Timed micro-phases on disjoint warmed populations (main thread,
    // closed loop). Phase A: every event pays a re-solve.
    let phase_count = PHASE_SESSIONS.min(sessions / 2);
    let mut phase_stats = ClientStats::new();
    let mut next_id = 10_000_000u64;
    let phase_a_start = Instant::now();
    for i in 0..phase_count {
        let spec = &shapes[i % shapes.len()];
        let edge_count = spec.edges.len() as u32;
        for k in 0..BURST {
            next_id += 1;
            phase_stats.call(
                &server,
                &Request::SetEdgeCost {
                    id: next_id,
                    session: session_name(i),
                    edge: (k as u32) % edge_count,
                    cost: 0.6 + ((i + k) % 11) as f64 * 0.2,
                },
            );
            next_id += 1;
            phase_stats.call(
                &server,
                &Request::Solve {
                    id: next_id,
                    session: session_name(i),
                    kind: HeuristicKind::Scatter,
                },
            );
        }
    }
    let phase_a_ms = phase_a_start.elapsed().as_secs_f64() * 1e3;

    // Phase B: the same drift volume coalesced behind one barrier.
    let phase_b_start = Instant::now();
    for j in 0..phase_count {
        let i = phase_count + j;
        let spec = &shapes[i % shapes.len()];
        let edge_count = spec.edges.len() as u32;
        for k in 0..BURST {
            next_id += 1;
            phase_stats.call(
                &server,
                &Request::SetEdgeCost {
                    id: next_id,
                    session: session_name(i),
                    edge: (k as u32) % edge_count,
                    cost: 0.6 + ((j + k) % 11) as f64 * 0.2,
                },
            );
        }
        next_id += 1;
        phase_stats.call(
            &server,
            &Request::Solve {
                id: next_id,
                session: session_name(i),
                kind: HeuristicKind::Scatter,
            },
        );
    }
    let phase_b_ms = phase_b_start.elapsed().as_secs_f64() * 1e3;
    let batch_speedup = if phase_b_ms > 0.0 {
        phase_a_ms / phase_b_ms
    } else {
        f64::INFINITY
    };

    // Main closed loop: every tenant gets `rounds` bursts; a quarter also
    // re-realize, read schedules, and stream transition logs.
    let load_start = Instant::now();
    std::thread::scope(|scope| {
        for (shard, shard_sessions) in by_shard.iter().enumerate() {
            let server = &server;
            let shapes = &shapes;
            let stats = &stats;
            scope.spawn(move || {
                let mut local = ClientStats::new();
                let mut next_id = 20_000_000u64 + (shard as u64) * 5_000_000;
                for round in 0..rounds {
                    for &i in shard_sessions {
                        let spec = &shapes[i % shapes.len()];
                        for request in round_requests(i, round, spec, &mut next_id) {
                            local.call(server, &request);
                        }
                    }
                }
                // Steady-state churn: re-realize the realizing tenants twice
                // more with no drift in between — consecutive packings of an
                // unchanged pool are where the shard basis cache pays off.
                for _ in 0..3 {
                    for &i in shard_sessions {
                        if i.is_multiple_of(4) {
                            next_id += 1;
                            local.call(
                                server,
                                &Request::ReRealize {
                                    id: next_id,
                                    session: session_name(i),
                                    kind: HeuristicKind::Scatter,
                                },
                            );
                        }
                    }
                }
                // Drain transition logs for the realizing tenants.
                for &i in shard_sessions {
                    if i.is_multiple_of(4) {
                        next_id += 1;
                        local.call(
                            server,
                            &Request::StreamTransitionCosts {
                                id: next_id,
                                session: session_name(i),
                            },
                        );
                    }
                }
                // Retire the tail 10% of this shard's tenants.
                let keep = shard_sessions.len() - shard_sessions.len() / 10;
                for &i in &shard_sessions[keep..] {
                    next_id += 1;
                    local.call(
                        server,
                        &Request::DestroySession {
                            id: next_id,
                            session: session_name(i),
                        },
                    );
                }
                let mut merged = stats.lock().unwrap();
                merged.latencies_us.extend(local.latencies_us);
                merged.requests += local.requests;
                merged.malformed += local.malformed;
                merged.overloaded += local.overloaded;
                merged.errors += local.errors;
                merged.transition_entries += local.transition_entries;
            });
        }
    });
    let load_elapsed = load_start.elapsed();

    let mut stats = stats.into_inner().unwrap();
    stats.requests += phase_stats.requests;
    stats.malformed += phase_stats.malformed;
    stats.overloaded += phase_stats.overloaded;
    stats.errors += phase_stats.errors;

    let counters = server.shutdown();
    let mut latencies = std::mem::take(&mut stats.latencies_us);
    latencies.sort_unstable();
    let load_requests = latencies.len() as u64;
    let events_per_sec = load_requests as f64 / load_elapsed.as_secs_f64();
    let elapsed_ms = load_elapsed.as_secs_f64() * 1e3;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"sessions\": {sessions},\n"));
    out.push_str(&format!("    \"rounds\": {rounds},\n"));
    out.push_str(&format!("    \"burst\": {BURST},\n"));
    out.push_str(&format!("    \"shards\": {},\n", config.shards));
    out.push_str(&format!("    \"tick\": {},\n", config.tick));
    out.push_str(&format!("    \"queue_cap\": {},\n", config.queue_cap));
    out.push_str(&format!(
        "    \"cache_capacity\": {},\n",
        match config.cache_capacity {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        }
    ));
    out.push_str(&format!(
        "    \"compact_interval\": {}\n",
        config.compact_interval
    ));
    out.push_str("  },\n");
    out.push_str("  \"counts\": {\n");
    out.push_str(&format!("    \"requests\": {},\n", counters.requests));
    out.push_str(&format!(
        "    \"sessions_created\": {},\n",
        counters.sessions_created
    ));
    out.push_str(&format!(
        "    \"sessions_destroyed\": {},\n",
        counters.sessions_destroyed
    ));
    out.push_str(&format!(
        "    \"sessions_live\": {},\n",
        counters.sessions_live
    ));
    out.push_str(&format!(
        "    \"drift_events\": {},\n",
        counters.drift_events
    ));
    out.push_str(&format!(
        "    \"coalesced_writes\": {},\n",
        counters.coalesced_writes
    ));
    out.push_str(&format!("    \"flushes\": {},\n", counters.flushes));
    out.push_str(&format!(
        "    \"coalescing_ratio\": {},\n",
        json_f64(counters.coalescing_ratio())
    ));
    out.push_str(&format!("    \"shed\": {},\n", counters.shed));
    out.push_str(&format!(
        "    \"overloaded_responses\": {},\n",
        stats.overloaded
    ));
    out.push_str(&format!(
        "    \"malformed_responses\": {},\n",
        stats.malformed
    ));
    out.push_str(&format!("    \"error_responses\": {},\n", stats.errors));
    out.push_str(&format!(
        "    \"template_builds\": {},\n",
        counters.template_builds
    ));
    out.push_str(&format!(
        "    \"template_hits\": {},\n",
        counters.template_hits
    ));
    out.push_str(&format!("    \"solves\": {},\n", counters.solves));
    out.push_str(&format!(
        "    \"realizations\": {},\n",
        counters.realizations
    ));
    out.push_str(&format!(
        "    \"degraded_solves\": {},\n",
        counters.degraded_solves
    ));
    out.push_str(&format!("    \"warm_hits\": {},\n", counters.warm_hits));
    out.push_str(&format!("    \"warm_misses\": {},\n", counters.warm_misses));
    out.push_str(&format!(
        "    \"warm_hit_rate\": {},\n",
        json_f64(counters.warm_hit_rate())
    ));
    out.push_str(&format!("    \"cache_hits\": {},\n", counters.cache_hits));
    out.push_str(&format!(
        "    \"cache_misses\": {},\n",
        counters.cache_misses
    ));
    out.push_str(&format!(
        "    \"cache_evictions\": {},\n",
        counters.cache_evictions
    ));
    out.push_str(&format!(
        "    \"cache_hit_rate\": {},\n",
        json_f64(counters.cache_hit_rate())
    ));
    out.push_str(&format!("    \"compactions\": {},\n", counters.compactions));
    out.push_str(&format!(
        "    \"journal_entries_dropped\": {},\n",
        counters.journal_entries_dropped
    ));
    out.push_str(&format!(
        "    \"transition_entries\": {},\n",
        stats.transition_entries
    ));
    out.push_str(&format!("    \"server_errors\": {}\n", counters.errors));
    out.push_str("  },\n");
    out.push_str("  \"perf\": {\n");
    out.push_str(&format!("    \"setup_ms\": {},\n", json_f64(setup_ms)));
    out.push_str(&format!("    \"elapsed_ms\": {},\n", json_f64(elapsed_ms)));
    out.push_str(&format!(
        "    \"events_per_sec\": {},\n",
        json_f64(events_per_sec)
    ));
    out.push_str(&format!(
        "    \"p50_us\": {},\n",
        json_f64(percentile(&latencies, 0.50))
    ));
    out.push_str(&format!(
        "    \"p95_us\": {},\n",
        json_f64(percentile(&latencies, 0.95))
    ));
    out.push_str(&format!(
        "    \"p99_us\": {},\n",
        json_f64(percentile(&latencies, 0.99))
    ));
    out.push_str(&format!("    \"phase_a_ms\": {},\n", json_f64(phase_a_ms)));
    out.push_str(&format!("    \"phase_b_ms\": {},\n", json_f64(phase_b_ms)));
    out.push_str(&format!(
        "    \"batch_speedup\": {}\n",
        json_f64(batch_speedup)
    ));
    out.push_str("  }\n");
    out.push_str("}\n");

    let mut file = std::fs::File::create(&out_path).expect("create artifact");
    file.write_all(out.as_bytes()).expect("write artifact");
    eprintln!(
        "serve_bench: {load_requests} load requests in {:.1} ms ({:.0} req/s), coalescing {:.2}, warm {:.2}, cache {:.2}, speedup {:.2} -> {out_path}",
        elapsed_ms,
        events_per_sec,
        counters.coalescing_ratio(),
        counters.warm_hit_rate(),
        counters.cache_hit_rate(),
        batch_speedup
    );
}
