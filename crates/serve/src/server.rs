//! The sharded multi-tenant session server.
//!
//! Sessions are hash-partitioned over a fixed pool of worker threads; each
//! shard owns its tenants outright (no locks on the data plane) and serves
//! one bounded MPSC queue. Three perf mechanisms live here:
//!
//! * **Drift coalescing** — edge-cost and node churn is acknowledged
//!   eagerly (after static validation) into per-tenant pending buffers and
//!   only applied — last-write-wins per edge, net flips per node — when a
//!   barrier request (solve/realize/query/stream) arrives or the buffer
//!   reaches the configured tick. A burst of `k` edits on one edge costs a
//!   single coefficient sweep at the next solve instead of `k`.
//! * **Template sharing** — formulation construction is memoized per shard
//!   in an arena keyed by the instance-shape fingerprint: the thousandth
//!   tenant on a popular shape clones pre-built masked LPs instead of
//!   re-deriving them.
//! * **Shard-level warm-start cache** — a bounded LRU of packing-LP bases
//!   swapped into each tenant around realizations, so tenants with similar
//!   shapes reuse each other's bases.
//!
//! Admission control is a bounded queue per shard: when it is full the
//! request is rejected with an `overloaded` response instead of queueing
//! unboundedly. Tenant journals are compacted in place whenever they exceed
//! the configured interval, bounding per-tenant memory under sustained
//! drift.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pm_core::multi::Commodity;
use pm_core::report::HeuristicKind;
use pm_core::session::{Session, SessionTemplates, TransitionCost};
use pm_lp::WarmStartCache;
use pm_platform::graph::{EdgeId, NodeId};

use crate::protocol::{
    error_code, kind_key, Counters, Fnv, Request, Response, TransitionDesc, TreeDesc,
};

/// Server configuration. Environment knobs: `PM_SERVE_SHARDS`,
/// `PM_SERVE_TICK`, `PM_SERVE_QUEUE_CAP`, `PM_SERVE_CACHE_CAP` (0 =
/// unbounded) and `PM_SERVE_COMPACT` (0 = never compact).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard worker threads (≥ 1).
    pub shards: usize,
    /// Pending drift events per tenant that force a flush even without a
    /// barrier request (≥ 1).
    pub tick: usize,
    /// Bounded depth of each shard's request queue; a full queue sheds with
    /// `overloaded`.
    pub queue_cap: usize,
    /// Capacity of each shard's shared packing-basis cache (`None` =
    /// unbounded).
    pub cache_capacity: Option<usize>,
    /// Compact a tenant's journal after a barrier once it holds at least
    /// this many events (0 = never).
    pub compact_interval: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            tick: 8,
            queue_cap: 256,
            cache_capacity: Some(1024),
            compact_interval: 64,
        }
    }
}

impl ServeConfig {
    /// Reads the `PM_SERVE_*` environment knobs on top of the defaults.
    pub fn from_env() -> ServeConfig {
        let mut config = ServeConfig::default();
        if let Some(v) = env_usize("PM_SERVE_SHARDS") {
            config.shards = v.max(1);
        }
        if let Some(v) = env_usize("PM_SERVE_TICK") {
            config.tick = v.max(1);
        }
        if let Some(v) = env_usize("PM_SERVE_QUEUE_CAP") {
            config.queue_cap = v.max(1);
        }
        if let Some(v) = env_usize("PM_SERVE_CACHE_CAP") {
            config.cache_capacity = if v == 0 { None } else { Some(v) };
        }
        if let Some(v) = env_usize("PM_SERVE_COMPACT") {
            config.compact_interval = v;
        }
        config
    }

    fn normalized(mut self) -> ServeConfig {
        self.shards = self.shards.max(1);
        self.tick = self.tick.max(1);
        self.queue_cap = self.queue_cap.max(1);
        self
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

enum Job {
    Call(Request, SyncSender<Response>),
    Snapshot(SyncSender<Counters>),
    /// Test hook: park the shard for a duration so admission control can be
    /// exercised deterministically.
    Stall(Duration),
}

/// One tenant: its session plus the coalescing buffers and the drained
/// transition-cost log.
struct Tenant {
    session: Session,
    /// The multi-commodity workload this tenant was created with
    /// (`create_multi_session`); `None` for single-commodity sessions.
    commodities: Option<Vec<Commodity>>,
    /// Pending edge-cost writes, last-write-wins per edge.
    pending_costs: std::collections::BTreeMap<u32, f64>,
    /// Pending node-mask flips, net value per node (`true` = enabled).
    pending_nodes: std::collections::BTreeMap<u32, bool>,
    /// Raw drift events admitted since the last flush (drives the tick).
    pending_events: usize,
    /// Transition costs accumulated by realizations, drained by
    /// `stream_transition_costs`.
    transitions: Vec<(HeuristicKind, TransitionCost)>,
}

/// A shard's whole world. Public within the crate so tests can drive it
/// synchronously without threads.
pub(crate) struct ShardState {
    config: ServeConfig,
    sessions: HashMap<String, Tenant>,
    /// Formulation-template arena keyed by instance-shape fingerprint.
    templates: HashMap<u64, SessionTemplates>,
    /// Shared packing-basis cache, swapped into tenants around realizations.
    cache: WarmStartCache,
    counters: Counters,
}

impl ShardState {
    pub(crate) fn new(config: ServeConfig) -> ShardState {
        let mut cache = WarmStartCache::new();
        cache.set_capacity(config.cache_capacity);
        ShardState {
            config,
            sessions: HashMap::new(),
            templates: HashMap::new(),
            cache,
            counters: Counters::default(),
        }
    }

    /// Counters snapshot including the live cache and session gauges.
    pub(crate) fn snapshot(&self) -> Counters {
        let mut c = self.counters;
        c.sessions_live = self.sessions.len() as u64;
        c.cache_hits = self.cache.hits;
        c.cache_misses = self.cache.misses;
        c.cache_evictions = self.cache.evictions;
        c
    }

    pub(crate) fn handle(&mut self, request: Request) -> Response {
        self.counters.requests += 1;
        match request {
            Request::CreateSession {
                id,
                session,
                spec,
                kinds,
            } => {
                if self.sessions.contains_key(&session) {
                    return self.error(
                        id,
                        "session_exists",
                        format!("session '{session}' already exists"),
                    );
                }
                let instance = match spec.build() {
                    Ok(instance) => instance,
                    Err(message) => return self.error(id, "invalid_argument", message),
                };
                let templates = match self.templates.entry(spec.fingerprint()) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        self.counters.template_hits += 1;
                        o.into_mut()
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        self.counters.template_builds += 1;
                        v.insert(SessionTemplates::new())
                    }
                };
                for &kind in &kinds {
                    templates.ensure_for(&instance, kind);
                }
                let tenant = Tenant {
                    session: Session::with_templates(instance, templates),
                    commodities: None,
                    pending_costs: Default::default(),
                    pending_nodes: Default::default(),
                    pending_events: 0,
                    transitions: Vec::new(),
                };
                self.sessions.insert(session, tenant);
                self.counters.sessions_created += 1;
                Response::Ok { id }
            }
            Request::CreateMultiSession { id, session, spec } => {
                if self.sessions.contains_key(&session) {
                    return self.error(
                        id,
                        "session_exists",
                        format!("session '{session}' already exists"),
                    );
                }
                let (instance, commodities) = match spec.build() {
                    Ok(built) => built,
                    Err(message) => return self.error(id, "invalid_argument", message),
                };
                // Same arena as single-commodity tenants (the fingerprint is
                // domain-separated), so same-workload tenants share the base
                // instance's pre-built formulation templates.
                let templates = match self.templates.entry(spec.fingerprint()) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        self.counters.template_hits += 1;
                        o.into_mut()
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        self.counters.template_builds += 1;
                        v.insert(SessionTemplates::new())
                    }
                };
                let tenant = Tenant {
                    session: Session::with_templates(instance, templates),
                    commodities: Some(commodities),
                    pending_costs: Default::default(),
                    pending_nodes: Default::default(),
                    pending_events: 0,
                    transitions: Vec::new(),
                };
                self.sessions.insert(session, tenant);
                self.counters.sessions_created += 1;
                Response::Ok { id }
            }
            Request::SetEdgeCost {
                id,
                session,
                edge,
                cost,
            } => {
                let tick = self.config.tick;
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                // Static validation mirrors `Session::set_edge_cost` /
                // `Platform::set_cost` so the deferred apply cannot fail.
                if (edge as usize) >= tenant.session.instance().platform.edge_count() {
                    return self.error(id, "invalid_argument", format!("unknown edge e{edge}"));
                }
                if !cost.is_finite() || cost <= 0.0 {
                    return self.error(
                        id,
                        "invalid_argument",
                        format!("edge cost must be positive and finite, got {cost}"),
                    );
                }
                tenant.pending_costs.insert(edge, cost);
                tenant.pending_events += 1;
                self.counters.drift_events += 1;
                if tenant.pending_events >= tick {
                    Self::flush(tenant, &mut self.counters);
                }
                Response::Ok { id }
            }
            Request::DisableNode { id, session, node } => {
                let tick = self.config.tick;
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                let instance = tenant.session.instance();
                if (node as usize) >= instance.platform.node_count() {
                    return self.error(id, "invalid_argument", format!("unknown node n{node}"));
                }
                if NodeId(node) == instance.source {
                    return self.error(
                        id,
                        "invalid_argument",
                        format!("cannot disable the source n{node}"),
                    );
                }
                if instance.is_target(NodeId(node)) {
                    return self.error(
                        id,
                        "invalid_argument",
                        format!("cannot disable target n{node}"),
                    );
                }
                tenant.pending_nodes.insert(node, false);
                tenant.pending_events += 1;
                self.counters.drift_events += 1;
                if tenant.pending_events >= tick {
                    Self::flush(tenant, &mut self.counters);
                }
                Response::Ok { id }
            }
            Request::EnableNode { id, session, node } => {
                let tick = self.config.tick;
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                if (node as usize) >= tenant.session.instance().platform.node_count() {
                    return self.error(id, "invalid_argument", format!("unknown node n{node}"));
                }
                tenant.pending_nodes.insert(node, true);
                tenant.pending_events += 1;
                self.counters.drift_events += 1;
                if tenant.pending_events >= tick {
                    Self::flush(tenant, &mut self.counters);
                }
                Response::Ok { id }
            }
            Request::Solve { id, session, kind } => {
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                Self::flush(tenant, &mut self.counters);
                match tenant.session.solve(kind) {
                    Ok(solve) => {
                        self.counters.solves += 1;
                        self.counters.warm_hits += solve.stats.warm_hits;
                        self.counters.warm_misses += solve.stats.warm_misses;
                        self.counters.degraded_solves += solve.stats.degraded_solves;
                        let response = Response::Solved {
                            id,
                            kind,
                            period: solve.result.period,
                            throughput: solve.result.throughput,
                            degraded: solve.stats.degraded_solves > 0,
                        };
                        self.maybe_compact(&session);
                        response
                    }
                    Err(e) => self.error(id, error_code(&e), e.to_string()),
                }
            }
            Request::ReRealize { id, session, kind } => {
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                Self::flush(tenant, &mut self.counters);
                // Swap the shard cache in so the packing LPs of all tenants
                // share bases; swap it back out immediately after.
                tenant.session.swap_cache(&mut self.cache);
                let outcome = tenant.session.re_realize(kind);
                tenant.session.swap_cache(&mut self.cache);
                match outcome {
                    Ok(re) => {
                        self.counters.realizations += 1;
                        self.counters.warm_hits += re.stats.warm_hits;
                        self.counters.warm_misses += re.stats.warm_misses;
                        self.counters.degraded_solves += re.stats.degraded_solves;
                        if let Some(t) = re.transition {
                            tenant.transitions.push((kind, t));
                        }
                        let r = &re.realization;
                        let response = Response::Realized {
                            id,
                            kind,
                            violations: r.simulated.one_port_violations as u64,
                            gap: r.realization_gap,
                            throughput: r.simulated.throughput,
                            trees: r.tree_set.len() as u64,
                            transition: re.transition.as_ref().map(TransitionDesc::from_cost),
                        };
                        self.maybe_compact(&session);
                        response
                    }
                    Err(e) => self.error(id, error_code(&e), e.to_string()),
                }
            }
            Request::SolveMulti { id, session } => {
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                let Some(commodities) = tenant.commodities.clone() else {
                    return self.error(
                        id,
                        "not_multi",
                        format!("session '{session}' was not created with create_multi_session"),
                    );
                };
                Self::flush(tenant, &mut self.counters);
                match tenant.session.solve_multi(&commodities) {
                    Ok(solve) => {
                        self.counters.multi_solves += 1;
                        self.counters.warm_hits += solve.stats.warm_hits;
                        self.counters.warm_misses += solve.stats.warm_misses;
                        self.counters.degraded_solves += solve.stats.degraded_solves;
                        let response = Response::MultiSolved {
                            id,
                            period: solve.flow.period,
                            rates: solve.flow.rates.clone(),
                        };
                        self.maybe_compact(&session);
                        response
                    }
                    Err(e) => self.error(id, error_code(&e), e.to_string()),
                }
            }
            Request::ReRealizeMulti { id, session } => {
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                if tenant.commodities.is_none() {
                    return self.error(
                        id,
                        "not_multi",
                        format!("session '{session}' was not created with create_multi_session"),
                    );
                }
                Self::flush(tenant, &mut self.counters);
                tenant.session.swap_cache(&mut self.cache);
                let outcome = tenant.session.re_realize_multi();
                tenant.session.swap_cache(&mut self.cache);
                match outcome {
                    Ok(re) => {
                        self.counters.multi_realizes += 1;
                        self.counters.warm_hits += re.stats.warm_hits;
                        self.counters.warm_misses += re.stats.warm_misses;
                        self.counters.degraded_solves += re.stats.degraded_solves;
                        let r = &re.realization;
                        // Each commodity meets its rate when the replayed
                        // super-period sustains at least the LP's claim.
                        let lp_rates: Vec<f64> = tenant
                            .session
                            .multi_solution()
                            .map(|(_, flow)| flow.rates.clone())
                            .unwrap_or_else(|| r.certified_rates.clone());
                        let rate_met = r
                            .simulated_rates
                            .iter()
                            .zip(&lp_rates)
                            .map(|(&sim, &lp)| sim >= lp - 1e-6)
                            .collect();
                        let response = Response::MultiRealized {
                            id,
                            super_period: r.super_period,
                            violations: r.simulated.one_port_violations as u64,
                            gap: r.realization_gap,
                            rates: r.simulated_rates.clone(),
                            rate_met,
                            trees: r.tree_sets.iter().map(|t| t.len() as u64).sum(),
                            transition: re.transition.as_ref().map(TransitionDesc::from_cost),
                        };
                        self.maybe_compact(&session);
                        response
                    }
                    Err(e) => self.error(id, error_code(&e), e.to_string()),
                }
            }
            Request::QuerySchedule { id, session, kind } => {
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                Self::flush(tenant, &mut self.counters);
                match tenant.session.realization_for(kind) {
                    Some(r) => Response::Schedule {
                        id,
                        kind,
                        period: r.achieved_period,
                        throughput: r.packed_throughput,
                        trees: r
                            .tree_set
                            .trees()
                            .iter()
                            .zip(r.tree_set.weights())
                            .map(|(tree, &weight)| TreeDesc {
                                weight,
                                edges: tree.edges().iter().map(|e| e.0).collect(),
                            })
                            .collect(),
                    },
                    None => self.error(
                        id,
                        "no_schedule",
                        format!("session has no realization for kind '{}'", kind_key(kind)),
                    ),
                }
            }
            Request::StreamTransitionCosts { id, session } => {
                let Some(tenant) = self.sessions.get_mut(&session) else {
                    return self.unknown_session(id, &session);
                };
                Self::flush(tenant, &mut self.counters);
                let entries = tenant
                    .transitions
                    .drain(..)
                    .map(|(k, t)| (k, TransitionDesc::from_cost(&t)))
                    .collect();
                Response::Transitions { id, entries }
            }
            Request::DestroySession { id, session } => {
                if self.sessions.remove(&session).is_none() {
                    return self.unknown_session(id, &session);
                }
                self.counters.sessions_destroyed += 1;
                Response::Ok { id }
            }
            // Counters requests are aggregated at the server level and never
            // reach a shard; answer anyway for completeness (single-shard
            // direct use in tests).
            Request::Counters { id } => Response::Counters {
                id,
                counters: self.snapshot(),
            },
        }
    }

    /// Applies the pending coalesced writes to the tenant's session. All
    /// writes were validated at admission, so failures are bugs.
    fn flush(tenant: &mut Tenant, counters: &mut Counters) {
        if tenant.pending_events == 0 {
            return;
        }
        let costs = std::mem::take(&mut tenant.pending_costs);
        let nodes = std::mem::take(&mut tenant.pending_nodes);
        let mut applied = 0u64;
        for (edge, cost) in costs {
            tenant
                .session
                .set_edge_cost(EdgeId(edge), cost)
                .expect("edge write was validated at admission");
            applied += 1;
        }
        for (node, enable) in nodes {
            if enable {
                tenant
                    .session
                    .enable_node(NodeId(node))
                    .expect("node write was validated at admission");
            } else {
                tenant
                    .session
                    .disable_node(NodeId(node))
                    .expect("node write was validated at admission");
            }
            applied += 1;
        }
        counters.coalesced_writes += applied;
        counters.flushes += 1;
        tenant.pending_events = 0;
    }

    fn maybe_compact(&mut self, session: &str) {
        if self.config.compact_interval == 0 {
            return;
        }
        let Some(tenant) = self.sessions.get_mut(session) else {
            return;
        };
        if tenant.session.journal().len() >= self.config.compact_interval {
            let dropped = tenant.session.compact_journal();
            if dropped > 0 {
                self.counters.compactions += 1;
                self.counters.journal_entries_dropped += dropped as u64;
            }
        }
    }

    fn unknown_session(&mut self, id: u64, session: &str) -> Response {
        self.error(
            id,
            "unknown_session",
            format!("no session named '{session}'"),
        )
    }

    fn error(&mut self, id: u64, code: &str, message: String) -> Response {
        self.counters.errors += 1;
        Response::Error {
            id,
            code: code.to_string(),
            message,
        }
    }
}

/// The sharded server: a fixed worker pool behind bounded queues.
pub struct Server {
    config: ServeConfig,
    senders: Vec<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shed: Arc<AtomicU64>,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(config: ServeConfig) -> Server {
        let config = config.normalized();
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel::<Job>(config.queue_cap);
            let shard_config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pm-serve-shard-{shard}"))
                    .spawn(move || run_shard(shard_config, rx))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        Server {
            config,
            senders,
            workers,
            shed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The configuration the server was started with (post-normalization).
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shard a session name routes to.
    pub fn shard_of(&self, session: &str) -> usize {
        let mut h = Fnv::new();
        h.write_bytes(session.as_bytes());
        (h.finish() % self.senders.len() as u64) as usize
    }

    /// Submits a request without blocking on the response. If the target
    /// shard's queue is full the returned channel already holds an
    /// `Overloaded` response (and the shed counter is bumped).
    pub fn submit(&self, request: Request) -> Receiver<Response> {
        let id = request.id();
        match request.session() {
            Some(session) => {
                let shard = self.shard_of(session);
                let (reply_tx, reply_rx) = sync_channel(1);
                match self.senders[shard].try_send(Job::Call(request, reply_tx)) {
                    Ok(()) => reply_rx,
                    Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        let (tx, rx) = sync_channel(1);
                        let _ = tx.send(Response::Overloaded { id });
                        rx
                    }
                }
            }
            None => {
                // Server-wide request: aggregate synchronously.
                let counters = self.counters();
                let (tx, rx) = sync_channel(1);
                let _ = tx.send(Response::Counters { id, counters });
                rx
            }
        }
    }

    /// Blocking request/response. Unlike [`Server::submit`] this *waits* for
    /// a queue slot instead of shedding, which keeps closed-loop callers
    /// lossless.
    pub fn call(&self, request: Request) -> Response {
        let id = request.id();
        match request.session() {
            Some(session) => {
                let shard = self.shard_of(session);
                let (reply_tx, reply_rx) = sync_channel(1);
                if self.senders[shard]
                    .send(Job::Call(request, reply_tx))
                    .is_err()
                {
                    return Response::Error {
                        id,
                        code: "shutdown".to_string(),
                        message: "shard worker has exited".to_string(),
                    };
                }
                reply_rx.recv().unwrap_or(Response::Error {
                    id,
                    code: "shutdown".to_string(),
                    message: "shard worker has exited".to_string(),
                })
            }
            None => Response::Counters {
                id,
                counters: self.counters(),
            },
        }
    }

    /// Parses one request line, executes it, and returns the response line.
    /// Malformed lines get an `invalid_request` error with id 0.
    pub fn call_line(&self, line: &str) -> String {
        match Request::from_line(line) {
            Ok(request) => self.call(request).to_line(),
            Err(message) => Response::Error {
                id: 0,
                code: "invalid_request".to_string(),
                message,
            }
            .to_line(),
        }
    }

    /// Aggregated counters over all shards plus server-level shedding.
    pub fn counters(&self) -> Counters {
        let mut total = Counters::default();
        let mut pending = Vec::new();
        for tx in &self.senders {
            let (reply_tx, reply_rx) = sync_channel(1);
            if tx.send(Job::Snapshot(reply_tx)).is_ok() {
                pending.push(reply_rx);
            }
        }
        for rx in pending {
            if let Ok(snapshot) = rx.recv() {
                total.add(&snapshot);
            }
        }
        total.shed += self.shed.load(Ordering::Relaxed);
        total
    }

    /// Test hook: parks one shard worker so its queue can be filled
    /// deterministically.
    #[doc(hidden)]
    pub fn stall_shard(&self, shard: usize, millis: u64) {
        let _ = self.senders[shard].send(Job::Stall(Duration::from_millis(millis)));
    }

    /// Drains the workers and returns the final counters.
    pub fn shutdown(mut self) -> Counters {
        let counters = self.counters();
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        counters
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn run_shard(config: ServeConfig, rx: Receiver<Job>) {
    let mut state = ShardState::new(config);
    while let Ok(job) = rx.recv() {
        match job {
            Job::Call(request, reply) => {
                let response = state.handle(request);
                let _ = reply.send(response);
            }
            Job::Snapshot(reply) => {
                let _ = reply.send(state.snapshot());
            }
            Job::Stall(duration) => std::thread::sleep(duration),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CommoditySpec, InstanceSpec, MultiSpec};

    fn spec() -> InstanceSpec {
        // 0 → {1,2} relays, targets {3,4,5}; enough redundancy that any one
        // relay can be disabled without disconnecting a target.
        InstanceSpec {
            nodes: 6,
            edges: vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 3, 1.5),
                (1, 4, 2.5),
                (2, 5, 1.8),
                (0, 3, 3.0),
                (2, 4, 2.2),
                (1, 5, 2.7),
                (0, 4, 3.5),
                (0, 5, 3.2),
            ],
            source: 0,
            targets: vec![3, 4, 5],
        }
    }

    fn create(id: u64, session: &str) -> Request {
        Request::CreateSession {
            id,
            session: session.to_string(),
            spec: spec(),
            kinds: vec![HeuristicKind::Scatter],
        }
    }

    #[test]
    fn drift_is_coalesced_to_net_writes() {
        let mut shard = ShardState::new(ServeConfig {
            shards: 1,
            tick: 1000,
            ..ServeConfig::default()
        });
        assert!(matches!(shard.handle(create(1, "t")), Response::Ok { .. }));
        // 10 writes on one edge, 4 flips on one node → 2 net writes.
        for i in 0..10u64 {
            let r = shard.handle(Request::SetEdgeCost {
                id: 10 + i,
                session: "t".into(),
                edge: 0,
                cost: 1.0 + i as f64 * 0.1,
            });
            assert!(matches!(r, Response::Ok { .. }));
        }
        for i in 0..2 {
            shard.handle(Request::DisableNode {
                id: 30 + i,
                session: "t".into(),
                node: 2,
            });
            shard.handle(Request::EnableNode {
                id: 40 + i,
                session: "t".into(),
                node: 2,
            });
        }
        let c = shard.snapshot();
        assert_eq!(c.drift_events, 14);
        assert_eq!(c.coalesced_writes, 0, "no barrier yet");
        let solved = shard.handle(Request::Solve {
            id: 50,
            session: "t".into(),
            kind: HeuristicKind::Scatter,
        });
        let Response::Solved { period, .. } = solved else {
            panic!("expected solve, got {solved:?}");
        };
        let c = shard.snapshot();
        assert_eq!(c.coalesced_writes, 2);
        assert_eq!(c.flushes, 1);
        assert!(c.coalescing_ratio() > 6.9);

        // The coalesced result matches a direct session given the same net
        // state: edge 0 at its final cost, node 2 enabled.
        let mut direct = Session::new(spec().build().unwrap());
        direct.set_edge_cost(EdgeId(0), 1.9).unwrap();
        let expected = direct.solve(HeuristicKind::Scatter).unwrap();
        assert!(
            (period - expected.result.period).abs() <= 1e-9,
            "served {period} vs direct {}",
            expected.result.period
        );
    }

    #[test]
    fn tick_forces_a_flush_without_a_barrier() {
        let mut shard = ShardState::new(ServeConfig {
            tick: 3,
            ..ServeConfig::default()
        });
        shard.handle(create(1, "t"));
        for i in 0..3u64 {
            shard.handle(Request::SetEdgeCost {
                id: 2 + i,
                session: "t".into(),
                edge: 1,
                cost: 2.0 + i as f64,
            });
        }
        let c = shard.snapshot();
        assert_eq!(c.flushes, 1, "third event hits the tick");
        assert_eq!(c.coalesced_writes, 1);
    }

    #[test]
    fn invalid_drift_is_rejected_eagerly() {
        let mut shard = ShardState::new(ServeConfig::default());
        shard.handle(create(1, "t"));
        let cases = vec![
            Request::SetEdgeCost {
                id: 2,
                session: "t".into(),
                edge: 99,
                cost: 1.0,
            },
            Request::SetEdgeCost {
                id: 3,
                session: "t".into(),
                edge: 0,
                cost: -1.0,
            },
            Request::SetEdgeCost {
                id: 4,
                session: "t".into(),
                edge: 0,
                cost: f64::NAN,
            },
            Request::DisableNode {
                id: 5,
                session: "t".into(),
                node: 0,
            },
            Request::DisableNode {
                id: 6,
                session: "t".into(),
                node: 3,
            },
            Request::DisableNode {
                id: 7,
                session: "t".into(),
                node: 42,
            },
        ];
        for request in cases {
            let response = shard.handle(request);
            let Response::Error { code, .. } = &response else {
                panic!("expected error, got {response:?}");
            };
            assert_eq!(code, "invalid_argument");
        }
        assert_eq!(shard.snapshot().drift_events, 0);
        assert_eq!(shard.snapshot().errors, 6);
    }

    #[test]
    fn templates_are_shared_across_same_shape_tenants() {
        let mut shard = ShardState::new(ServeConfig::default());
        shard.handle(create(1, "a"));
        shard.handle(create(2, "b"));
        shard.handle(create(3, "c"));
        let c = shard.snapshot();
        assert_eq!(c.template_builds, 1);
        assert_eq!(c.template_hits, 2);
        // All three sessions still solve.
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let r = shard.handle(Request::Solve {
                id: 10 + i as u64,
                session: name.to_string(),
                kind: HeuristicKind::Scatter,
            });
            assert!(matches!(r, Response::Solved { .. }), "{r:?}");
        }
    }

    #[test]
    fn journals_are_compacted_under_sustained_drift() {
        let mut shard = ShardState::new(ServeConfig {
            tick: 4,
            compact_interval: 6,
            ..ServeConfig::default()
        });
        shard.handle(create(1, "t"));
        let mut id = 10;
        for round in 0..6u64 {
            for i in 0..4u64 {
                shard.handle(Request::SetEdgeCost {
                    id,
                    session: "t".into(),
                    edge: (i % 3) as u32,
                    cost: 1.0 + round as f64 + i as f64 * 0.25,
                });
                id += 1;
            }
            let r = shard.handle(Request::Solve {
                id,
                session: "t".into(),
                kind: HeuristicKind::Scatter,
            });
            id += 1;
            assert!(matches!(r, Response::Solved { .. }), "{r:?}");
        }
        let c = shard.snapshot();
        assert!(c.compactions >= 1, "compactions = {}", c.compactions);
        assert!(
            c.journal_entries_dropped >= 1,
            "dropped = {}",
            c.journal_entries_dropped
        );
        // The tenant journal stays bounded well below raw event volume.
        let journal_len = shard.sessions.get("t").unwrap().session.journal().len();
        assert!(journal_len < 24, "journal holds {journal_len} events");
    }

    #[test]
    fn shard_cache_is_shared_across_tenants() {
        let mut shard = ShardState::new(ServeConfig::default());
        shard.handle(create(1, "a"));
        shard.handle(create(2, "b"));
        for (i, name) in ["a", "b"].iter().enumerate() {
            shard.handle(Request::Solve {
                id: 10 + i as u64,
                session: name.to_string(),
                kind: HeuristicKind::Scatter,
            });
            let r = shard.handle(Request::ReRealize {
                id: 20 + i as u64,
                session: name.to_string(),
                kind: HeuristicKind::Scatter,
            });
            assert!(matches!(r, Response::Realized { .. }), "{r:?}");
        }
        let c = shard.snapshot();
        assert!(
            c.cache_hits > 0,
            "second tenant's packing should hit the shard cache: {c:?}"
        );
    }

    fn multi_spec() -> MultiSpec {
        // The same platform as `spec()` carrying two concurrent demands:
        // the original multicast at 4× rate plus a small 1→{3,4} flow.
        MultiSpec {
            nodes: 6,
            edges: spec().edges,
            commodities: vec![
                CommoditySpec {
                    source: 0,
                    targets: vec![3, 4, 5],
                    demand: 4.0,
                },
                CommoditySpec {
                    source: 1,
                    targets: vec![3, 4],
                    demand: 1.0,
                },
            ],
        }
    }

    #[test]
    fn multi_sessions_solve_and_realize_with_drift_coalescing() {
        let mut shard = ShardState::new(ServeConfig {
            tick: 1000,
            ..ServeConfig::default()
        });
        let r = shard.handle(Request::CreateMultiSession {
            id: 1,
            session: "m".into(),
            spec: multi_spec(),
        });
        assert!(matches!(r, Response::Ok { .. }), "{r:?}");

        // Buffered drift is flushed at the solve_multi barrier.
        for i in 0..4u64 {
            let r = shard.handle(Request::SetEdgeCost {
                id: 2 + i,
                session: "m".into(),
                edge: 0,
                cost: 1.0 + i as f64 * 0.2,
            });
            assert!(matches!(r, Response::Ok { .. }));
        }
        let solved = shard.handle(Request::SolveMulti {
            id: 10,
            session: "m".into(),
        });
        let Response::MultiSolved { period, rates, .. } = solved else {
            panic!("expected multi_solved, got {solved:?}");
        };
        assert_eq!(rates.len(), 2);
        let realized = shard.handle(Request::ReRealizeMulti {
            id: 11,
            session: "m".into(),
        });
        let Response::MultiRealized {
            violations,
            rate_met,
            transition,
            ..
        } = &realized
        else {
            panic!("expected multi_realized, got {realized:?}");
        };
        assert_eq!(*violations, 0);
        assert_eq!(rate_met.as_slice(), &[true, true]);
        assert!(transition.is_none(), "first realization has no switchover");

        let c = shard.snapshot();
        assert_eq!(c.coalesced_writes, 1, "4 edge writes coalesce to 1");
        assert_eq!(c.multi_solves, 1);
        assert_eq!(c.multi_realizes, 1);

        // Parity with a direct session given the same net state.
        let (instance, commodities) = multi_spec().build().unwrap();
        let mut direct = Session::new(instance);
        direct.set_edge_cost(EdgeId(0), 1.6).unwrap();
        let expected = direct.solve_multi(&commodities).unwrap();
        assert!(
            (period - expected.flow.period).abs() <= 1e-9,
            "served {period} vs direct {}",
            expected.flow.period
        );
    }

    #[test]
    fn multi_requests_on_a_single_session_are_rejected() {
        let mut shard = ShardState::new(ServeConfig::default());
        shard.handle(create(1, "t"));
        for request in [
            Request::SolveMulti {
                id: 2,
                session: "t".into(),
            },
            Request::ReRealizeMulti {
                id: 3,
                session: "t".into(),
            },
        ] {
            let response = shard.handle(request);
            let Response::Error { code, .. } = &response else {
                panic!("expected error, got {response:?}");
            };
            assert_eq!(code, "not_multi");
        }
        // And realizing before solving is a session-level error, not a panic.
        shard.handle(Request::CreateMultiSession {
            id: 4,
            session: "m".into(),
            spec: multi_spec(),
        });
        let response = shard.handle(Request::ReRealizeMulti {
            id: 5,
            session: "m".into(),
        });
        assert!(
            matches!(&response, Response::Error { code, .. } if code == "not_realizable"),
            "{response:?}"
        );
    }

    #[test]
    fn admission_control_sheds_when_a_shard_queue_fills() {
        let server = Server::start(ServeConfig {
            shards: 1,
            queue_cap: 2,
            ..ServeConfig::default()
        });
        assert!(matches!(server.call(create(1, "t")), Response::Ok { .. }));
        // Park the worker, then overfill the bounded queue.
        server.stall_shard(0, 1500);
        std::thread::sleep(Duration::from_millis(100));
        let mut receivers = Vec::new();
        let mut overloaded = 0;
        for i in 0..5u64 {
            let rx = server.submit(Request::SetEdgeCost {
                id: 100 + i,
                session: "t".into(),
                edge: 0,
                cost: 2.0,
            });
            // An immediate response means the request was shed.
            if let Ok(Response::Overloaded { .. }) = rx.try_recv() {
                overloaded += 1;
            } else {
                receivers.push(rx);
            }
        }
        assert_eq!(overloaded, 3, "queue_cap=2 admits 2 of 5");
        for rx in receivers {
            assert!(matches!(rx.recv().unwrap(), Response::Ok { .. }));
        }
        let counters = server.counters();
        assert_eq!(counters.shed, 3);
        assert_eq!(counters.drift_events, 2);
        server.shutdown();
    }

    #[test]
    fn server_round_trips_the_line_protocol() {
        let server = Server::start(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        });
        let line = create(1, "t").to_line();
        let response = server.call_line(&line);
        let parsed = Response::from_line(&response).unwrap();
        assert_eq!(parsed, Response::Ok { id: 1 });
        let solve_line = Request::Solve {
            id: 2,
            session: "t".into(),
            kind: HeuristicKind::Scatter,
        }
        .to_line();
        let response = Response::from_line(&server.call_line(&solve_line)).unwrap();
        assert!(matches!(response, Response::Solved { id: 2, .. }));
        let bad = server.call_line("{not json");
        let parsed = Response::from_line(&bad).unwrap();
        assert!(matches!(parsed, Response::Error { .. }));
        let counters_line = Request::Counters { id: 3 }.to_line();
        let response = Response::from_line(&server.call_line(&counters_line)).unwrap();
        let Response::Counters { counters, .. } = response else {
            panic!("expected counters");
        };
        assert_eq!(counters.sessions_created, 1);
        assert_eq!(counters.solves, 1);
        server.shutdown();
    }

    #[test]
    fn destroy_then_recreate_is_a_fresh_session() {
        let mut shard = ShardState::new(ServeConfig::default());
        shard.handle(create(1, "t"));
        shard.handle(Request::SetEdgeCost {
            id: 2,
            session: "t".into(),
            edge: 0,
            cost: 9.0,
        });
        assert!(matches!(
            shard.handle(Request::DestroySession {
                id: 3,
                session: "t".into()
            }),
            Response::Ok { .. }
        ));
        assert!(matches!(
            shard.handle(Request::Solve {
                id: 4,
                session: "t".into(),
                kind: HeuristicKind::Scatter
            }),
            Response::Error { .. }
        ));
        shard.handle(create(5, "t"));
        let Response::Solved { period, .. } = shard.handle(Request::Solve {
            id: 6,
            session: "t".into(),
            kind: HeuristicKind::Scatter,
        }) else {
            panic!("expected solve");
        };
        let mut direct = Session::new(spec().build().unwrap());
        let expected = direct.solve(HeuristicKind::Scatter).unwrap();
        assert!((period - expected.result.period).abs() <= 1e-9);
    }
}
