//! A minimal self-contained JSON value, parser and emitter.
//!
//! The vendored `serde` stub has no runtime, so the wire protocol is
//! hand-rolled: requests and responses are single-line JSON objects built
//! from and parsed into [`Json`] trees. The emitter is deterministic —
//! object keys keep insertion order and floats print through Rust's `{}`
//! formatting (shortest round-trip representation), matching the artifact
//! emission idiom in `pm_bench::emit`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// A numeric value; non-finite floats map to `null` on emission.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Field lookup on an object (first match, like every JSON decoder).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of a number (rejects fractional and out-of-range values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Emits the value as compact single-line JSON.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = *rest.get(1).ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are replaced rather than joined;
                            // the protocol never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("invalid escape '\\{}'", c as char)),
                    }
                }
                _ => {
                    // Advance one UTF-8 scalar at a time.
                    let s = std::str::from_utf8(rest).map_err(|_| "non-utf8 string")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a":[1,2.5,null,true],"b":{"c":"x\"y\n"},"d":-3e2}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\n")
        );
        let emitted = v.emit();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":1}x",
            "\"unterminated",
            "nul",
            "1.2.3",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_emit_like_rust_display() {
        assert_eq!(Json::Num(3.0).emit(), "3");
        assert_eq!(Json::Num(0.25).emit(), "0.25");
        assert_eq!(Json::Num(f64::INFINITY).emit(), "null");
    }

    #[test]
    fn whitespace_and_unicode_escapes_parse() {
        let v = Json::parse(" { \"k\" : [ \"\\u0041\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[0].as_str(), Some("A"));
    }

    use proptest::prelude::*;
    use proptest::test_runner::TestCaseError;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Characters that stress every emitter path: escapes, control
    /// characters, multi-byte UTF-8.
    const PALETTE: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}', '\u{7f}', 'é',
        '→', '🦀',
    ];

    fn arbitrary_string(rng: &mut StdRng) -> String {
        let len = rng.gen_range(0..8usize);
        (0..len)
            .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
            .collect()
    }

    fn arbitrary_json(rng: &mut StdRng, depth: usize) -> Json {
        let choice = if depth == 0 {
            rng.gen_range(0..4u32)
        } else {
            rng.gen_range(0..6u32)
        };
        match choice {
            0 => Json::Null,
            1 => Json::Bool(rng.gen_range(0..2u32) == 1),
            2 => {
                // Finite doubles across signs and magnitudes (integers
                // included); non-finite values emit as `null` by design and
                // so cannot round-trip.
                let mantissa: f64 = rng.gen_range(-1.0e6..1.0e6);
                let exp = rng.gen_range(-3i32..4);
                Json::Num(mantissa * 10f64.powi(exp))
            }
            3 => Json::Str(arbitrary_string(rng)),
            4 => Json::Arr(
                (0..rng.gen_range(0..4usize))
                    .map(|_| arbitrary_json(rng, depth - 1))
                    .collect(),
            ),
            _ => Json::Obj(
                (0..rng.gen_range(0..4usize))
                    .map(|_| (arbitrary_string(rng), arbitrary_json(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn parse_inverts_emit(seed in 0u64..1_000_000_000_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let value = arbitrary_json(&mut rng, 4);
            let line = value.emit();
            let back = Json::parse(&line).map_err(|message| TestCaseError { message })?;
            prop_assert_eq!(&back, &value);
            // Emission is a fixed point of the round trip.
            prop_assert_eq!(back.emit(), line);
        }
    }

    #[test]
    fn truncated_documents_error_without_panic() {
        let line = r#"{"a":[1,-2.5e3,null,true,"x\"y\n\u0001"],"b":{"c":[[]],"d":"é→"}}"#;
        assert!(Json::parse(line).is_ok());
        for cut in 0..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            assert!(
                Json::parse(&line[..cut]).is_err(),
                "accepted truncation at byte {cut}"
            );
        }
    }

    #[test]
    fn malformed_corpus_returns_structured_errors() {
        for bad in [
            "[1 2]",
            "{\"a\" 1}",
            "{a:1}",
            "tru",
            "falsey",
            "+1",
            ".5",
            "--1",
            "1e",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\u12zz\"",
            "[,1]",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\u{0}",
            "[}",
        ] {
            let err = Json::parse(bad).expect_err(&format!("accepted {bad:?}"));
            assert!(!err.is_empty(), "empty error message for {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_a_structured_error_not_a_stack_overflow() {
        for opener in ["[", "{\"k\":"] {
            let deep = opener.repeat(100_000);
            let err = Json::parse(&deep).unwrap_err();
            assert!(err.contains("nesting too deep"), "got: {err}");
        }
        // Depth just inside the bound still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&over).unwrap_err().contains("nesting too deep"));
    }
}
