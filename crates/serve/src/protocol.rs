//! The line-delimited JSON request/response protocol spoken by `pm-serve`.
//!
//! Every request and response is one JSON object per line. Requests carry a
//! client-chosen numeric `id` that is echoed verbatim on the response, plus a
//! `type` tag; most carry a `session` name routing them to a shard. The
//! response `status` is `"ok"`, `"error"` or `"overloaded"`.
//!
//! The wire encoding is deliberately dependency-free (see [`crate::json`])
//! and deterministic: identical request sequences produce byte-identical
//! response lines, which the CI smoke job exploits.

use crate::json::Json;
use pm_core::multi::{Commodity, CommoditySet};
use pm_core::report::HeuristicKind;
use pm_core::session::{SessionError, TransitionCost};
use pm_platform::graph::{NodeId, Platform, PlatformBuilder};
use pm_platform::instances::MulticastInstance;

/// Snake-case wire name of a heuristic kind (matches the key naming used by
/// `pm_bench` artifacts).
pub fn kind_key(kind: HeuristicKind) -> &'static str {
    match kind {
        HeuristicKind::Scatter => "scatter",
        HeuristicKind::LowerBound => "lower_bound",
        HeuristicKind::Broadcast => "broadcast",
        HeuristicKind::Mcph => "mcph",
        HeuristicKind::AugmentedMulticast => "augmented_multicast",
        HeuristicKind::ReducedBroadcast => "reduced_broadcast",
        HeuristicKind::MultisourceMulticast => "multisource_multicast",
    }
}

/// Inverse of [`kind_key`].
pub fn kind_from_key(key: &str) -> Option<HeuristicKind> {
    HeuristicKind::ALL
        .iter()
        .copied()
        .find(|&k| kind_key(k) == key)
}

/// Stable machine-readable code for a session-level failure.
pub fn error_code(err: &SessionError) -> &'static str {
    use pm_core::formulations::FormulationError;
    use pm_core::realize::RealizeError;
    match err {
        SessionError::Formulation(FormulationError::Unreachable(_)) => "unreachable",
        SessionError::Formulation(FormulationError::InvalidArgument(_)) => "invalid_argument",
        SessionError::Formulation(FormulationError::Lp(_)) => "lp_failure",
        SessionError::Realize(RealizeError::NotRealizable(_)) => "not_realizable",
        SessionError::Realize(_) => "realize_failure",
        SessionError::Poisoned { .. } => "poisoned",
        SessionError::Replay { .. } => "replay_failure",
    }
}

/// A plain-data description of a multicast instance, as sent on
/// `create_session`. Building the [`MulticastInstance`] validates it.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// Number of processors (`NodeId`s are `0..nodes`).
    pub nodes: usize,
    /// Directed edges `(src, dst, cost)`; the index in this list is the
    /// `EdgeId` used by `set_edge_cost`.
    pub edges: Vec<(u32, u32, f64)>,
    /// The source processor.
    pub source: u32,
    /// The target processors.
    pub targets: Vec<u32>,
}

impl InstanceSpec {
    /// Validates and builds the platform instance.
    pub fn build(&self) -> Result<MulticastInstance, String> {
        let mut builder = PlatformBuilder::new();
        builder.add_nodes(self.nodes);
        for &(src, dst, cost) in &self.edges {
            builder
                .add_edge(NodeId(src), NodeId(dst), cost)
                .map_err(|e| e.to_string())?;
        }
        let platform: Platform = builder.build().map_err(|e| e.to_string())?;
        MulticastInstance::new(
            platform,
            NodeId(self.source),
            self.targets.iter().map(|&t| NodeId(t)).collect(),
        )
        .map_err(|e| e.to_string())
    }

    /// FNV-1a fingerprint of the full shape (topology, bit-exact costs,
    /// source and targets) — the key of the per-shard template arena.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.nodes as u64);
        h.write_u64(self.source as u64);
        for &t in &self.targets {
            h.write_u64(t as u64);
        }
        for &(src, dst, cost) in &self.edges {
            h.write_u64(src as u64);
            h.write_u64(dst as u64);
            h.write_u64(cost.to_bits());
        }
        h.finish()
    }

    /// Extracts the spec back out of a built instance (driver/test helper).
    pub fn from_instance(instance: &MulticastInstance) -> InstanceSpec {
        InstanceSpec {
            nodes: instance.platform.node_count(),
            edges: instance
                .platform
                .edge_ids()
                .map(|e| {
                    let edge = instance.platform.edge(e);
                    (edge.src.0, edge.dst.0, edge.cost)
                })
                .collect(),
            source: instance.source.0,
            targets: instance.targets.iter().map(|t| t.0).collect(),
        }
    }

    fn to_json_fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("nodes", Json::Num(self.nodes as f64)),
            (
                "edges",
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|&(s, d, c)| {
                            Json::Arr(vec![Json::Num(s as f64), Json::Num(d as f64), Json::Num(c)])
                        })
                        .collect(),
                ),
            ),
            ("source", Json::Num(self.source as f64)),
            (
                "targets",
                Json::Arr(self.targets.iter().map(|&t| Json::Num(t as f64)).collect()),
            ),
        ]
    }

    fn from_json(v: &Json) -> Result<InstanceSpec, String> {
        let nodes = field_u64(v, "nodes")? as usize;
        let source = field_u64(v, "source")? as u32;
        let targets = v
            .get("targets")
            .and_then(Json::as_arr)
            .ok_or("missing 'targets' array")?
            .iter()
            .map(|t| t.as_u64().map(|t| t as u32).ok_or("bad target"))
            .collect::<Result<Vec<_>, _>>()?;
        let edges = v
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or("missing 'edges' array")?
            .iter()
            .map(|e| {
                let e = e
                    .as_arr()
                    .filter(|e| e.len() == 3)
                    .ok_or("bad edge triple")?;
                Ok((
                    e[0].as_u64().ok_or("bad edge src")? as u32,
                    e[1].as_u64().ok_or("bad edge dst")? as u32,
                    e[2].as_f64().ok_or("bad edge cost")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(InstanceSpec {
            nodes,
            edges,
            source,
            targets,
        })
    }
}

/// One commodity of a multi-commodity workload, as sent on
/// `create_multi_session`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommoditySpec {
    /// The commodity's source processor.
    pub source: u32,
    /// The commodity's target processors.
    pub targets: Vec<u32>,
    /// Relative rate weight (finite, strictly positive).
    pub demand: f64,
}

/// A plain-data description of a multi-commodity workload on a shared
/// platform, as sent on `create_multi_session`. Building the
/// [`CommoditySet`] validates it.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSpec {
    /// Number of processors (`NodeId`s are `0..nodes`).
    pub nodes: usize,
    /// Directed edges `(src, dst, cost)`; the index in this list is the
    /// `EdgeId` used by `set_edge_cost`.
    pub edges: Vec<(u32, u32, f64)>,
    /// The concurrent commodities sharing the platform's one-port capacity.
    pub commodities: Vec<CommoditySpec>,
}

impl MultiSpec {
    /// Validates the workload and builds the session's base instance
    /// (commodity 0's multicast) plus the normalized commodity list handed
    /// to [`pm_core::session::Session::solve_multi`] on every `solve_multi`.
    pub fn build(&self) -> Result<(MulticastInstance, Vec<Commodity>), String> {
        let mut builder = PlatformBuilder::new();
        builder.add_nodes(self.nodes);
        for &(src, dst, cost) in &self.edges {
            builder
                .add_edge(NodeId(src), NodeId(dst), cost)
                .map_err(|e| e.to_string())?;
        }
        let platform: Platform = builder.build().map_err(|e| e.to_string())?;
        let commodities: Vec<Commodity> = self
            .commodities
            .iter()
            .map(|c| Commodity {
                source: NodeId(c.source),
                targets: c.targets.iter().map(|&t| NodeId(t)).collect(),
                demand: c.demand,
            })
            .collect();
        let set = CommoditySet::new(platform, commodities).map_err(|e| e.to_string())?;
        let base = set.instance(0);
        Ok((base, set.commodities().to_vec()))
    }

    /// FNV-1a fingerprint of the full shape (topology, bit-exact costs and
    /// demands, every commodity's endpoints) — the key of the per-shard
    /// template arena, disjoint from [`InstanceSpec::fingerprint`] by a
    /// domain-separating prefix.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_bytes(b"multi");
        h.write_u64(self.nodes as u64);
        for &(src, dst, cost) in &self.edges {
            h.write_u64(src as u64);
            h.write_u64(dst as u64);
            h.write_u64(cost.to_bits());
        }
        h.write_u64(self.commodities.len() as u64);
        for c in &self.commodities {
            h.write_u64(c.source as u64);
            h.write_u64(c.targets.len() as u64);
            for &t in &c.targets {
                h.write_u64(t as u64);
            }
            h.write_u64(c.demand.to_bits());
        }
        h.finish()
    }

    fn to_json_fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("nodes", Json::Num(self.nodes as f64)),
            (
                "edges",
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|&(s, d, c)| {
                            Json::Arr(vec![Json::Num(s as f64), Json::Num(d as f64), Json::Num(c)])
                        })
                        .collect(),
                ),
            ),
            (
                "commodities",
                Json::Arr(
                    self.commodities
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("source", Json::Num(c.source as f64)),
                                (
                                    "targets",
                                    Json::Arr(
                                        c.targets.iter().map(|&t| Json::Num(t as f64)).collect(),
                                    ),
                                ),
                                ("demand", Json::Num(c.demand)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]
    }

    fn from_json(v: &Json) -> Result<MultiSpec, String> {
        let nodes = field_u64(v, "nodes")? as usize;
        let edges = v
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or("missing 'edges' array")?
            .iter()
            .map(|e| {
                let e = e
                    .as_arr()
                    .filter(|e| e.len() == 3)
                    .ok_or("bad edge triple")?;
                Ok((
                    e[0].as_u64().ok_or("bad edge src")? as u32,
                    e[1].as_u64().ok_or("bad edge dst")? as u32,
                    e[2].as_f64().ok_or("bad edge cost")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let commodities = v
            .get("commodities")
            .and_then(Json::as_arr)
            .ok_or("missing 'commodities' array")?
            .iter()
            .map(|c| {
                Ok(CommoditySpec {
                    source: field_u64(c, "source")? as u32,
                    targets: c
                        .get("targets")
                        .and_then(Json::as_arr)
                        .ok_or("missing commodity 'targets'")?
                        .iter()
                        .map(|t| t.as_u64().map(|t| t as u32).ok_or("bad target"))
                        .collect::<Result<Vec<_>, _>>()?,
                    demand: field_f64(c, "demand")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(MultiSpec {
            nodes,
            edges,
            commodities,
        })
    }
}

/// FNV-1a, 64-bit. Used both for instance fingerprints and shard routing.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A client request. `id` is echoed on the response.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    CreateSession {
        id: u64,
        session: String,
        spec: InstanceSpec,
        /// Heuristic kinds whose formulation templates should be pre-built
        /// from the shard's shared arena (empty = build lazily on solve).
        kinds: Vec<HeuristicKind>,
    },
    SetEdgeCost {
        id: u64,
        session: String,
        edge: u32,
        cost: f64,
    },
    DisableNode {
        id: u64,
        session: String,
        node: u32,
    },
    EnableNode {
        id: u64,
        session: String,
        node: u32,
    },
    Solve {
        id: u64,
        session: String,
        kind: HeuristicKind,
    },
    ReRealize {
        id: u64,
        session: String,
        kind: HeuristicKind,
    },
    QuerySchedule {
        id: u64,
        session: String,
        kind: HeuristicKind,
    },
    StreamTransitionCosts {
        id: u64,
        session: String,
    },
    /// Creates a multi-commodity session: k concurrent demands jointly
    /// scheduled in one super-period (drift requests apply unchanged).
    CreateMultiSession {
        id: u64,
        session: String,
        spec: MultiSpec,
    },
    /// Joint steady-state solve of a multi-commodity session.
    SolveMulti {
        id: u64,
        session: String,
    },
    /// Realizes the joint solve as a single super-period schedule.
    ReRealizeMulti {
        id: u64,
        session: String,
    },
    DestroySession {
        id: u64,
        session: String,
    },
    Counters {
        id: u64,
    },
}

impl Request {
    /// The request id (echoed on every response).
    pub fn id(&self) -> u64 {
        match self {
            Request::CreateSession { id, .. }
            | Request::SetEdgeCost { id, .. }
            | Request::DisableNode { id, .. }
            | Request::EnableNode { id, .. }
            | Request::Solve { id, .. }
            | Request::ReRealize { id, .. }
            | Request::QuerySchedule { id, .. }
            | Request::StreamTransitionCosts { id, .. }
            | Request::CreateMultiSession { id, .. }
            | Request::SolveMulti { id, .. }
            | Request::ReRealizeMulti { id, .. }
            | Request::DestroySession { id, .. }
            | Request::Counters { id } => *id,
        }
    }

    /// The session this request routes to (`None` for server-wide requests).
    pub fn session(&self) -> Option<&str> {
        match self {
            Request::CreateSession { session, .. }
            | Request::SetEdgeCost { session, .. }
            | Request::DisableNode { session, .. }
            | Request::EnableNode { session, .. }
            | Request::Solve { session, .. }
            | Request::ReRealize { session, .. }
            | Request::QuerySchedule { session, .. }
            | Request::StreamTransitionCosts { session, .. }
            | Request::CreateMultiSession { session, .. }
            | Request::SolveMulti { session, .. }
            | Request::ReRealizeMulti { session, .. }
            | Request::DestroySession { session, .. } => Some(session),
            Request::Counters { .. } => None,
        }
    }

    /// Whether the request only buffers drift (edge/node churn) — these are
    /// acknowledged immediately and coalesced until the next barrier.
    pub fn is_drift(&self) -> bool {
        matches!(
            self,
            Request::SetEdgeCost { .. } | Request::DisableNode { .. } | Request::EnableNode { .. }
        )
    }

    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let fields = match self {
            Request::CreateSession {
                id,
                session,
                spec,
                kinds,
            } => {
                let mut fields = vec![
                    ("id", Json::Num(*id as f64)),
                    ("type", Json::str("create_session")),
                    ("session", Json::str(session)),
                ];
                fields.extend(spec.to_json_fields());
                fields.push((
                    "kinds",
                    Json::Arr(kinds.iter().map(|&k| Json::str(kind_key(k))).collect()),
                ));
                fields
            }
            Request::SetEdgeCost {
                id,
                session,
                edge,
                cost,
            } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("set_edge_cost")),
                ("session", Json::str(session)),
                ("edge", Json::Num(*edge as f64)),
                ("cost", Json::Num(*cost)),
            ],
            Request::DisableNode { id, session, node } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("disable_node")),
                ("session", Json::str(session)),
                ("node", Json::Num(*node as f64)),
            ],
            Request::EnableNode { id, session, node } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("enable_node")),
                ("session", Json::str(session)),
                ("node", Json::Num(*node as f64)),
            ],
            Request::Solve { id, session, kind } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("solve")),
                ("session", Json::str(session)),
                ("kind", Json::str(kind_key(*kind))),
            ],
            Request::ReRealize { id, session, kind } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("re_realize")),
                ("session", Json::str(session)),
                ("kind", Json::str(kind_key(*kind))),
            ],
            Request::QuerySchedule { id, session, kind } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("query_schedule")),
                ("session", Json::str(session)),
                ("kind", Json::str(kind_key(*kind))),
            ],
            Request::StreamTransitionCosts { id, session } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("stream_transition_costs")),
                ("session", Json::str(session)),
            ],
            Request::CreateMultiSession { id, session, spec } => {
                let mut fields = vec![
                    ("id", Json::Num(*id as f64)),
                    ("type", Json::str("create_multi_session")),
                    ("session", Json::str(session)),
                ];
                fields.extend(spec.to_json_fields());
                fields
            }
            Request::SolveMulti { id, session } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("solve_multi")),
                ("session", Json::str(session)),
            ],
            Request::ReRealizeMulti { id, session } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("re_realize_multi")),
                ("session", Json::str(session)),
            ],
            Request::DestroySession { id, session } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("destroy_session")),
                ("session", Json::str(session)),
            ],
            Request::Counters { id } => vec![
                ("id", Json::Num(*id as f64)),
                ("type", Json::str("counters")),
            ],
        };
        Json::obj(fields).emit()
    }

    /// Parses one request line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line)?;
        let id = field_u64(&v, "id")?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing 'type'")?;
        let session = || -> Result<String, String> {
            Ok(v.get("session")
                .and_then(Json::as_str)
                .ok_or("missing 'session'")?
                .to_string())
        };
        let kind = || -> Result<HeuristicKind, String> {
            let key = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("missing 'kind'")?;
            kind_from_key(key).ok_or_else(|| format!("unknown kind '{key}'"))
        };
        match ty {
            "create_session" => {
                let kinds = match v.get("kinds") {
                    None => Vec::new(),
                    Some(arr) => arr
                        .as_arr()
                        .ok_or("'kinds' must be an array")?
                        .iter()
                        .map(|k| {
                            let key = k.as_str().ok_or("bad kind")?;
                            kind_from_key(key).ok_or(format!("unknown kind '{key}'"))
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                };
                Ok(Request::CreateSession {
                    id,
                    session: session()?,
                    spec: InstanceSpec::from_json(&v)?,
                    kinds,
                })
            }
            "set_edge_cost" => Ok(Request::SetEdgeCost {
                id,
                session: session()?,
                edge: field_u64(&v, "edge")? as u32,
                cost: v
                    .get("cost")
                    .and_then(Json::as_f64)
                    .ok_or("missing 'cost'")?,
            }),
            "disable_node" => Ok(Request::DisableNode {
                id,
                session: session()?,
                node: field_u64(&v, "node")? as u32,
            }),
            "enable_node" => Ok(Request::EnableNode {
                id,
                session: session()?,
                node: field_u64(&v, "node")? as u32,
            }),
            "solve" => Ok(Request::Solve {
                id,
                session: session()?,
                kind: kind()?,
            }),
            "re_realize" => Ok(Request::ReRealize {
                id,
                session: session()?,
                kind: kind()?,
            }),
            "query_schedule" => Ok(Request::QuerySchedule {
                id,
                session: session()?,
                kind: kind()?,
            }),
            "stream_transition_costs" => Ok(Request::StreamTransitionCosts {
                id,
                session: session()?,
            }),
            "create_multi_session" => Ok(Request::CreateMultiSession {
                id,
                session: session()?,
                spec: MultiSpec::from_json(&v)?,
            }),
            "solve_multi" => Ok(Request::SolveMulti {
                id,
                session: session()?,
            }),
            "re_realize_multi" => Ok(Request::ReRealizeMulti {
                id,
                session: session()?,
            }),
            "destroy_session" => Ok(Request::DestroySession {
                id,
                session: session()?,
            }),
            "counters" => Ok(Request::Counters { id }),
            other => Err(format!("unknown request type '{other}'")),
        }
    }
}

/// One weighted multicast tree of a realized schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDesc {
    pub weight: f64,
    pub edges: Vec<u32>,
}

/// Wire form of a [`TransitionCost`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionDesc {
    pub drain_time: f64,
    pub first_delivery_latency: f64,
    pub switch_time: f64,
    pub multicasts_lost: f64,
    pub throughput_delta: f64,
    pub trees_kept: u64,
    pub trees_added: u64,
    pub trees_dropped: u64,
}

impl TransitionDesc {
    pub fn from_cost(t: &TransitionCost) -> TransitionDesc {
        TransitionDesc {
            drain_time: t.drain_time,
            first_delivery_latency: t.first_delivery_latency,
            switch_time: t.switch_time,
            multicasts_lost: t.multicasts_lost,
            throughput_delta: t.throughput_delta,
            trees_kept: t.trees_kept as u64,
            trees_added: t.trees_added as u64,
            trees_dropped: t.trees_dropped as u64,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("drain_time", Json::Num(self.drain_time)),
            (
                "first_delivery_latency",
                Json::Num(self.first_delivery_latency),
            ),
            ("switch_time", Json::Num(self.switch_time)),
            ("multicasts_lost", Json::Num(self.multicasts_lost)),
            ("throughput_delta", Json::Num(self.throughput_delta)),
            ("trees_kept", Json::Num(self.trees_kept as f64)),
            ("trees_added", Json::Num(self.trees_added as f64)),
            ("trees_dropped", Json::Num(self.trees_dropped as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<TransitionDesc, String> {
        Ok(TransitionDesc {
            drain_time: field_f64(v, "drain_time")?,
            first_delivery_latency: field_f64(v, "first_delivery_latency")?,
            switch_time: field_f64(v, "switch_time")?,
            multicasts_lost: field_f64(v, "multicasts_lost")?,
            throughput_delta: field_f64(v, "throughput_delta")?,
            trees_kept: field_u64(v, "trees_kept")?,
            trees_added: field_u64(v, "trees_added")?,
            trees_dropped: field_u64(v, "trees_dropped")?,
        })
    }
}

/// Aggregated server-wide counters (summed over shards on query).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    pub requests: u64,
    pub sessions_created: u64,
    pub sessions_destroyed: u64,
    pub sessions_live: u64,
    /// Drift requests admitted (before coalescing).
    pub drift_events: u64,
    /// Net writes actually applied to sessions at flush barriers.
    pub coalesced_writes: u64,
    /// Flush barriers executed.
    pub flushes: u64,
    /// Requests rejected at admission because a shard queue was full.
    pub shed: u64,
    pub template_builds: u64,
    pub template_hits: u64,
    pub solves: u64,
    pub realizations: u64,
    /// Joint multi-commodity solves (`solve_multi`).
    pub multi_solves: u64,
    /// Super-period realizations (`re_realize_multi`).
    pub multi_realizes: u64,
    pub degraded_solves: u64,
    pub warm_hits: u64,
    pub warm_misses: u64,
    /// Shared per-shard packing-basis cache counters.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub compactions: u64,
    pub journal_entries_dropped: u64,
    pub errors: u64,
}

impl Counters {
    pub fn add(&mut self, o: &Counters) {
        self.requests += o.requests;
        self.sessions_created += o.sessions_created;
        self.sessions_destroyed += o.sessions_destroyed;
        self.sessions_live += o.sessions_live;
        self.drift_events += o.drift_events;
        self.coalesced_writes += o.coalesced_writes;
        self.flushes += o.flushes;
        self.shed += o.shed;
        self.template_builds += o.template_builds;
        self.template_hits += o.template_hits;
        self.solves += o.solves;
        self.realizations += o.realizations;
        self.multi_solves += o.multi_solves;
        self.multi_realizes += o.multi_realizes;
        self.degraded_solves += o.degraded_solves;
        self.warm_hits += o.warm_hits;
        self.warm_misses += o.warm_misses;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
        self.cache_evictions += o.cache_evictions;
        self.compactions += o.compactions;
        self.journal_entries_dropped += o.journal_entries_dropped;
        self.errors += o.errors;
    }

    /// Admitted drift events per net write applied (≥ 1.0; higher is more
    /// coalescing).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.coalesced_writes == 0 {
            if self.drift_events == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.drift_events as f64 / self.coalesced_writes as f64
        }
    }

    /// Packing-basis cache hit rate over all lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Warm-start hit rate of the per-session formulation bases.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("requests", Json::Num(self.requests as f64)),
            ("sessions_created", Json::Num(self.sessions_created as f64)),
            (
                "sessions_destroyed",
                Json::Num(self.sessions_destroyed as f64),
            ),
            ("sessions_live", Json::Num(self.sessions_live as f64)),
            ("drift_events", Json::Num(self.drift_events as f64)),
            ("coalesced_writes", Json::Num(self.coalesced_writes as f64)),
            ("flushes", Json::Num(self.flushes as f64)),
            ("shed", Json::Num(self.shed as f64)),
            ("template_builds", Json::Num(self.template_builds as f64)),
            ("template_hits", Json::Num(self.template_hits as f64)),
            ("solves", Json::Num(self.solves as f64)),
            ("realizations", Json::Num(self.realizations as f64)),
            ("multi_solves", Json::Num(self.multi_solves as f64)),
            ("multi_realizes", Json::Num(self.multi_realizes as f64)),
            ("degraded_solves", Json::Num(self.degraded_solves as f64)),
            ("warm_hits", Json::Num(self.warm_hits as f64)),
            ("warm_misses", Json::Num(self.warm_misses as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("cache_evictions", Json::Num(self.cache_evictions as f64)),
            ("compactions", Json::Num(self.compactions as f64)),
            (
                "journal_entries_dropped",
                Json::Num(self.journal_entries_dropped as f64),
            ),
            ("errors", Json::Num(self.errors as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<Counters, String> {
        Ok(Counters {
            requests: field_u64(v, "requests")?,
            sessions_created: field_u64(v, "sessions_created")?,
            sessions_destroyed: field_u64(v, "sessions_destroyed")?,
            sessions_live: field_u64(v, "sessions_live")?,
            drift_events: field_u64(v, "drift_events")?,
            coalesced_writes: field_u64(v, "coalesced_writes")?,
            flushes: field_u64(v, "flushes")?,
            shed: field_u64(v, "shed")?,
            template_builds: field_u64(v, "template_builds")?,
            template_hits: field_u64(v, "template_hits")?,
            solves: field_u64(v, "solves")?,
            realizations: field_u64(v, "realizations")?,
            multi_solves: field_u64(v, "multi_solves")?,
            multi_realizes: field_u64(v, "multi_realizes")?,
            degraded_solves: field_u64(v, "degraded_solves")?,
            warm_hits: field_u64(v, "warm_hits")?,
            warm_misses: field_u64(v, "warm_misses")?,
            cache_hits: field_u64(v, "cache_hits")?,
            cache_misses: field_u64(v, "cache_misses")?,
            cache_evictions: field_u64(v, "cache_evictions")?,
            compactions: field_u64(v, "compactions")?,
            journal_entries_dropped: field_u64(v, "journal_entries_dropped")?,
            errors: field_u64(v, "errors")?,
        })
    }
}

/// A server response (one JSON line).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Plain acknowledgement (creates, drift acks, destroys).
    Ok { id: u64 },
    /// Result of a `solve`.
    Solved {
        id: u64,
        kind: HeuristicKind,
        /// Achieved period; `f64::INFINITY` encodes as JSON `null`.
        period: f64,
        throughput: f64,
        degraded: bool,
    },
    /// Result of a `re_realize`.
    Realized {
        id: u64,
        kind: HeuristicKind,
        violations: u64,
        gap: f64,
        throughput: f64,
        trees: u64,
        transition: Option<TransitionDesc>,
    },
    /// Result of a `query_schedule`.
    Schedule {
        id: u64,
        kind: HeuristicKind,
        period: f64,
        throughput: f64,
        trees: Vec<TreeDesc>,
    },
    /// Drained transition-cost log entries for one session.
    Transitions {
        id: u64,
        entries: Vec<(HeuristicKind, TransitionDesc)>,
    },
    /// Result of a `solve_multi`: the joint super-unit period and every
    /// commodity's steady-state rate.
    MultiSolved {
        id: u64,
        /// Joint super-unit period `T*`; `f64::INFINITY` encodes as `null`.
        period: f64,
        /// Per-commodity steady-state rates `d_c / T*`.
        rates: Vec<f64>,
    },
    /// Result of a `re_realize_multi`.
    MultiRealized {
        id: u64,
        /// Certified super-period `P`; `f64::INFINITY` encodes as `null`.
        super_period: f64,
        /// One-port violations of the combined schedule's replay.
        violations: u64,
        /// `max_c |simulated_c − certified_c| / certified_c`.
        gap: f64,
        /// Per-commodity simulated rates of the super-period replay.
        rates: Vec<f64>,
        /// Per commodity: simulated rate within `1e-6` of its LP rate.
        rate_met: Vec<bool>,
        trees: u64,
        transition: Option<TransitionDesc>,
    },
    /// Aggregated counters.
    Counters { id: u64, counters: Counters },
    /// Request failed; the session (if any) is unchanged except as noted by
    /// the code.
    Error {
        id: u64,
        code: String,
        message: String,
    },
    /// Admission control rejected the request; retry later.
    Overloaded { id: u64 },
}

impl Response {
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id }
            | Response::Solved { id, .. }
            | Response::Realized { id, .. }
            | Response::Schedule { id, .. }
            | Response::Transitions { id, .. }
            | Response::MultiSolved { id, .. }
            | Response::MultiRealized { id, .. }
            | Response::Counters { id, .. }
            | Response::Error { id, .. }
            | Response::Overloaded { id } => *id,
        }
    }

    /// Serializes to a single JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = match self {
            Response::Ok { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("ack")),
            ]),
            Response::Solved {
                id,
                kind,
                period,
                throughput,
                degraded,
            } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("solved")),
                ("kind", Json::str(kind_key(*kind))),
                ("period", Json::Num(*period)),
                ("throughput", Json::Num(*throughput)),
                ("degraded", Json::Bool(*degraded)),
            ]),
            Response::Realized {
                id,
                kind,
                violations,
                gap,
                throughput,
                trees,
                transition,
            } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("realized")),
                ("kind", Json::str(kind_key(*kind))),
                ("violations", Json::Num(*violations as f64)),
                ("gap", Json::Num(*gap)),
                ("throughput", Json::Num(*throughput)),
                ("trees", Json::Num(*trees as f64)),
                (
                    "transition",
                    match transition {
                        Some(t) => t.to_json(),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Schedule {
                id,
                kind,
                period,
                throughput,
                trees,
            } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("schedule")),
                ("kind", Json::str(kind_key(*kind))),
                ("period", Json::Num(*period)),
                ("throughput", Json::Num(*throughput)),
                (
                    "trees",
                    Json::Arr(
                        trees
                            .iter()
                            .map(|t| {
                                Json::obj(vec![
                                    ("weight", Json::Num(t.weight)),
                                    (
                                        "edges",
                                        Json::Arr(
                                            t.edges.iter().map(|&e| Json::Num(e as f64)).collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Transitions { id, entries } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("transitions")),
                (
                    "entries",
                    Json::Arr(
                        entries
                            .iter()
                            .map(|(k, t)| {
                                let mut obj = vec![("kind".to_string(), Json::str(kind_key(*k)))];
                                if let Json::Obj(fields) = t.to_json() {
                                    obj.extend(fields);
                                }
                                Json::Obj(obj)
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::MultiSolved { id, period, rates } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("multi_solved")),
                ("period", Json::Num(*period)),
                (
                    "rates",
                    Json::Arr(rates.iter().map(|&r| Json::Num(r)).collect()),
                ),
            ]),
            Response::MultiRealized {
                id,
                super_period,
                violations,
                gap,
                rates,
                rate_met,
                trees,
                transition,
            } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("multi_realized")),
                ("super_period", Json::Num(*super_period)),
                ("violations", Json::Num(*violations as f64)),
                ("gap", Json::Num(*gap)),
                (
                    "rates",
                    Json::Arr(rates.iter().map(|&r| Json::Num(r)).collect()),
                ),
                (
                    "rate_met",
                    Json::Arr(rate_met.iter().map(|&m| Json::Bool(m)).collect()),
                ),
                ("trees", Json::Num(*trees as f64)),
                (
                    "transition",
                    match transition {
                        Some(t) => t.to_json(),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Counters { id, counters } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("ok")),
                ("type", Json::str("counters")),
                ("counters", counters.to_json()),
            ]),
            Response::Error { id, code, message } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("error")),
                ("code", Json::str(code)),
                ("message", Json::str(message)),
            ]),
            Response::Overloaded { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("status", Json::str("overloaded")),
            ]),
        };
        json.emit()
    }

    /// Parses one response line (driver-side well-formedness check).
    pub fn from_line(line: &str) -> Result<Response, String> {
        let v = Json::parse(line)?;
        let id = field_u64(&v, "id")?;
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or("missing 'status'")?;
        match status {
            "overloaded" => Ok(Response::Overloaded { id }),
            "error" => Ok(Response::Error {
                id,
                code: v
                    .get("code")
                    .and_then(Json::as_str)
                    .ok_or("missing 'code'")?
                    .to_string(),
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("missing 'message'")?
                    .to_string(),
            }),
            "ok" => {
                let ty = v
                    .get("type")
                    .and_then(Json::as_str)
                    .ok_or("missing 'type'")?;
                let kind = || -> Result<HeuristicKind, String> {
                    let key = v
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or("missing 'kind'")?;
                    kind_from_key(key).ok_or_else(|| format!("unknown kind '{key}'"))
                };
                match ty {
                    "ack" => Ok(Response::Ok { id }),
                    "solved" => Ok(Response::Solved {
                        id,
                        kind: kind()?,
                        period: field_f64_or_inf(&v, "period")?,
                        throughput: field_f64(&v, "throughput")?,
                        degraded: v
                            .get("degraded")
                            .and_then(Json::as_bool)
                            .ok_or("missing 'degraded'")?,
                    }),
                    "realized" => Ok(Response::Realized {
                        id,
                        kind: kind()?,
                        violations: field_u64(&v, "violations")?,
                        gap: field_f64(&v, "gap")?,
                        throughput: field_f64(&v, "throughput")?,
                        trees: field_u64(&v, "trees")?,
                        transition: match v.get("transition") {
                            None | Some(Json::Null) => None,
                            Some(t) => Some(TransitionDesc::from_json(t)?),
                        },
                    }),
                    "schedule" => Ok(Response::Schedule {
                        id,
                        kind: kind()?,
                        period: field_f64_or_inf(&v, "period")?,
                        throughput: field_f64(&v, "throughput")?,
                        trees: v
                            .get("trees")
                            .and_then(Json::as_arr)
                            .ok_or("missing 'trees'")?
                            .iter()
                            .map(|t| {
                                Ok(TreeDesc {
                                    weight: field_f64(t, "weight")?,
                                    edges: t
                                        .get("edges")
                                        .and_then(Json::as_arr)
                                        .ok_or("missing 'edges'")?
                                        .iter()
                                        .map(|e| e.as_u64().map(|e| e as u32).ok_or("bad edge"))
                                        .collect::<Result<Vec<_>, _>>()?,
                                })
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    }),
                    "transitions" => Ok(Response::Transitions {
                        id,
                        entries: v
                            .get("entries")
                            .and_then(Json::as_arr)
                            .ok_or("missing 'entries'")?
                            .iter()
                            .map(|e| {
                                let key =
                                    e.get("kind").and_then(Json::as_str).ok_or("missing kind")?;
                                let k = kind_from_key(key)
                                    .ok_or_else(|| format!("unknown kind '{key}'"))?;
                                Ok((k, TransitionDesc::from_json(e)?))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    }),
                    "multi_solved" => Ok(Response::MultiSolved {
                        id,
                        period: field_f64_or_inf(&v, "period")?,
                        rates: v
                            .get("rates")
                            .and_then(Json::as_arr)
                            .ok_or("missing 'rates'")?
                            .iter()
                            .map(|r| r.as_f64().ok_or("bad rate"))
                            .collect::<Result<Vec<_>, _>>()?,
                    }),
                    "multi_realized" => Ok(Response::MultiRealized {
                        id,
                        super_period: field_f64_or_inf(&v, "super_period")?,
                        violations: field_u64(&v, "violations")?,
                        gap: field_f64(&v, "gap")?,
                        rates: v
                            .get("rates")
                            .and_then(Json::as_arr)
                            .ok_or("missing 'rates'")?
                            .iter()
                            .map(|r| r.as_f64().ok_or("bad rate"))
                            .collect::<Result<Vec<_>, _>>()?,
                        rate_met: v
                            .get("rate_met")
                            .and_then(Json::as_arr)
                            .ok_or("missing 'rate_met'")?
                            .iter()
                            .map(|m| m.as_bool().ok_or("bad rate_met"))
                            .collect::<Result<Vec<_>, _>>()?,
                        trees: field_u64(&v, "trees")?,
                        transition: match v.get("transition") {
                            None | Some(Json::Null) => None,
                            Some(t) => Some(TransitionDesc::from_json(t)?),
                        },
                    }),
                    "counters" => Ok(Response::Counters {
                        id,
                        counters: Counters::from_json(
                            v.get("counters").ok_or("missing 'counters'")?,
                        )?,
                    }),
                    other => Err(format!("unknown response type '{other}'")),
                }
            }
            other => Err(format!("unknown status '{other}'")),
        }
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))
}

/// Like [`field_f64`] but decodes JSON `null` as `f64::INFINITY` (the
/// emitter maps non-finite periods to `null`).
fn field_f64_or_inf(v: &Json, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Json::Null) => Ok(f64::INFINITY),
        Some(n) => n.as_f64().ok_or_else(|| format!("non-numeric '{key}'")),
        None => Err(format!("missing '{key}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let spec = InstanceSpec {
            nodes: 4,
            edges: vec![(0, 1, 1.5), (1, 2, 2.0), (1, 3, 2.5)],
            source: 0,
            targets: vec![2, 3],
        };
        let reqs = vec![
            Request::CreateSession {
                id: 1,
                session: "t0".into(),
                spec: spec.clone(),
                kinds: vec![HeuristicKind::Scatter, HeuristicKind::Mcph],
            },
            Request::SetEdgeCost {
                id: 2,
                session: "t0".into(),
                edge: 1,
                cost: 3.25,
            },
            Request::DisableNode {
                id: 3,
                session: "t0".into(),
                node: 1,
            },
            Request::EnableNode {
                id: 4,
                session: "t0".into(),
                node: 1,
            },
            Request::Solve {
                id: 5,
                session: "t0".into(),
                kind: HeuristicKind::Scatter,
            },
            Request::ReRealize {
                id: 6,
                session: "t0".into(),
                kind: HeuristicKind::Scatter,
            },
            Request::QuerySchedule {
                id: 7,
                session: "t0".into(),
                kind: HeuristicKind::Scatter,
            },
            Request::StreamTransitionCosts {
                id: 8,
                session: "t0".into(),
            },
            Request::CreateMultiSession {
                id: 9,
                session: "m0".into(),
                spec: MultiSpec {
                    nodes: 4,
                    edges: vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (3, 0, 1.0)],
                    commodities: vec![
                        CommoditySpec {
                            source: 0,
                            targets: vec![2, 3],
                            demand: 4.0,
                        },
                        CommoditySpec {
                            source: 2,
                            targets: vec![0],
                            demand: 1.0,
                        },
                    ],
                },
            },
            Request::SolveMulti {
                id: 10,
                session: "m0".into(),
            },
            Request::ReRealizeMulti {
                id: 11,
                session: "m0".into(),
            },
            Request::DestroySession {
                id: 12,
                session: "t0".into(),
            },
            Request::Counters { id: 13 },
        ];
        for req in reqs {
            let line = req.to_line();
            let back = Request::from_line(&line).unwrap();
            assert_eq!(back, req, "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip_through_lines() {
        let transition = TransitionDesc {
            drain_time: 1.0,
            first_delivery_latency: 2.0,
            switch_time: 3.0,
            multicasts_lost: 0.5,
            throughput_delta: -0.25,
            trees_kept: 1,
            trees_added: 2,
            trees_dropped: 0,
        };
        let resps = vec![
            Response::Ok { id: 1 },
            Response::Solved {
                id: 2,
                kind: HeuristicKind::Broadcast,
                period: 2.5,
                throughput: 0.4,
                degraded: false,
            },
            Response::Solved {
                id: 3,
                kind: HeuristicKind::Mcph,
                period: f64::INFINITY,
                throughput: 0.0,
                degraded: true,
            },
            Response::Realized {
                id: 4,
                kind: HeuristicKind::Scatter,
                violations: 0,
                gap: 0.01,
                throughput: 0.4,
                trees: 3,
                transition: Some(transition.clone()),
            },
            Response::Schedule {
                id: 5,
                kind: HeuristicKind::Scatter,
                period: 2.5,
                throughput: 0.4,
                trees: vec![TreeDesc {
                    weight: 0.4,
                    edges: vec![0, 2],
                }],
            },
            Response::Transitions {
                id: 6,
                entries: vec![(HeuristicKind::Scatter, transition.clone())],
            },
            Response::Counters {
                id: 7,
                counters: Counters {
                    requests: 12,
                    drift_events: 8,
                    coalesced_writes: 3,
                    ..Counters::default()
                },
            },
            Response::MultiSolved {
                id: 8,
                period: 6.5,
                rates: vec![0.615_384_615_384_615_4, 0.153_846_153_846_153_85],
            },
            Response::MultiRealized {
                id: 9,
                super_period: 6.5,
                violations: 0,
                gap: 0.0,
                rates: vec![0.615_384_615_384_615_4, 0.153_846_153_846_153_85],
                rate_met: vec![true, true],
                trees: 3,
                transition: Some(transition.clone()),
            },
            Response::Error {
                id: 10,
                code: "unreachable".into(),
                message: "target n3 unreachable".into(),
            },
            Response::Overloaded { id: 11 },
        ];
        for resp in resps {
            let line = resp.to_line();
            let back = Response::from_line(&line).unwrap();
            assert_eq!(back, resp, "line: {line}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_shapes() {
        let a = InstanceSpec {
            nodes: 3,
            edges: vec![(0, 1, 1.0), (1, 2, 1.0)],
            source: 0,
            targets: vec![2],
        };
        let mut b = a.clone();
        b.edges[1].2 = 2.0;
        let mut c = a.clone();
        c.targets = vec![1];
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn build_validates_the_spec() {
        let ok = InstanceSpec {
            nodes: 3,
            edges: vec![(0, 1, 1.0), (1, 2, 1.0)],
            source: 0,
            targets: vec![2],
        };
        assert!(ok.build().is_ok());
        let unreachable = InstanceSpec {
            nodes: 3,
            edges: vec![(0, 1, 1.0)],
            source: 0,
            targets: vec![2],
        };
        assert!(unreachable.build().is_err());
        let bad_cost = InstanceSpec {
            nodes: 2,
            edges: vec![(0, 1, -1.0)],
            source: 0,
            targets: vec![1],
        };
        assert!(bad_cost.build().is_err());
    }

    #[test]
    fn multi_spec_validates_and_fingerprints_demands() {
        let a = MultiSpec {
            nodes: 3,
            edges: vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
            commodities: vec![
                CommoditySpec {
                    source: 0,
                    targets: vec![1, 2],
                    demand: 1.0,
                },
                CommoditySpec {
                    source: 2,
                    targets: vec![0],
                    demand: 2.0,
                },
            ],
        };
        let (base, commodities) = a.build().unwrap();
        assert_eq!(base.source, NodeId(0));
        assert_eq!(commodities.len(), 2);

        // Demands are part of the shape: a skewed copy gets its own arena
        // entry.
        let mut skewed = a.clone();
        skewed.commodities[1].demand = 4.0;
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), skewed.fingerprint());

        // An unreachable commodity target is rejected at build time.
        let mut unreachable = a.clone();
        unreachable.edges.pop();
        assert!(unreachable.build().is_err());

        // A non-positive demand is rejected at build time.
        let mut bad_demand = a.clone();
        bad_demand.commodities[0].demand = 0.0;
        assert!(bad_demand.build().is_err());
    }
}
