//! Multicast-as-a-service: a sharded, multi-tenant server for
//! [`pm_core::session::Session`]s.
//!
//! One long-running process owns thousands of concurrent drift sessions —
//! one per tenant/multicast group — hash-sharded over a fixed worker pool.
//! Clients speak a line-delimited JSON protocol ([`protocol`]): the
//! `pm-serve` binary serves it over stdin/stdout (maelstrom-style), and the
//! in-process [`server::Server`] API serves tests and the closed-loop
//! `serve_bench` load driver without any I/O in the way.
//!
//! The perf story is layered (see [`server`]): drift requests are
//! acknowledged eagerly and coalesced per tenant until the next barrier,
//! formulation templates are memoized per shard across same-shape tenants,
//! packing bases are shared through a bounded per-shard LRU cache, and
//! tenant journals are compacted in place under sustained churn. Admission
//! control bounds every queue and sheds with explicit `overloaded`
//! responses instead of buffering without limit.

pub mod json;
pub mod protocol;
pub mod server;

pub use json::Json;
pub use protocol::{
    error_code, kind_from_key, kind_key, CommoditySpec, Counters, InstanceSpec, MultiSpec, Request,
    Response, TransitionDesc, TreeDesc,
};
pub use server::{ServeConfig, Server};
