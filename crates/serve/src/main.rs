//! `pm-serve` — the stdio front end of the session server.
//!
//! Reads one JSON request per line from stdin, writes one JSON response per
//! line to stdout, and exits cleanly on EOF. Configuration comes from the
//! `PM_SERVE_*` environment knobs (see [`pm_serve::ServeConfig::from_env`]).
//!
//! ```text
//! $ printf '%s\n' \
//!     '{"id":1,"type":"create_session","session":"t0","nodes":3,"edges":[[0,1,1.0],[1,2,2.0]],"source":0,"targets":[2]}' \
//!     '{"id":2,"type":"solve","session":"t0","kind":"scatter"}' \
//!   | pm-serve
//! ```

use std::io::{BufRead, Write};

use pm_serve::{ServeConfig, Server};

fn main() {
    let server = Server::start(ServeConfig::from_env());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = server.call_line(&line);
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break;
        }
    }
    server.shutdown();
}
