//! Multicast problem instances (platform + source + target set) and the
//! reference instances used throughout the paper.

use crate::algo::all_reachable;
use crate::graph::{NodeId, Platform, PlatformBuilder, PlatformError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when assembling a [`MulticastInstance`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// The underlying platform was invalid.
    Platform(PlatformError),
    /// A node id used as source or target does not exist in the platform.
    UnknownNode(NodeId),
    /// The target set is empty.
    NoTargets,
    /// Some target cannot be reached from the source at all.
    UnreachableTarget(NodeId),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Platform(e) => write!(f, "invalid platform: {e}"),
            InstanceError::UnknownNode(n) => write!(f, "unknown node {n}"),
            InstanceError::NoTargets => write!(f, "target set is empty"),
            InstanceError::UnreachableTarget(n) => write!(f, "target {n} unreachable from source"),
        }
    }
}

impl std::error::Error for InstanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InstanceError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for InstanceError {
    fn from(e: PlatformError) -> Self {
        InstanceError::Platform(e)
    }
}

/// An instance of the *Series of Multicasts* problem
/// `Series(V, E, c, Psource, Ptarget)`: a platform, the source processor and
/// the set of destination processors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MulticastInstance {
    /// The platform graph `G = (V, E, c)`.
    pub platform: Platform,
    /// The source processor `Psource` holding all messages initially.
    pub source: NodeId,
    /// The destination processors `Ptarget` (sorted, deduplicated, never
    /// containing the source).
    pub targets: Vec<NodeId>,
}

impl MulticastInstance {
    /// Builds and validates an instance.
    ///
    /// Targets are sorted and deduplicated; the source is removed from the
    /// target set if present (the source trivially holds every message).
    pub fn new(
        platform: Platform,
        source: NodeId,
        targets: Vec<NodeId>,
    ) -> Result<Self, InstanceError> {
        let n = platform.node_count() as u32;
        if source.0 >= n {
            return Err(InstanceError::UnknownNode(source));
        }
        let mut targets: Vec<NodeId> = targets.into_iter().filter(|&t| t != source).collect();
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty() {
            return Err(InstanceError::NoTargets);
        }
        for &t in &targets {
            if t.0 >= n {
                return Err(InstanceError::UnknownNode(t));
            }
        }
        if !all_reachable(&platform, source, &targets) {
            let unreachable = targets
                .iter()
                .copied()
                .find(|&t| !all_reachable(&platform, source, &[t]))
                .expect("at least one target is unreachable");
            return Err(InstanceError::UnreachableTarget(unreachable));
        }
        Ok(Self {
            platform,
            source,
            targets,
        })
    }

    /// Number of targets `|Ptarget|`.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Whether this instance is a broadcast (every non-source node is a target).
    pub fn is_broadcast(&self) -> bool {
        self.targets.len() == self.platform.node_count() - 1
    }

    /// Whether `node` belongs to the target set.
    pub fn is_target(&self, node: NodeId) -> bool {
        self.targets.binary_search(&node).is_ok()
    }

    /// The broadcast instance on the same platform and source (targets = all
    /// other nodes).
    pub fn as_broadcast(&self) -> MulticastInstance {
        let targets = self
            .platform
            .nodes()
            .filter(|&v| v != self.source)
            .collect();
        MulticastInstance::new(self.platform.clone(), self.source, targets)
            .expect("broadcast instance on a valid multicast instance is valid")
    }

    /// Restricts the instance to the subgraph induced by `keep` (the source
    /// and all targets must belong to `keep`). Returns the new instance and
    /// the new node id of every kept node, indexed as in `keep`.
    pub fn restrict_to(&self, keep: &[NodeId]) -> Result<MulticastInstance, InstanceError> {
        let (platform, old_to_new, _) = self.platform.induced_subgraph(keep);
        let source = *old_to_new
            .get(&self.source)
            .ok_or(InstanceError::UnknownNode(self.source))?;
        let mut targets = Vec::with_capacity(self.targets.len());
        for &t in &self.targets {
            targets.push(*old_to_new.get(&t).ok_or(InstanceError::UnknownNode(t))?);
        }
        MulticastInstance::new(platform, source, targets)
    }
}

/// The worked example of the paper, Section 3 / Figure 1.
///
/// The source `P0` multicasts to `P7..P13`. The cut into `P7` (single
/// incoming edge of cost 1) caps the throughput at one multicast per
/// time-unit; the paper shows that no *single* multicast tree achieves it,
/// while a combination of two trees of weight ½ does.
///
/// Edge costs follow the constraints spelled out in Section 3 (all backbone
/// links cost 1, `P3 -> P4 -> P5` contains the cost-2 link, the source's link
/// to the `P3` branch costs ½, the `P7`-cluster links cost 1/5 and the
/// `P11`-cluster links cost 1/10).
pub fn figure1_instance() -> MulticastInstance {
    let mut b = PlatformBuilder::new();
    let source = b.add_named_node("Psource");
    // P1..P13 in order so that NodeId(i) is Pi.
    let p: Vec<NodeId> = (1..=13)
        .map(|i| b.add_named_node(&format!("P{i}")))
        .collect();
    let node = |i: usize| -> NodeId {
        if i == 0 {
            source
        } else {
            p[i - 1]
        }
    };
    let mut e = |s: usize, d: usize, c: f64| {
        b.add_edge(node(s), node(d), c).expect("figure 1 edge");
    };
    // Source branch feeding P1 directly and the relay chain through P3.
    e(0, 1, 1.0);
    e(0, 3, 0.5);
    // Relay backbone.
    e(3, 2, 1.0);
    e(2, 1, 1.0);
    e(3, 4, 1.0);
    e(4, 5, 2.0);
    e(5, 6, 1.0);
    e(2, 6, 1.0);
    // Entry points into the two target clusters.
    e(6, 7, 1.0);
    e(1, 11, 1.0);
    // Fast LAN-like cluster around P7 (cost 1/5).
    e(7, 8, 0.2);
    e(7, 9, 0.2);
    e(7, 10, 0.2);
    e(8, 9, 0.2);
    e(9, 10, 0.2);
    // Very fast cluster around P11 (cost 1/10).
    e(11, 12, 0.1);
    e(11, 13, 0.1);
    e(12, 13, 0.1);
    let platform = b.build().expect("figure 1 platform");
    let targets = (7..=13).map(|i| NodeId(i as u32)).collect();
    MulticastInstance::new(platform, source, targets).expect("figure 1 instance")
}

/// The tightness gadget of Figure 5: the gap between the lower and upper
/// LP bounds reaches the factor `|Ptarget|`.
///
/// The source is connected to a relay by a cost-1 link, and the relay serves
/// `n` targets through cost-`1/n` links. The lower bound (`Multicast-LB`)
/// finds period 1 (and it is achievable), while the scatter-like upper bound
/// (`Multicast-UB`) believes the source must push `n` distinct copies through
/// the cost-1 link and reports period `n`.
pub fn figure5_instance(n: usize) -> MulticastInstance {
    assert!(n >= 1, "figure 5 needs at least one target");
    let mut b = PlatformBuilder::new();
    let source = b.add_named_node("Psource");
    let relay = b.add_named_node("Relay");
    b.add_edge(source, relay, 1.0).expect("figure 5 edge");
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let t = b.add_named_node(&format!("T{}", i + 1));
        b.add_edge(relay, t, 1.0 / n as f64).expect("figure 5 edge");
        targets.push(t);
    }
    let platform = b.build().expect("figure 5 platform");
    MulticastInstance::new(platform, source, targets).expect("figure 5 instance")
}

/// A two-target gadget with a relay and cross links between the targets, on
/// which the scatter-like upper bound (`Multicast-UB`) is strictly
/// pessimistic: the optimum (one pipelined chain through the targets) halves
/// the period the upper bound reports.
///
/// Together with [`figure5_instance`] this illustrates Section 5.1.3 of the
/// paper (the bounds are not tight in general); the exhaustive search for
/// instances where *neither* bound is tight (Figure 4) lives in
/// `pm-core::exact::find_bounds_gap_instance`.
pub fn relay_cross_instance() -> MulticastInstance {
    let mut b = PlatformBuilder::new();
    let s = b.add_named_node("Psource");
    let r = b.add_named_node("Relay");
    let t1 = b.add_named_node("T1");
    let t2 = b.add_named_node("T2");
    // Direct but slow links to each target, and a shared relay path.
    b.add_edge(s, t1, 1.0).unwrap();
    b.add_edge(s, t2, 1.0).unwrap();
    b.add_edge(s, r, 1.0).unwrap();
    b.add_edge(r, t1, 1.0).unwrap();
    b.add_edge(r, t2, 1.0).unwrap();
    // Cross links between the two targets.
    b.add_edge(t1, t2, 1.0).unwrap();
    b.add_edge(t2, t1, 1.0).unwrap();
    let platform = b.build().expect("relay-cross platform");
    MulticastInstance::new(platform, s, vec![t1, t2]).expect("relay-cross instance")
}

/// A simple chain `P0 -> P1 -> ... -> P(n-1)` with uniform cost, multicasting
/// from the head to the tail node(s). Useful as a sanity-check instance: the
/// optimal period equals the largest edge cost.
pub fn chain_instance(n: usize, cost: f64) -> MulticastInstance {
    assert!(n >= 2, "a chain needs at least two nodes");
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1], cost).expect("chain edge");
    }
    let platform = b.build().expect("chain platform");
    MulticastInstance::new(platform, nodes[0], vec![nodes[n - 1]]).expect("chain instance")
}

/// A complete (fully connected) heterogeneous platform with `n` nodes where
/// `c(Pi, Pj)` depends only on the sender (`(i + 1) * base`), mirroring the
/// sender-heterogeneity model of Banikazemi et al. discussed in Section 8.
pub fn sender_heterogeneous_clique(n: usize, base: f64) -> MulticastInstance {
    assert!(n >= 2);
    let mut b = PlatformBuilder::new();
    let nodes = b.add_nodes(n);
    for (i, &u) in nodes.iter().enumerate() {
        for &v in &nodes {
            if u != v {
                b.add_edge(u, v, (i + 1) as f64 * base)
                    .expect("clique edge");
            }
        }
    }
    let platform = b.build().expect("clique platform");
    let targets = nodes[1..].to_vec();
    MulticastInstance::new(platform, nodes[0], targets).expect("clique instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let inst = figure1_instance();
        assert_eq!(inst.platform.node_count(), 14);
        assert_eq!(inst.target_count(), 7);
        assert!(!inst.is_broadcast());
        assert!(inst.is_target(NodeId(7)));
        assert!(!inst.is_target(NodeId(6)));
        // P7's only incoming edge costs 1: the throughput is capped at 1.
        assert_eq!(inst.platform.in_edges(NodeId(7)).len(), 1);
        assert_eq!(
            inst.platform.cost(inst.platform.in_edges(NodeId(7))[0]),
            1.0
        );
        // P1's in-neighbours are exactly {Psource, P2} (Section 3 argument).
        let mut innb: Vec<_> = inst.platform.in_neighbors(NodeId(1)).collect();
        innb.sort();
        assert_eq!(innb, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn figure5_shape() {
        let inst = figure5_instance(3);
        assert_eq!(inst.platform.node_count(), 5);
        assert_eq!(inst.target_count(), 3);
        assert!(
            (inst.platform.cost(inst.platform.out_edges(NodeId(1))[0]) - 1.0 / 3.0).abs() < 1e-12
        );
    }

    #[test]
    fn instance_validation() {
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(3);
        b.add_edge(v[0], v[1], 1.0).unwrap();
        let g = b.build().unwrap();
        // v[2] unreachable.
        assert!(matches!(
            MulticastInstance::new(g.clone(), v[0], vec![v[2]]),
            Err(InstanceError::UnreachableTarget(_))
        ));
        assert!(matches!(
            MulticastInstance::new(g.clone(), v[0], vec![]),
            Err(InstanceError::NoTargets)
        ));
        assert!(matches!(
            MulticastInstance::new(g.clone(), v[0], vec![v[0]]),
            Err(InstanceError::NoTargets)
        ));
        assert!(matches!(
            MulticastInstance::new(g.clone(), NodeId(9), vec![v[1]]),
            Err(InstanceError::UnknownNode(_))
        ));
        let ok = MulticastInstance::new(g, v[0], vec![v[1], v[1]]).unwrap();
        assert_eq!(ok.targets, vec![v[1]]);
    }

    #[test]
    fn as_broadcast_targets_everything_else() {
        let inst = figure5_instance(2);
        let bc = inst.as_broadcast();
        assert!(bc.is_broadcast());
        assert_eq!(bc.target_count(), inst.platform.node_count() - 1);
    }

    #[test]
    fn restrict_to_subplatform() {
        let inst = figure1_instance();
        // Keep the source, P1 and the P11 cluster: still a valid instance for
        // the targets that survive... here we restrict the target set too.
        let keep = vec![NodeId(0), NodeId(1), NodeId(11), NodeId(12), NodeId(13)];
        let sub = MulticastInstance::new(
            inst.platform.clone(),
            inst.source,
            vec![NodeId(11), NodeId(12), NodeId(13)],
        )
        .unwrap()
        .restrict_to(&keep)
        .unwrap();
        assert_eq!(sub.platform.node_count(), 5);
        assert_eq!(sub.target_count(), 3);
    }

    #[test]
    fn chain_and_clique_builders() {
        let c = chain_instance(5, 2.0);
        assert_eq!(c.platform.edge_count(), 4);
        assert_eq!(c.targets, vec![NodeId(4)]);
        let k = sender_heterogeneous_clique(4, 0.5);
        assert_eq!(k.platform.edge_count(), 12);
        assert!(k.is_broadcast());
    }
}
