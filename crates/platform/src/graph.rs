//! Directed, edge-weighted platform graphs under the one-port model.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node (processor) in a [`Platform`].
///
/// Node ids are dense indices `0..platform.node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a directed edge (communication link) in a [`Platform`].
///
/// Edge ids are dense indices `0..platform.edge_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed communication link `src -> dst` with communication cost `cost`
/// (time to transfer one unit-size message).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Time needed to transfer one unit-size message on this link.
    pub cost: f64,
}

/// Errors raised while building or manipulating a [`Platform`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// An edge references a node id that was never added.
    UnknownNode(NodeId),
    /// An edge cost was not a finite, strictly positive number.
    InvalidCost { src: NodeId, dst: NodeId, cost: f64 },
    /// A self-loop `(v, v)` was requested.
    SelfLoop(NodeId),
    /// The same directed edge `(src, dst)` was added twice.
    DuplicateEdge { src: NodeId, dst: NodeId },
    /// The platform has no nodes.
    Empty,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownNode(n) => write!(f, "unknown node {n}"),
            PlatformError::InvalidCost { src, dst, cost } => {
                write!(f, "invalid cost {cost} on edge {src} -> {dst}")
            }
            PlatformError::SelfLoop(n) => write!(f, "self loop on node {n}"),
            PlatformError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            PlatformError::Empty => write!(f, "platform has no nodes"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// An edge-weighted directed graph `G = (V, E, c)` modelling a heterogeneous
/// platform under the one-port communication model.
///
/// The graph is immutable once built (see [`PlatformBuilder`]); adjacency is
/// stored both ways so that `N^in` and `N^out` queries are `O(degree)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    names: Vec<String>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl Platform {
    /// Number of nodes `p = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over `(EdgeId, &Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Cost `c_{j,k}` of the edge with the given id.
    #[inline]
    pub fn cost(&self, id: EdgeId) -> f64 {
        self.edges[id.index()].cost
    }

    /// Updates the cost of an edge in place — the platform-side primitive of
    /// edge-cost drift on long-lived `pm_core::session::Session`-style
    /// consumers. The graph structure (nodes, edges, adjacency) is
    /// untouched, so ids held by schedules, trees and LP templates stay
    /// valid.
    pub fn set_cost(&mut self, id: EdgeId, cost: f64) -> Result<(), PlatformError> {
        let edge = self.edges[id.index()];
        if !(cost.is_finite() && cost > 0.0) {
            return Err(PlatformError::InvalidCost {
                src: edge.src,
                dst: edge.dst,
                cost,
            });
        }
        self.edges[id.index()].cost = cost;
        Ok(())
    }

    /// Human-readable name of a node.
    #[inline]
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// Outgoing edges of `node` (`N^out`).
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node.index()]
    }

    /// Incoming edges of `node` (`N^in`).
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node.index()]
    }

    /// Out-neighbours of `node`.
    pub fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[node.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// In-neighbours of `node`.
    pub fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges[node.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// Number of pairwise edge-disjoint `src → dst` paths (unit-capacity
    /// max-flow; see [`crate::algo::edge_disjoint_paths`]). Shared by the
    /// robust realizer (pick redundant trees) and its verifier (check the
    /// union actually carries the promised disjointness).
    pub fn edge_disjoint_paths(&self, src: NodeId, dst: NodeId) -> usize {
        crate::algo::edge_disjoint_paths(self, src, dst)
    }

    /// The id of the directed edge `src -> dst`, if it exists.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges[src.index()]
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].dst == dst)
    }

    /// Sum of the outgoing edge costs of a node — an upper bound on the time
    /// the node needs to forward one message to *all* its out-neighbours.
    pub fn out_cost_sum(&self, node: NodeId) -> f64 {
        self.out_edges[node.index()]
            .iter()
            .map(|&e| self.edges[e.index()].cost)
            .sum()
    }

    /// Largest edge cost in the platform.
    pub fn max_cost(&self) -> f64 {
        self.edges.iter().map(|e| e.cost).fold(0.0, f64::max)
    }

    /// Smallest edge cost in the platform.
    pub fn min_cost(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.cost)
            .fold(f64::INFINITY, f64::min)
    }

    /// Builds the subgraph induced by `keep`, preserving edge costs.
    ///
    /// Returns the new platform together with the mapping from old node ids to
    /// new node ids (dense, in the order of `keep` after deduplication) and
    /// the reverse mapping.
    pub fn induced_subgraph(
        &self,
        keep: &[NodeId],
    ) -> (Platform, HashMap<NodeId, NodeId>, Vec<NodeId>) {
        let mut old_to_new: HashMap<NodeId, NodeId> = HashMap::new();
        let mut new_to_old: Vec<NodeId> = Vec::new();
        for &n in keep {
            if let std::collections::hash_map::Entry::Vacant(slot) = old_to_new.entry(n) {
                let new_id = NodeId(new_to_old.len() as u32);
                slot.insert(new_id);
                new_to_old.push(n);
            }
        }
        let mut builder = PlatformBuilder::new();
        for &old in &new_to_old {
            builder.add_named_node(self.name(old));
        }
        for (_, e) in self.edges() {
            if let (Some(&s), Some(&d)) = (old_to_new.get(&e.src), old_to_new.get(&e.dst)) {
                builder
                    .add_edge(s, d, e.cost)
                    .expect("induced subgraph edge must be valid");
            }
        }
        let platform = builder.build().expect("induced subgraph must be non-empty");
        (platform, old_to_new, new_to_old)
    }

    /// Total degree (in + out) of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_edges[node.index()].len() + self.in_edges[node.index()].len()
    }
}

/// Incremental, validated construction of a [`Platform`].
#[derive(Debug, Clone, Default)]
pub struct PlatformBuilder {
    names: Vec<String>,
    edges: Vec<Edge>,
}

impl PlatformBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with an auto-generated name `P<i>` and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(format!("P{}", id.0));
        id
    }

    /// Adds a node with the given name and returns its id.
    pub fn add_named_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_string());
        id
    }

    /// Adds `n` nodes and returns their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Adds the directed edge `src -> dst` with cost `cost`.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, cost: f64) -> Result<(), PlatformError> {
        let n = self.names.len() as u32;
        if src.0 >= n {
            return Err(PlatformError::UnknownNode(src));
        }
        if dst.0 >= n {
            return Err(PlatformError::UnknownNode(dst));
        }
        if src == dst {
            return Err(PlatformError::SelfLoop(src));
        }
        if !(cost.is_finite() && cost > 0.0) {
            return Err(PlatformError::InvalidCost { src, dst, cost });
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(PlatformError::DuplicateEdge { src, dst });
        }
        self.edges.push(Edge { src, dst, cost });
        Ok(())
    }

    /// Adds both `a -> b` and `b -> a` with the same cost.
    pub fn add_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        cost: f64,
    ) -> Result<(), PlatformError> {
        self.add_edge(a, b, cost)?;
        self.add_edge(b, a, cost)
    }

    /// Finalizes the platform.
    pub fn build(self) -> Result<Platform, PlatformError> {
        if self.names.is_empty() {
            return Err(PlatformError::Empty);
        }
        let n = self.names.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            out_edges[e.src.index()].push(EdgeId(i as u32));
            in_edges[e.dst.index()].push(EdgeId(i as u32));
        }
        Ok(Platform {
            names: self.names,
            edges: self.edges,
            out_edges,
            in_edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Platform {
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(3);
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[1], v[2], 2.0).unwrap();
        b.add_edge(v[2], v[0], 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_counts_and_adjacency() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(
            g.out_neighbors(NodeId(0)).collect::<Vec<_>>(),
            vec![NodeId(1)]
        );
        assert_eq!(
            g.in_neighbors(NodeId(0)).collect::<Vec<_>>(),
            vec![NodeId(2)]
        );
        assert_eq!(g.degree(NodeId(1)), 2);
    }

    #[test]
    fn find_edge_and_costs() {
        let g = triangle();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(g.cost(e), 2.0);
        assert!(g.find_edge(NodeId(0), NodeId(2)).is_none());
        assert_eq!(g.max_cost(), 2.0);
        assert_eq!(g.min_cost(), 0.5);
        assert_eq!(g.out_cost_sum(NodeId(0)), 1.0);
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(2);
        assert_eq!(
            b.add_edge(v[0], v[0], 1.0),
            Err(PlatformError::SelfLoop(v[0]))
        );
        assert!(matches!(
            b.add_edge(v[0], v[1], 0.0),
            Err(PlatformError::InvalidCost { .. })
        ));
        assert!(matches!(
            b.add_edge(v[0], v[1], f64::NAN),
            Err(PlatformError::InvalidCost { .. })
        ));
        assert_eq!(
            b.add_edge(v[0], NodeId(7), 1.0),
            Err(PlatformError::UnknownNode(NodeId(7)))
        );
        b.add_edge(v[0], v[1], 1.0).unwrap();
        assert!(matches!(
            b.add_edge(v[0], v[1], 2.0),
            Err(PlatformError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn empty_platform_is_rejected() {
        assert_eq!(
            PlatformBuilder::new().build().err(),
            Some(PlatformError::Empty)
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = triangle();
        let (sub, old_to_new, new_to_old) = g.induced_subgraph(&[NodeId(0), NodeId(1)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1); // only 0 -> 1 survives
        assert_eq!(new_to_old, vec![NodeId(0), NodeId(1)]);
        let s = old_to_new[&NodeId(0)];
        let d = old_to_new[&NodeId(1)];
        assert_eq!(sub.cost(sub.find_edge(s, d).unwrap()), 1.0);
    }

    #[test]
    fn set_cost_updates_in_place_and_validates() {
        let mut g = triangle();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        g.set_cost(e, 2.5).unwrap();
        assert_eq!(g.cost(e), 2.5);
        assert!(matches!(
            g.set_cost(e, 0.0),
            Err(PlatformError::InvalidCost { .. })
        ));
        assert!(matches!(
            g.set_cost(e, f64::NAN),
            Err(PlatformError::InvalidCost { .. })
        ));
        assert_eq!(g.cost(e), 2.5); // rejected updates leave the cost alone
    }

    #[test]
    fn induced_subgraph_dedups_nodes() {
        let g = triangle();
        let (sub, _, new_to_old) = g.induced_subgraph(&[NodeId(2), NodeId(2), NodeId(0)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(new_to_old, vec![NodeId(2), NodeId(0)]);
        assert_eq!(sub.edge_count(), 1); // 2 -> 0
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(2);
        b.add_bidirectional(v[0], v[1], 3.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.find_edge(v[0], v[1]).is_some());
        assert!(g.find_edge(v[1], v[0]).is_some());
    }

    #[test]
    fn adjacency_lists_are_consistent_with_edges() {
        let g = triangle();
        for (id, e) in g.edges() {
            assert!(g.out_edges(e.src).contains(&id));
            assert!(g.in_edges(e.dst).contains(&id));
        }
        let total_out: usize = g.nodes().map(|v| g.out_edges(v).len()).sum();
        let total_in: usize = g.nodes().map(|v| g.in_edges(v).len()).sum();
        assert_eq!(total_out, g.edge_count());
        assert_eq!(total_in, g.edge_count());
    }
}
