//! Graph algorithms used by the bounds and heuristics: shortest paths,
//! multi-source bottleneck paths (the MCPH metric), reachability.

use crate::graph::{EdgeId, NodeId, Platform};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A non-NaN `f64` priority for use in binary heaps (min-heap via `Reverse`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinF64(f64);

impl Eq for MinF64 {}

impl PartialOrd for MinF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so that the std max-heap pops the smallest key.
        other
            .0
            .partial_cmp(&self.0)
            .expect("priorities must not be NaN")
    }
}

/// Result of a (multi-source) path computation: per-node distance and the
/// incoming edge on an optimal path, allowing path reconstruction.
#[derive(Debug, Clone)]
pub struct PathTree {
    /// `dist[v]` is the optimal distance from the source set to `v`
    /// (`f64::INFINITY` when unreachable).
    pub dist: Vec<f64>,
    /// `parent_edge[v]` is the edge used to reach `v` on an optimal path
    /// (`None` for sources and unreachable nodes).
    pub parent_edge: Vec<Option<EdgeId>>,
}

impl PathTree {
    /// Whether `v` is reachable from the source set.
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// Reconstructs the edges of an optimal path ending at `target`, in order
    /// from the source set to `target`. Returns `None` if unreachable.
    pub fn path_to(&self, target: NodeId, platform: &Platform) -> Option<Vec<EdgeId>> {
        if !self.reachable(target) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some(e) = self.parent_edge[cur.index()] {
            edges.push(e);
            cur = platform.edge(e).src;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Per-edge cost function used by the path algorithms.
///
/// The MCPH heuristic repeatedly modifies the "remaining capacity" cost of
/// edges, so the algorithms take a closure rather than reading
/// [`Platform::cost`] directly.
pub type EdgeCost<'a> = &'a dyn Fn(EdgeId) -> f64;

/// Single-source Dijkstra with the classical *additive* metric.
///
/// `cost(e)` must be non-negative for every edge.
pub fn dijkstra(platform: &Platform, source: NodeId, cost: EdgeCost<'_>) -> PathTree {
    multi_source_dijkstra(platform, &[source], cost)
}

/// Multi-source Dijkstra (additive metric): distances are measured from the
/// closest node of `sources`.
pub fn multi_source_dijkstra(
    platform: &Platform,
    sources: &[NodeId],
    cost: EdgeCost<'_>,
) -> PathTree {
    let n = platform.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_edge = vec![None; n];
    let mut heap: BinaryHeap<(MinF64, NodeId)> = BinaryHeap::new();
    for &s in sources {
        dist[s.index()] = 0.0;
        heap.push((MinF64(0.0), s));
    }
    while let Some((MinF64(d), u)) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &e in platform.out_edges(u) {
            let w = cost(e);
            debug_assert!(w >= 0.0, "additive Dijkstra requires non-negative costs");
            let v = platform.edge(e).dst;
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent_edge[v.index()] = Some(e);
                heap.push((MinF64(nd), v));
            }
        }
    }
    PathTree { dist, parent_edge }
}

/// Multi-source *bottleneck* (minimax) paths: the length of a path is the
/// maximum edge cost along it, and we look for the path minimizing that
/// maximum. This is the metric used by the paper's MCPH heuristic (Figure 9,
/// line 6): `c(P_t) = max_{(i,j) in P(t)} c(i,j)`.
pub fn multi_source_bottleneck(
    platform: &Platform,
    sources: &[NodeId],
    cost: EdgeCost<'_>,
) -> PathTree {
    let n = platform.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_edge = vec![None; n];
    let mut heap: BinaryHeap<(MinF64, NodeId)> = BinaryHeap::new();
    for &s in sources {
        dist[s.index()] = 0.0;
        heap.push((MinF64(0.0), s));
    }
    while let Some((MinF64(d), u)) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &e in platform.out_edges(u) {
            let v = platform.edge(e).dst;
            let nd = d.max(cost(e));
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent_edge[v.index()] = Some(e);
                heap.push((MinF64(nd), v));
            }
        }
    }
    PathTree { dist, parent_edge }
}

/// Number of pairwise edge-disjoint `src → dst` paths: the value of a
/// maximum flow with unit capacity on every edge (Menger's theorem), found
/// by BFS augmentation (Edmonds–Karp). Node capacities are *not* limited —
/// disjointness is in edges, matching the redundancy guarantee of the
/// robust realizer (a single *link* failure kills at most one path).
///
/// `src == dst` returns `usize::MAX` conceptually capped to the out-degree;
/// we return the out-degree of `src` in that degenerate case.
pub fn edge_disjoint_paths(platform: &Platform, src: NodeId, dst: NodeId) -> usize {
    edge_disjoint_paths_where(platform, src, dst, &|_| true)
}

/// [`edge_disjoint_paths`] restricted to the edges accepted by `allowed` —
/// the form the robust realizer uses to measure the redundancy of a tree
/// union (only union edges are allowed) and of a masked sub-platform (only
/// mask-active edges are allowed).
pub fn edge_disjoint_paths_where(
    platform: &Platform,
    src: NodeId,
    dst: NodeId,
    allowed: &dyn Fn(EdgeId) -> bool,
) -> usize {
    if src == dst {
        return platform
            .out_edges(src)
            .iter()
            .filter(|&&e| allowed(e))
            .count();
    }
    let n = platform.node_count();
    let m = platform.edge_count();
    // flow[e] = 1 when edge e carries a unit of flow.
    let mut flow = vec![false; m];
    let mut paths = 0usize;
    loop {
        // BFS over the residual graph: forward through unsaturated allowed
        // edges, backward through saturated ones.
        // pred[v] = (edge, forward?) used to reach v.
        let mut pred: Vec<Option<(EdgeId, bool)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[src.index()] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        'bfs: while let Some(u) = queue.pop_front() {
            for &e in platform.out_edges(u) {
                if !flow[e.index()] && allowed(e) {
                    let v = platform.edge(e).dst;
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        pred[v.index()] = Some((e, true));
                        if v == dst {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            for &e in platform.in_edges(u) {
                if flow[e.index()] {
                    let v = platform.edge(e).src;
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        pred[v.index()] = Some((e, false));
                        if v == dst {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
        }
        if !seen[dst.index()] {
            return paths;
        }
        // Augment along the BFS path: set forward edges, clear backward ones.
        let mut cur = dst;
        while cur != src {
            let (e, forward) = pred[cur.index()].expect("path reaches src");
            flow[e.index()] = forward;
            cur = if forward {
                platform.edge(e).src
            } else {
                platform.edge(e).dst
            };
        }
        paths += 1;
    }
}

/// Set of nodes reachable from `source` (including `source` itself).
pub fn reachable_from(platform: &Platform, source: NodeId) -> Vec<NodeId> {
    let n = platform.node_count();
    let mut seen = vec![false; n];
    let mut stack = vec![source];
    seen[source.index()] = true;
    while let Some(u) = stack.pop() {
        for v in platform.out_neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    (0..n as u32)
        .map(NodeId)
        .filter(|v| seen[v.index()])
        .collect()
}

/// Whether every node of `targets` is reachable from `source`.
pub fn all_reachable(platform: &Platform, source: NodeId, targets: &[NodeId]) -> bool {
    let reach = reachable_from(platform, source);
    let mut seen = vec![false; platform.node_count()];
    for v in reach {
        seen[v.index()] = true;
    }
    targets.iter().all(|t| seen[t.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PlatformBuilder;

    /// Diamond: 0 -> 1 (1), 0 -> 2 (5), 1 -> 3 (1), 2 -> 3 (1), plus 1 -> 2 (1).
    fn diamond() -> Platform {
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(4);
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[0], v[2], 5.0).unwrap();
        b.add_edge(v[1], v[3], 1.0).unwrap();
        b.add_edge(v[2], v[3], 1.0).unwrap();
        b.add_edge(v[1], v[2], 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_additive_distances() {
        let g = diamond();
        let t = dijkstra(&g, NodeId(0), &|e| g.cost(e));
        assert_eq!(t.dist[0], 0.0);
        assert_eq!(t.dist[1], 1.0);
        assert_eq!(t.dist[2], 2.0); // via node 1, not the direct cost-5 edge
        assert_eq!(t.dist[3], 2.0);
    }

    #[test]
    fn dijkstra_path_reconstruction() {
        let g = diamond();
        let t = dijkstra(&g, NodeId(0), &|e| g.cost(e));
        let path = t.path_to(NodeId(2), &g).unwrap();
        let nodes: Vec<_> = path.iter().map(|&e| g.edge(e).dst).collect();
        assert_eq!(nodes, vec![NodeId(1), NodeId(2)]);
        assert!(t.path_to(NodeId(0), &g).unwrap().is_empty());
    }

    #[test]
    fn bottleneck_prefers_smaller_maximum_edge() {
        let g = diamond();
        let t = multi_source_bottleneck(&g, &[NodeId(0)], &|e| g.cost(e));
        // To node 2: direct edge has bottleneck 5; via node 1 the bottleneck is 1.
        assert_eq!(t.dist[2], 1.0);
        assert_eq!(t.dist[3], 1.0);
    }

    #[test]
    fn multi_source_uses_closest_source() {
        let g = diamond();
        let t = multi_source_dijkstra(&g, &[NodeId(1), NodeId(2)], &|e| g.cost(e));
        assert_eq!(t.dist[1], 0.0);
        assert_eq!(t.dist[2], 0.0);
        assert_eq!(t.dist[3], 1.0);
        assert!(!t.reachable(NodeId(0)));
    }

    #[test]
    fn reachability() {
        let g = diamond();
        let r = reachable_from(&g, NodeId(1));
        assert_eq!(r, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(all_reachable(&g, NodeId(0), &[NodeId(3), NodeId(2)]));
        assert!(!all_reachable(&g, NodeId(3), &[NodeId(0)]));
    }

    #[test]
    fn edge_disjoint_paths_on_the_diamond() {
        let g = diamond();
        // 0 -> 3: 0-1-3 and 0-2-3 (0-1-2-3 shares edges with both).
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(3)), 2);
        // 0 -> 2: direct plus via node 1.
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(2)), 2);
        // 0 -> 1: single edge.
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(1)), 1);
        // No path back.
        assert_eq!(edge_disjoint_paths(&g, NodeId(3), NodeId(0)), 0);
        // Degenerate src == dst: out-degree.
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(0)), 2);
    }

    #[test]
    fn edge_disjoint_paths_needs_a_backward_augmentation() {
        // The classic instance where greedy forward paths must be rerouted:
        //   s -> a, s -> b, a -> b, a -> t, b -> t
        // A first BFS may route s-a-b-t; the second unit needs the residual
        // arc b -> a to settle on s-a-t and s-b-t.
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(4); // s=0, a=1, b=2, t=3
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[0], v[2], 1.0).unwrap();
        b.add_edge(v[1], v[2], 1.0).unwrap();
        b.add_edge(v[1], v[3], 1.0).unwrap();
        b.add_edge(v[2], v[3], 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(edge_disjoint_paths(&g, v[0], v[3]), 2);
    }

    #[test]
    fn edge_disjoint_paths_respects_the_edge_filter() {
        let g = diamond();
        // Forbid the direct 0 -> 2 edge: one path to node 2 remains and the
        // two 0 -> 3 paths collapse to one disjoint pair -> still 2? No:
        // without 0->2 the only entry is 0->1, so 0 -> 3 drops to 1.
        let direct = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let allowed = |e: EdgeId| e != direct;
        assert_eq!(
            edge_disjoint_paths_where(&g, NodeId(0), NodeId(2), &allowed),
            1
        );
        assert_eq!(
            edge_disjoint_paths_where(&g, NodeId(0), NodeId(3), &allowed),
            1
        );
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance_and_no_path() {
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(3);
        b.add_edge(v[0], v[1], 1.0).unwrap();
        let g = b.build().unwrap();
        let t = dijkstra(&g, v[0], &|e| g.cost(e));
        assert!(!t.reachable(v[2]));
        assert!(t.path_to(v[2], &g).is_none());
    }
}
