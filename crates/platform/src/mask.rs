//! Node activation masks: sub-platform *views* that deactivate nodes without
//! re-indexing.
//!
//! [`crate::graph::Platform::induced_subgraph`] (and
//! [`crate::instances::MulticastInstance::restrict_to`] on top of it) rebuilds
//! a platform with fresh dense node and edge ids. That is the right tool for
//! a one-off restriction, but the greedy sub-platform heuristics evaluate
//! hundreds of candidate restrictions of the *same* platform, and rebuilding
//! makes every candidate a structurally different object — defeating any
//! caching keyed on structure (the LP warm-start machinery in particular).
//!
//! A [`NodeMask`] keeps the original ids: nodes are merely flagged active or
//! inactive, an edge is active iff both endpoints are, and consumers express
//! "node removed" as "everything incident to it is forced to zero". The
//! rebuild path stays around as the differential oracle (see the
//! `masked_vs_rebuilt` tests in `pm-core`).

use crate::graph::{NodeId, Platform};
use serde::{Deserialize, Serialize};

/// A set of active nodes over a platform with `capacity` nodes, stored as a
/// bitset so membership tests are O(1) and copies are cheap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMask {
    words: Vec<u64>,
    capacity: usize,
    active: usize,
}

impl NodeMask {
    /// The mask with every node of a `capacity`-node platform active.
    pub fn full(capacity: usize) -> Self {
        let mut words = vec![u64::MAX; capacity.div_ceil(64)];
        if !capacity.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (capacity % 64)) - 1;
            }
        }
        NodeMask {
            words,
            capacity,
            active: capacity,
        }
    }

    /// The mask with no node active.
    pub fn empty(capacity: usize) -> Self {
        NodeMask {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            active: 0,
        }
    }

    /// The mask activating exactly `nodes` (duplicates are fine).
    ///
    /// # Panics
    /// Panics if a node id is out of range.
    pub fn from_nodes(capacity: usize, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut mask = NodeMask::empty(capacity);
        for n in nodes {
            mask.insert(n);
        }
        mask
    }

    /// Number of node ids the mask covers (active or not).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of active nodes.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active
    }

    /// Whether `node` is active.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        debug_assert!(i < self.capacity, "node {node} out of mask capacity");
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Activates `node`. Returns whether the mask changed.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(i < self.capacity, "node {node} out of mask capacity");
        let bit = 1u64 << (i % 64);
        let changed = self.words[i / 64] & bit == 0;
        if changed {
            self.words[i / 64] |= bit;
            self.active += 1;
        }
        changed
    }

    /// Deactivates `node`. Returns whether the mask changed.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(i < self.capacity, "node {node} out of mask capacity");
        let bit = 1u64 << (i % 64);
        let changed = self.words[i / 64] & bit != 0;
        if changed {
            self.words[i / 64] &= !bit;
            self.active -= 1;
        }
        changed
    }

    /// A copy of the mask with `node` additionally active.
    pub fn with(&self, node: NodeId) -> NodeMask {
        let mut m = self.clone();
        m.insert(node);
        m
    }

    /// A copy of the mask with `node` deactivated.
    pub fn without(&self, node: NodeId) -> NodeMask {
        let mut m = self.clone();
        m.remove(node);
        m
    }

    /// Iterator over the active node ids, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(move |(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(NodeId((w * 64) as u32 + b))
            })
        })
    }

    /// The active nodes as a sorted vector (the `keep` argument the rebuild
    /// oracle [`crate::instances::MulticastInstance::restrict_to`] expects).
    pub fn to_nodes(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// Whether both endpoints of the edge are active, i.e. whether the edge
    /// survives in the masked sub-platform.
    #[inline]
    pub fn edge_active(&self, platform: &Platform, edge: crate::graph::EdgeId) -> bool {
        let e = platform.edge(edge);
        self.contains(e.src) && self.contains(e.dst)
    }

    /// The set of nodes reachable from `source` through active nodes and
    /// edges only, as a membership vector indexed by node id. An inactive
    /// `source` reaches nothing.
    pub fn reachable_from(&self, platform: &Platform, source: NodeId) -> Vec<bool> {
        let mut seen = vec![false; platform.node_count()];
        if !self.contains(source) {
            return seen;
        }
        let mut stack = vec![source];
        seen[source.index()] = true;
        while let Some(u) = stack.pop() {
            for &e in platform.out_edges(u) {
                let v = platform.edge(e).dst;
                if self.contains(v) && !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PlatformBuilder;

    #[test]
    fn full_empty_and_membership() {
        let full = NodeMask::full(70);
        assert_eq!(full.capacity(), 70);
        assert_eq!(full.active_count(), 70);
        assert!(full.contains(NodeId(0)));
        assert!(full.contains(NodeId(69)));
        let empty = NodeMask::empty(70);
        assert_eq!(empty.active_count(), 0);
        assert!(!empty.contains(NodeId(69)));
    }

    #[test]
    fn insert_remove_and_counts() {
        let mut m = NodeMask::empty(5);
        assert!(m.insert(NodeId(3)));
        assert!(!m.insert(NodeId(3)));
        assert_eq!(m.active_count(), 1);
        assert!(m.remove(NodeId(3)));
        assert!(!m.remove(NodeId(3)));
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn with_without_are_copies() {
        let m = NodeMask::from_nodes(4, [NodeId(0), NodeId(2)]);
        let w = m.without(NodeId(2)).with(NodeId(1));
        assert!(m.contains(NodeId(2)));
        assert!(!w.contains(NodeId(2)));
        assert!(w.contains(NodeId(1)));
        assert_eq!(m.active_count(), 2);
        assert_eq!(w.active_count(), 2);
    }

    #[test]
    fn iteration_is_sorted_across_words() {
        let nodes = [NodeId(1), NodeId(63), NodeId(64), NodeId(65), NodeId(120)];
        let m = NodeMask::from_nodes(130, nodes);
        assert_eq!(m.to_nodes(), nodes);
    }

    #[test]
    fn edge_activity_and_masked_reachability() {
        // 0 -> 1 -> 2, 0 -> 2
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(3);
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[1], v[2], 1.0).unwrap();
        b.add_edge(v[0], v[2], 1.0).unwrap();
        let g = b.build().unwrap();
        let full = NodeMask::full(3);
        assert!(full.edge_active(&g, g.find_edge(v[0], v[1]).unwrap()));
        let no1 = full.without(v[1]);
        assert!(!no1.edge_active(&g, g.find_edge(v[0], v[1]).unwrap()));
        assert!(no1.edge_active(&g, g.find_edge(v[0], v[2]).unwrap()));
        // Without the direct 0 -> 2 edge, removing node 1 cuts node 2 off.
        let mut b = PlatformBuilder::new();
        let v = b.add_nodes(3);
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[1], v[2], 1.0).unwrap();
        let chain = b.build().unwrap();
        let seen = full.reachable_from(&chain, v[0]);
        assert_eq!(seen, vec![true, true, true]);
        let seen = full.without(v[1]).reachable_from(&chain, v[0]);
        assert_eq!(seen, vec![true, false, false]);
        let seen = full.without(v[0]).reachable_from(&chain, v[0]);
        assert_eq!(seen, vec![false, false, false]);
    }
}
