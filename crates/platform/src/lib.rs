//! # pm-platform
//!
//! Heterogeneous platform model for the *Series of Multicasts* problem of
//! Beaumont, Legrand, Marchal and Robert (ICPP 2004 / INRIA RR-5123).
//!
//! A platform is an edge-weighted directed graph `G = (V, E, c)`: nodes are
//! processors, and an edge `(Pj, Pk)` with cost `c_{j,k}` means that sending a
//! unit-size message from `Pj` to `Pk` occupies the *send port* of `Pj` and
//! the *receive port* of `Pk` for `c_{j,k}` time-units (one-port model).
//!
//! The crate provides:
//!
//! * [`graph`] — the [`Platform`] graph itself, a validated
//!   [`PlatformBuilder`], induced subgraphs and
//!   node/edge id types,
//! * [`algo`] — shortest paths, multi-source bottleneck paths (the metric used
//!   by the MCPH heuristic), reachability,
//! * [`instances`] — [`MulticastInstance`]
//!   (platform + source + target set) and the reference instances of the
//!   paper (Figures 1 and 5, tightness gadgets),
//! * [`mask`] — [`NodeMask`] sub-platform views that
//!   deactivate nodes without re-indexing (the representation behind the
//!   masked LP formulations in `pm-core`),
//! * [`topology`] — a Tiers-like hierarchical random topology generator used
//!   by the evaluation (Section 7 of the paper).

pub mod algo;
pub mod graph;
pub mod instances;
pub mod mask;
pub mod topology;

pub use graph::{EdgeId, NodeId, Platform, PlatformBuilder, PlatformError};
pub use instances::MulticastInstance;
pub use mask::NodeMask;
