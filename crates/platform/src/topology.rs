//! Tiers-like hierarchical random topology generation.
//!
//! The paper's evaluation (Section 7) uses platforms produced by the *Tiers*
//! topology generator [Calvert, Doar, Zegura 1997]: a wide-area backbone
//! (WAN), metropolitan networks (MANs) hanging off WAN nodes, and local-area
//! networks (LANs) hanging off MAN nodes. Targets are drawn from the LAN
//! nodes. Tiers itself is not redistributable, so this module provides a
//! faithful substitute: a three-level hierarchy with heterogeneous link costs
//! per level and configurable redundancy, reproducing the properties the
//! evaluation depends on (shared slow uplinks in front of fast clusters, and
//! enough alternative paths that multi-tree solutions can beat single trees).

use crate::graph::{NodeId, Platform, PlatformBuilder};
use crate::instances::MulticastInstance;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The two platform classes used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformClass {
    /// "Small" platforms: about 30 nodes, 17 of which are LAN nodes.
    Small,
    /// "Big" platforms: about 65 nodes, 47 of which are LAN nodes.
    Big,
}

/// Parameters of the hierarchical generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyParams {
    /// Number of WAN (backbone) nodes.
    pub wan_nodes: usize,
    /// Number of MAN networks (each attached to a WAN node).
    pub mans: usize,
    /// Nodes per MAN.
    pub man_nodes: usize,
    /// Number of LANs (each attached to a MAN node).
    pub lans: usize,
    /// Nodes per LAN (these are the candidate multicast targets).
    pub lan_nodes: usize,
    /// Extra redundant WAN links beyond the backbone ring.
    pub extra_wan_links: usize,
    /// Extra redundant MAN-to-WAN or MAN-to-MAN links.
    pub extra_man_links: usize,
    /// Cost range (min, max) for WAN links.
    pub wan_cost: (f64, f64),
    /// Cost range for MAN links and MAN-WAN uplinks.
    pub man_cost: (f64, f64),
    /// Cost range for LAN links and LAN-MAN uplinks.
    pub lan_cost: (f64, f64),
}

impl TopologyParams {
    /// Parameters reproducing the paper's "small" class at the paper's scale
    /// (≈30 nodes, 17 LAN nodes).
    pub fn paper_small() -> Self {
        TopologyParams {
            wan_nodes: 4,
            mans: 3,
            man_nodes: 3,
            lans: 4,
            lan_nodes: 4,
            extra_wan_links: 2,
            extra_man_links: 2,
            wan_cost: (0.01, 0.1),
            man_cost: (0.05, 0.5),
            lan_cost: (0.2, 2.0),
        }
    }

    /// Parameters reproducing the paper's "big" class at the paper's scale
    /// (≈65 nodes, 47 LAN nodes).
    pub fn paper_big() -> Self {
        TopologyParams {
            wan_nodes: 6,
            mans: 4,
            man_nodes: 3,
            lans: 8,
            lan_nodes: 6,
            extra_wan_links: 4,
            extra_man_links: 3,
            wan_cost: (0.01, 0.1),
            man_cost: (0.05, 0.5),
            lan_cost: (0.2, 2.0),
        }
    }

    /// A reduced-size "small" class suited to the from-scratch LP solver of
    /// this repository (the qualitative results are unchanged, see
    /// EXPERIMENTS.md).
    pub fn reduced_small() -> Self {
        TopologyParams {
            wan_nodes: 3,
            mans: 2,
            man_nodes: 2,
            lans: 3,
            lan_nodes: 2,
            extra_wan_links: 1,
            extra_man_links: 1,
            wan_cost: (0.01, 0.1),
            man_cost: (0.05, 0.5),
            lan_cost: (0.2, 2.0),
        }
    }

    /// A reduced-size "big" class (see [`TopologyParams::reduced_small`]).
    pub fn reduced_big() -> Self {
        TopologyParams {
            wan_nodes: 4,
            mans: 3,
            man_nodes: 2,
            lans: 4,
            lan_nodes: 3,
            extra_wan_links: 2,
            extra_man_links: 1,
            wan_cost: (0.01, 0.1),
            man_cost: (0.05, 0.5),
            lan_cost: (0.2, 2.0),
        }
    }

    /// Expected total number of nodes.
    pub fn node_count(&self) -> usize {
        self.wan_nodes + self.mans * self.man_nodes + self.lans * self.lan_nodes
    }
}

/// A generated hierarchical platform: the graph plus the role of each node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedTopology {
    /// The platform graph (all links are bidirectional with symmetric costs).
    pub platform: Platform,
    /// Backbone nodes.
    pub wan: Vec<NodeId>,
    /// MAN (metropolitan) nodes.
    pub man: Vec<NodeId>,
    /// LAN nodes — the candidate multicast targets of the evaluation.
    pub lan: Vec<NodeId>,
}

impl GeneratedTopology {
    /// Draws a multicast instance: the source is a uniformly random WAN node
    /// and the targets are a `density` fraction of the LAN nodes (at least
    /// one target).
    pub fn sample_instance(&self, density: f64, rng: &mut StdRng) -> MulticastInstance {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        let source = *self.wan.choose(rng).expect("topology has WAN nodes");
        let mut lan = self.lan.clone();
        lan.shuffle(rng);
        let count = ((lan.len() as f64 * density).round() as usize).clamp(1, lan.len());
        let targets = lan[..count].to_vec();
        MulticastInstance::new(self.platform.clone(), source, targets)
            .expect("generated topologies are strongly connected")
    }
}

/// The Tiers-like generator itself. Construction is deterministic for a given
/// seed.
#[derive(Debug, Clone)]
pub struct TiersLikeGenerator {
    params: TopologyParams,
    rng: StdRng,
}

impl TiersLikeGenerator {
    /// Creates a generator from explicit parameters and a seed.
    pub fn new(params: TopologyParams, seed: u64) -> Self {
        TiersLikeGenerator {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator for one of the paper's platform classes, at the
    /// paper's original scale.
    pub fn paper_scale(class: PlatformClass, seed: u64) -> Self {
        let params = match class {
            PlatformClass::Small => TopologyParams::paper_small(),
            PlatformClass::Big => TopologyParams::paper_big(),
        };
        Self::new(params, seed)
    }

    /// Creates a generator for one of the paper's platform classes, at the
    /// reduced scale used by this repository's default experiments.
    pub fn reduced_scale(class: PlatformClass, seed: u64) -> Self {
        let params = match class {
            PlatformClass::Small => TopologyParams::reduced_small(),
            PlatformClass::Big => TopologyParams::reduced_big(),
        };
        Self::new(params, seed)
    }

    /// The parameters of this generator.
    pub fn params(&self) -> &TopologyParams {
        &self.params
    }

    fn cost_in(&mut self, range: (f64, f64)) -> f64 {
        if (range.1 - range.0).abs() < f64::EPSILON {
            range.0
        } else {
            self.rng.gen_range(range.0..range.1)
        }
    }

    /// Generates one topology.
    pub fn generate(&mut self) -> GeneratedTopology {
        let p = self.params.clone();
        let mut b = PlatformBuilder::new();

        // WAN backbone: a ring plus random chords.
        let wan: Vec<NodeId> = (0..p.wan_nodes)
            .map(|i| b.add_named_node(&format!("WAN{i}")))
            .collect();
        if wan.len() >= 2 {
            for i in 0..wan.len() {
                let j = (i + 1) % wan.len();
                if wan.len() == 2 && i == 1 {
                    break; // avoid duplicating the single pair edge
                }
                let c = self.cost_in(p.wan_cost);
                b.add_bidirectional(wan[i], wan[j], c).expect("wan ring");
            }
        }
        let mut extra = 0;
        let mut attempts = 0;
        while extra < p.extra_wan_links && attempts < 50 && wan.len() >= 3 {
            attempts += 1;
            let i = self.rng.gen_range(0..wan.len());
            let j = self.rng.gen_range(0..wan.len());
            if i == j {
                continue;
            }
            let c = self.cost_in(p.wan_cost);
            if b.add_bidirectional(wan[i], wan[j], c).is_ok() {
                extra += 1;
            }
        }

        // MANs: a small star/chain per MAN, attached to a random WAN node.
        let mut man: Vec<NodeId> = Vec::new();
        let mut man_heads: Vec<NodeId> = Vec::new();
        for m in 0..p.mans {
            let nodes: Vec<NodeId> = (0..p.man_nodes)
                .map(|i| b.add_named_node(&format!("MAN{m}.{i}")))
                .collect();
            for w in nodes.windows(2) {
                let c = self.cost_in(p.man_cost);
                b.add_bidirectional(w[0], w[1], c).expect("man chain");
            }
            let attach = wan[self.rng.gen_range(0..wan.len())];
            let c = self.cost_in(p.man_cost);
            b.add_bidirectional(attach, nodes[0], c)
                .expect("man uplink");
            man_heads.push(nodes[0]);
            man.extend(nodes);
        }
        // Redundant MAN links (to another WAN node or another MAN head).
        let mut extra = 0;
        let mut attempts = 0;
        while extra < p.extra_man_links && attempts < 50 && !man_heads.is_empty() {
            attempts += 1;
            let h = man_heads[self.rng.gen_range(0..man_heads.len())];
            let target = if self.rng.gen_bool(0.5) || man_heads.len() < 2 {
                wan[self.rng.gen_range(0..wan.len())]
            } else {
                man_heads[self.rng.gen_range(0..man_heads.len())]
            };
            if target == h {
                continue;
            }
            let c = self.cost_in(p.man_cost);
            if b.add_bidirectional(h, target, c).is_ok() {
                extra += 1;
            }
        }

        // LANs: clusters of leaf nodes behind a MAN (or WAN, if no MAN) node.
        let mut lan: Vec<NodeId> = Vec::new();
        for l in 0..p.lans {
            let gateway = if man.is_empty() {
                wan[self.rng.gen_range(0..wan.len())]
            } else {
                man[self.rng.gen_range(0..man.len())]
            };
            let nodes: Vec<NodeId> = (0..p.lan_nodes)
                .map(|i| b.add_named_node(&format!("LAN{l}.{i}")))
                .collect();
            for (i, &node) in nodes.iter().enumerate() {
                let c = self.cost_in(p.lan_cost);
                b.add_bidirectional(gateway, node, c).expect("lan uplink");
                // A little intra-LAN connectivity so LAN nodes can relay.
                if i > 0 {
                    let c = self.cost_in(p.lan_cost);
                    b.add_bidirectional(nodes[i - 1], node, c)
                        .expect("lan link");
                }
            }
            lan.extend(nodes);
        }

        let platform = b.build().expect("generated platform is non-empty");
        GeneratedTopology {
            platform,
            wan,
            man,
            lan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::all_reachable;

    #[test]
    fn paper_small_size_matches_paper() {
        let p = TopologyParams::paper_small();
        // ≈30 nodes total, ≈17 LAN nodes (the paper: 30 and 17).
        assert_eq!(p.node_count(), 4 + 9 + 16);
        assert_eq!(p.lans * p.lan_nodes, 16);
    }

    #[test]
    fn paper_big_size_matches_paper() {
        let p = TopologyParams::paper_big();
        assert_eq!(p.node_count(), 6 + 12 + 48);
        assert_eq!(p.lans * p.lan_nodes, 48);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = TiersLikeGenerator::reduced_scale(PlatformClass::Small, 42).generate();
        let b = TiersLikeGenerator::reduced_scale(PlatformClass::Small, 42).generate();
        assert_eq!(a.platform.node_count(), b.platform.node_count());
        assert_eq!(a.platform.edge_count(), b.platform.edge_count());
        let costs_a: Vec<f64> = a.platform.edges().map(|(_, e)| e.cost).collect();
        let costs_b: Vec<f64> = b.platform.edges().map(|(_, e)| e.cost).collect();
        assert_eq!(costs_a, costs_b);
    }

    #[test]
    fn every_node_is_reachable_from_every_wan_node() {
        for seed in 0..5 {
            let topo = TiersLikeGenerator::reduced_scale(PlatformClass::Big, seed).generate();
            let all: Vec<NodeId> = topo.platform.nodes().collect();
            for &w in &topo.wan {
                assert!(all_reachable(&topo.platform, w, &all), "seed {seed}");
            }
        }
    }

    #[test]
    fn sampled_instances_respect_density() {
        let mut gen = TiersLikeGenerator::reduced_scale(PlatformClass::Small, 7);
        let topo = gen.generate();
        let mut rng = StdRng::seed_from_u64(1);
        let inst_low = topo.sample_instance(0.0, &mut rng);
        assert_eq!(inst_low.target_count(), 1);
        let inst_full = topo.sample_instance(1.0, &mut rng);
        assert_eq!(inst_full.target_count(), topo.lan.len());
        let inst_half = topo.sample_instance(0.5, &mut rng);
        assert_eq!(
            inst_half.target_count(),
            (topo.lan.len() as f64 * 0.5).round() as usize
        );
        // Targets are LAN nodes only.
        for t in &inst_half.targets {
            assert!(topo.lan.contains(t));
        }
    }

    #[test]
    fn link_costs_are_within_the_configured_ranges() {
        let params = TopologyParams::reduced_big();
        let topo = TiersLikeGenerator::new(params.clone(), 3).generate();
        let min = params
            .wan_cost
            .0
            .min(params.man_cost.0)
            .min(params.lan_cost.0);
        let max = params
            .wan_cost
            .1
            .max(params.man_cost.1)
            .max(params.lan_cost.1);
        for (_, e) in topo.platform.edges() {
            assert!(e.cost >= min && e.cost <= max);
        }
    }
}
