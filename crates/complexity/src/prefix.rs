//! The COMPACT-PREFIX gadget (Section 4.2, Theorem 5).
//!
//! The paper extends the multicast hardness result to pipelined *parallel
//! prefix* computations: given a set-cover instance `(X, C, B)`, it builds a
//! platform (Figure 3) where
//!
//! * a processor `Ps` holds the first input `x0` and is connected to one node
//!   per subset `Ci` by cost-`1/B` links,
//! * one node `Xj` per element, fed by the `Ci` containing it through
//!   cost-`1/N` links,
//! * one node `X'j` per element, fed by `Xj` through a link of cost
//!   `u_j = 1/j - 1/(N+1)` and chained to `X'(j+1)` through a link of cost
//!   `v_j = 1/(j+1) + 1/((N+1) j)`,
//! * the participants of the parallel prefix are `Ps, X'1, ..., X'N`, all
//!   with computation speed `w = 1/N`, data sizes `f(i, j) = j - i + 1` and
//!   unit task weights.
//!
//! A cover of size at most `B` exists iff one prefix allocation scheme
//! sustains one parallel-prefix operation per time-unit. This module builds
//! the gadget and the canonical allocation scheme derived from a cover, and
//! checks the per-node send / receive / compute budgets of the forward
//! direction of the proof.

use crate::set_cover::SetCoverInstance;
use pm_platform::graph::{NodeId, PlatformBuilder};
use pm_platform::Platform;
use serde::{Deserialize, Serialize};

/// The parallel-prefix gadget built from a set-cover instance.
#[derive(Debug, Clone)]
pub struct PrefixGadget {
    /// The platform graph of Figure 3.
    pub platform: Platform,
    /// The source `Ps` (holds `x0`).
    pub source: NodeId,
    /// One node per subset `Ci`.
    pub subset_nodes: Vec<NodeId>,
    /// One node `Xj` per element.
    pub element_nodes: Vec<NodeId>,
    /// One node `X'j` per element; together with `Ps` they are the
    /// participants `P = {P0, .., PN}` of the parallel prefix.
    pub prime_nodes: Vec<NodeId>,
    /// The decision bound `B`.
    pub bound: usize,
    /// The originating set-cover instance.
    pub set_cover: SetCoverInstance,
}

/// Per-node time budget of one period of the canonical allocation scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeBudget {
    /// Time each node spends sending during one period.
    pub send: Vec<f64>,
    /// Time each node spends receiving during one period.
    pub recv: Vec<f64>,
    /// Time each node spends computing during one period.
    pub compute: Vec<f64>,
}

impl SchemeBudget {
    /// The largest budget over all nodes and resources — the scheme sustains
    /// one parallel prefix per time-unit iff this is at most 1.
    pub fn max(&self) -> f64 {
        self.send
            .iter()
            .chain(self.recv.iter())
            .chain(self.compute.iter())
            .copied()
            .fold(0.0, f64::max)
    }
}

impl PrefixGadget {
    /// Cost `u_j` of the link `Xj -> X'j` (1-indexed `j`).
    pub fn u(n: usize, j: usize) -> f64 {
        1.0 / j as f64 - 1.0 / (n as f64 + 1.0)
    }

    /// Cost `v_j` of the link `X'j -> X'(j+1)` (1-indexed `j < N`).
    pub fn v(n: usize, j: usize) -> f64 {
        1.0 / (j as f64 + 1.0) + 1.0 / ((n as f64 + 1.0) * j as f64)
    }

    /// Builds the gadget of Figure 3 for the decision bound `bound`.
    pub fn new(set_cover: &SetCoverInstance, bound: usize) -> Self {
        assert!(bound >= 1);
        let n = set_cover.universe();
        let mut b = PlatformBuilder::new();
        let source = b.add_named_node("Ps");
        let subset_nodes: Vec<NodeId> = (0..set_cover.num_subsets())
            .map(|i| b.add_named_node(&format!("C{}", i + 1)))
            .collect();
        let element_nodes: Vec<NodeId> = (0..n)
            .map(|j| b.add_named_node(&format!("X{}", j + 1)))
            .collect();
        let prime_nodes: Vec<NodeId> = (0..n)
            .map(|j| b.add_named_node(&format!("X'{}", j + 1)))
            .collect();
        for &c in &subset_nodes {
            b.add_edge(source, c, 1.0 / bound as f64).expect("Ps -> Ci");
        }
        for (i, subset) in set_cover.subsets().iter().enumerate() {
            for &j in subset {
                b.add_edge(subset_nodes[i], element_nodes[j], 1.0 / n as f64)
                    .expect("Ci -> Xj");
            }
        }
        for j in 1..=n {
            b.add_edge(element_nodes[j - 1], prime_nodes[j - 1], Self::u(n, j))
                .expect("Xj -> X'j");
        }
        for j in 1..n {
            b.add_edge(prime_nodes[j - 1], prime_nodes[j], Self::v(n, j))
                .expect("X'j -> X'(j+1)");
        }
        let platform = b.build().expect("prefix gadget platform");
        PrefixGadget {
            platform,
            source,
            subset_nodes,
            element_nodes,
            prime_nodes,
            bound,
            set_cover: set_cover.clone(),
        }
    }

    /// Computation speed `w(P)` of the participants (`1/N`).
    pub fn participant_speed(&self) -> f64 {
        1.0 / self.set_cover.universe() as f64
    }

    /// Builds the per-node time budget of the canonical allocation scheme of
    /// the proof of Theorem 5 for the given cover: during each period,
    ///
    /// 1. `Ps` sends `x0` to the chosen subsets (`|cover| * 1/B`),
    /// 2. each chosen `Ci` forwards `x0` to the elements it is responsible
    ///    for (leftmost rule), at `1/N` each,
    /// 3. each `Xj` forwards `x0` to `X'j` (cost `u_j`),
    /// 4. each `X'j` (`j < N`) sends the `j` values `x1..xj` to `X'(j+1)`
    ///    (cost `j * v_j`),
    /// 5. each `X'j` computes the `j` reduction tasks of
    ///    `y_j = (..(x0 ⊕ x1) ⊕ ..) ⊕ x_j` at speed `1/N`.
    pub fn scheme_budget(&self, cover: &[usize]) -> SchemeBudget {
        let n = self.set_cover.universe();
        let num_nodes = self.platform.node_count();
        let mut send = vec![0.0; num_nodes];
        let mut recv = vec![0.0; num_nodes];
        let mut compute = vec![0.0; num_nodes];
        let mut chosen = cover.to_vec();
        chosen.sort_unstable();
        chosen.dedup();

        // (1) Ps -> chosen Ci.
        for &i in &chosen {
            let cost = 1.0 / self.bound as f64;
            send[self.source.index()] += cost;
            recv[self.subset_nodes[i].index()] += cost;
        }
        // (2) Ci -> Xj with the leftmost rule.
        for (j, &x) in self.element_nodes.iter().enumerate() {
            let parent = chosen
                .iter()
                .copied()
                .find(|&i| self.set_cover.subsets()[i].contains(&j));
            if let Some(i) = parent {
                let cost = 1.0 / n as f64;
                send[self.subset_nodes[i].index()] += cost;
                recv[x.index()] += cost;
            }
        }
        // (3) Xj -> X'j.
        for j in 1..=n {
            let cost = Self::u(n, j);
            send[self.element_nodes[j - 1].index()] += cost;
            recv[self.prime_nodes[j - 1].index()] += cost;
        }
        // (4) X'j -> X'(j+1): j single values of size 1 each.
        for j in 1..n {
            let cost = j as f64 * Self::v(n, j);
            send[self.prime_nodes[j - 1].index()] += cost;
            recv[self.prime_nodes[j].index()] += cost;
        }
        // (5) Computation: X'j performs j unit tasks at speed 1/N.
        for j in 1..=n {
            compute[self.prime_nodes[j - 1].index()] += j as f64 * self.participant_speed();
        }
        SchemeBudget {
            send,
            recv,
            compute,
        }
    }

    /// Verifies the forward direction of Theorem 5: with a cover of size at
    /// most `B`, the canonical scheme sustains one parallel prefix per
    /// time-unit (budget at most 1 everywhere).
    pub fn verify_forward_direction(&self) -> (bool, f64) {
        let cover = self.set_cover.minimum_cover();
        let budget = self.scheme_budget(&cover);
        (cover.len() <= self.bound, budget.max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_costs_match_the_paper_formulas() {
        let n = 8;
        // u_1 = 1 - 1/(N+1) = N/(N+1)
        assert!((PrefixGadget::u(n, 1) - 8.0 / 9.0).abs() < 1e-12);
        // The receive time of X'_i (i >= 2) is u_i + (i-1) v_{i-1} = 1.
        for i in 2..=n {
            let recv = PrefixGadget::u(n, i) + (i as f64 - 1.0) * PrefixGadget::v(n, i - 1);
            assert!((recv - 1.0).abs() < 1e-12, "i = {i}: {recv}");
        }
        // The send time of X'_i (i < N) is i * v_i = i/(i+1) + 1/(N+1) <= 1.
        for i in 1..n {
            let send = i as f64 * PrefixGadget::v(n, i);
            let expected = i as f64 / (i as f64 + 1.0) + 1.0 / (n as f64 + 1.0);
            assert!((send - expected).abs() < 1e-12);
            assert!(send <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn gadget_shape_matches_figure3() {
        let sc = SetCoverInstance::paper_example();
        let g = PrefixGadget::new(&sc, 2);
        // 1 + |C| + N + N nodes.
        assert_eq!(g.platform.node_count(), 1 + 4 + 8 + 8);
        // |C| + memberships + N + (N - 1) edges.
        let memberships: usize = sc.subsets().iter().map(|s| s.len()).sum();
        assert_eq!(g.platform.edge_count(), 4 + memberships + 8 + 7);
        assert!((g.participant_speed() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn cover_of_size_b_gives_a_unit_period_scheme() {
        let sc = SetCoverInstance::paper_example();
        let g = PrefixGadget::new(&sc, 2);
        let (has_cover, max_budget) = g.verify_forward_direction();
        assert!(has_cover);
        assert!(
            max_budget <= 1.0 + 1e-9,
            "the canonical scheme must fit in one time-unit, got {max_budget}"
        );
        // The budget is tight at the receive port of the X' chain.
        assert!(max_budget >= 1.0 - 1e-9);
    }

    #[test]
    fn undersized_bound_blows_the_source_budget() {
        let sc = SetCoverInstance::paper_example();
        // The minimum cover has size 2; with B = 1 the source cannot serve it
        // within one time-unit.
        let g = PrefixGadget::new(&sc, 1);
        let (has_cover, max_budget) = g.verify_forward_direction();
        assert!(!has_cover);
        assert!(max_budget > 1.0 + 1e-9);
    }

    #[test]
    fn compute_budget_is_at_most_one() {
        let sc = SetCoverInstance::paper_example();
        let g = PrefixGadget::new(&sc, 2);
        let cover = sc.minimum_cover();
        let budget = g.scheme_budget(&cover);
        for &c in &budget.compute {
            assert!(c <= 1.0 + 1e-12);
        }
        // X'_N computes N tasks at speed 1/N: exactly one time-unit.
        let last = g.prime_nodes.last().unwrap();
        assert!((budget.compute[last.index()] - 1.0).abs() < 1e-12);
    }
}
