//! # pm-complexity
//!
//! Executable versions of the paper's NP-completeness reductions: the
//! MINIMUM-SET-COVER problem itself ([`set_cover`]), the reduction to
//! COMPACT-MULTICAST of Theorems 1–3 ([`multicast_reduction`]) and the
//! reduction to COMPACT-PREFIX of Theorem 5 ([`prefix`]).
//!
//! These modules serve two purposes: they document the complexity results of
//! Section 4 as runnable code, and they provide hard worst-case instances for
//! stress-testing the heuristics (a multicast gadget where the optimal single
//! tree corresponds to an optimal set cover).

pub mod multicast_reduction;
pub mod prefix;
pub mod set_cover;

pub use multicast_reduction::MulticastGadget;
pub use prefix::{PrefixGadget, SchemeBudget};
pub use set_cover::{SetCoverError, SetCoverInstance};
