//! The reduction MINIMUM-SET-COVER → COMPACT-MULTICAST (Theorems 1–3).
//!
//! Given a set-cover instance `(X, C, B)`, the paper builds a multicast
//! platform (Figure 2) with a source, one relay node per subset `Ci`
//! (connected to the source by a cost-`1/B` link) and one target node per
//! element `Xj` (connected to `Ci` by a cost-`1/N` link whenever `Xj ∈ Ci`).
//! Then a cover of size at most `B` exists **iff** a single multicast tree of
//! throughput at least 1 exists; more precisely, a cover of size `K` maps to
//! a tree of period `K/B`, and conversely.
//!
//! This module builds the gadget, converts covers to trees and trees to
//! covers, and verifies the correspondence — making the complexity proof
//! executable.

use crate::set_cover::SetCoverInstance;
use pm_platform::graph::{NodeId, PlatformBuilder};
use pm_platform::instances::MulticastInstance;
use pm_sched::tree::{MulticastTree, TreeError};

/// The COMPACT-MULTICAST gadget built from a set-cover instance.
#[derive(Debug, Clone)]
pub struct MulticastGadget {
    /// The multicast instance (platform, source, targets).
    pub instance: MulticastInstance,
    /// The bound `B` of the set-cover decision problem.
    pub bound: usize,
    /// Node of each subset `Ci`.
    pub subset_nodes: Vec<NodeId>,
    /// Node of each element `Xj` (these are the targets).
    pub element_nodes: Vec<NodeId>,
    /// The originating set-cover instance.
    pub set_cover: SetCoverInstance,
}

impl MulticastGadget {
    /// Builds the gadget of Figure 2 for the decision bound `bound` (`B`).
    pub fn new(set_cover: &SetCoverInstance, bound: usize) -> Self {
        assert!(bound >= 1, "the set-cover bound must be at least 1");
        let n = set_cover.universe();
        let mut b = PlatformBuilder::new();
        let source = b.add_named_node("Psource");
        let subset_nodes: Vec<NodeId> = (0..set_cover.num_subsets())
            .map(|i| b.add_named_node(&format!("C{}", i + 1)))
            .collect();
        let element_nodes: Vec<NodeId> = (0..n)
            .map(|j| b.add_named_node(&format!("X{}", j + 1)))
            .collect();
        for &c in &subset_nodes {
            b.add_edge(source, c, 1.0 / bound as f64)
                .expect("source -> Ci edge");
        }
        for (i, subset) in set_cover.subsets().iter().enumerate() {
            for &j in subset {
                b.add_edge(subset_nodes[i], element_nodes[j], 1.0 / n as f64)
                    .expect("Ci -> Xj edge");
            }
        }
        let platform = b.build().expect("gadget platform");
        let instance = MulticastInstance::new(platform, source, element_nodes.clone())
            .expect("gadget instance (the set-cover instance is coverable)");
        MulticastGadget {
            instance,
            bound,
            subset_nodes,
            element_nodes,
            set_cover: set_cover.clone(),
        }
    }

    /// Builds the single multicast tree associated to a cover, following the
    /// forward direction of the proof of Theorem 1: the source serves exactly
    /// the chosen subsets, and each element receives the message from the
    /// *leftmost* chosen subset containing it.
    pub fn cover_to_tree(&self, cover: &[usize]) -> Result<MulticastTree, TreeError> {
        let platform = &self.instance.platform;
        let mut chosen = cover.to_vec();
        chosen.sort_unstable();
        chosen.dedup();
        let mut edges = Vec::new();
        for &i in &chosen {
            let e = platform
                .find_edge(self.instance.source, self.subset_nodes[i])
                .expect("source -> Ci edge exists");
            edges.push(e);
        }
        for (j, &x) in self.element_nodes.iter().enumerate() {
            // Leftmost chosen subset containing element j.
            let parent = chosen
                .iter()
                .copied()
                .find(|&i| self.set_cover.subsets()[i].contains(&j));
            if let Some(i) = parent {
                let e = platform
                    .find_edge(self.subset_nodes[i], x)
                    .expect("Ci -> Xj edge exists for covered elements");
                edges.push(e);
            }
        }
        MulticastTree::new(&self.instance, edges)
    }

    /// Extracts the cover associated to a single multicast tree (the backward
    /// direction of the proof): the chosen subsets are the `Ci` nodes used by
    /// the tree.
    pub fn tree_to_cover(&self, tree: &MulticastTree) -> Vec<usize> {
        let platform = &self.instance.platform;
        let mut cover: Vec<usize> = self
            .subset_nodes
            .iter()
            .enumerate()
            .filter(|(_, &c)| tree.covers(platform, c))
            .map(|(i, _)| i)
            .collect();
        cover.sort_unstable();
        cover
    }

    /// The period of the single tree built from a cover of size `K` is
    /// `max(K/B, 1)` — in particular it is exactly 1 when `K <= B` (using the
    /// normalised time-unit of the proof, where the element fan-out fits in
    /// one time-unit).
    pub fn expected_tree_period(&self, cover_size: usize) -> f64 {
        (cover_size as f64 / self.bound as f64).max(1.0)
    }

    /// Verifies the equivalence of Theorem 1 on this gadget, using the exact
    /// set-cover solver: a cover of size at most `B` exists iff a single
    /// multicast tree of period at most 1 (throughput at least 1) exists.
    ///
    /// Returns `(has_cover, best_tree_period)`.
    pub fn verify_theorem1(&self) -> (bool, f64) {
        let minimum = self.set_cover.minimum_cover();
        let has_cover = minimum.len() <= self.bound;
        let tree = self
            .cover_to_tree(&minimum)
            .expect("a minimum cover always yields a valid tree");
        let period = tree.period(&self.instance.platform);
        (has_cover, period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_shape_matches_figure2() {
        let sc = SetCoverInstance::paper_example();
        let gadget = MulticastGadget::new(&sc, 2);
        let p = &gadget.instance.platform;
        // 1 source + 4 subsets + 8 elements.
        assert_eq!(p.node_count(), 13);
        // 4 source->Ci edges + one edge per (Ci, Xj) membership.
        let memberships: usize = sc.subsets().iter().map(|s| s.len()).sum();
        assert_eq!(p.edge_count(), 4 + memberships);
        assert_eq!(gadget.instance.target_count(), 8);
        // Edge costs: 1/B to the subsets, 1/N to the elements.
        let e = p
            .find_edge(gadget.instance.source, gadget.subset_nodes[0])
            .unwrap();
        assert!((p.cost(e) - 0.5).abs() < 1e-12);
        let e = p
            .find_edge(gadget.subset_nodes[0], gadget.element_nodes[0])
            .unwrap();
        assert!((p.cost(e) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn cover_maps_to_unit_period_tree() {
        let sc = SetCoverInstance::paper_example();
        let gadget = MulticastGadget::new(&sc, 2);
        let cover = sc.minimum_cover();
        assert_eq!(cover.len(), 2);
        let tree = gadget.cover_to_tree(&cover).unwrap();
        // The source sends 2 messages on cost-1/2 links: send time 1.
        // Each chosen subset forwards to at most 8 elements on 1/8 links.
        let period = tree.period(&gadget.instance.platform);
        assert!((period - 1.0).abs() < 1e-9);
        assert!((gadget.expected_tree_period(cover.len()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_cover_maps_to_slower_tree() {
        let sc = SetCoverInstance::paper_example();
        let gadget = MulticastGadget::new(&sc, 2);
        // Use all four subsets: the source now needs 4 * 1/2 = 2 time-units.
        let tree = gadget.cover_to_tree(&[0, 1, 2, 3]).unwrap();
        let period = tree.period(&gadget.instance.platform);
        assert!((period - 2.0).abs() < 1e-9);
        assert!((gadget.expected_tree_period(4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tree_to_cover_roundtrip() {
        let sc = SetCoverInstance::paper_example();
        let gadget = MulticastGadget::new(&sc, 2);
        let cover = vec![0, 3];
        let tree = gadget.cover_to_tree(&cover).unwrap();
        let back = gadget.tree_to_cover(&tree);
        assert_eq!(back, cover);
        assert!(sc.is_cover(&back));
    }

    #[test]
    fn theorem1_equivalence_on_random_instances() {
        for seed in 0..10u64 {
            let sc = SetCoverInstance::random(6, 5, seed);
            let optimum = sc.minimum_cover().len();
            // With B = optimum, a cover of size <= B exists and the associated
            // tree has period exactly 1 (throughput 1).
            let gadget = MulticastGadget::new(&sc, optimum);
            let (has_cover, period) = gadget.verify_theorem1();
            assert!(has_cover, "seed {seed}");
            assert!((period - 1.0).abs() < 1e-9, "seed {seed}: period {period}");
            // With B = optimum - 1 (when possible), no cover exists and the
            // best single tree built from a minimum cover has period > 1.
            if optimum > 1 {
                let tight = MulticastGadget::new(&sc, optimum - 1);
                let (has_cover, period) = tight.verify_theorem1();
                assert!(!has_cover, "seed {seed}");
                assert!(period > 1.0 + 1e-9, "seed {seed}: period {period}");
            }
        }
    }
}
