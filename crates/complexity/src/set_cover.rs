//! MINIMUM-SET-COVER instances and solvers.
//!
//! The paper's NP-completeness results (Theorems 1, 2, 3 and 5) all reduce
//! from MINIMUM-SET-COVER. This module provides the combinatorial side of
//! those reductions: instances, a greedy `O(ln n)`-approximation, and an
//! exact branch-and-bound solver used to verify the reductions on small
//! instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An instance of MINIMUM-SET-COVER: a universe `X = {0, .., universe - 1}`
/// and a collection `C` of subsets of `X`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetCoverInstance {
    universe: usize,
    subsets: Vec<Vec<usize>>,
}

/// Errors raised while building a set-cover instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetCoverError {
    /// A subset references an element outside the universe.
    ElementOutOfRange { subset: usize, element: usize },
    /// The union of all subsets does not cover the universe: no cover exists.
    NotCoverable(usize),
    /// The universe is empty.
    EmptyUniverse,
}

impl fmt::Display for SetCoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetCoverError::ElementOutOfRange { subset, element } => {
                write!(f, "subset {subset} contains out-of-range element {element}")
            }
            SetCoverError::NotCoverable(e) => write!(f, "element {e} belongs to no subset"),
            SetCoverError::EmptyUniverse => write!(f, "empty universe"),
        }
    }
}

impl std::error::Error for SetCoverError {}

impl SetCoverInstance {
    /// Builds and validates an instance. Subsets are deduplicated internally
    /// (element lists are sorted and deduplicated).
    pub fn new(universe: usize, subsets: Vec<Vec<usize>>) -> Result<Self, SetCoverError> {
        if universe == 0 {
            return Err(SetCoverError::EmptyUniverse);
        }
        let mut cleaned = Vec::with_capacity(subsets.len());
        let mut covered = vec![false; universe];
        for (i, mut s) in subsets.into_iter().enumerate() {
            s.sort_unstable();
            s.dedup();
            for &e in &s {
                if e >= universe {
                    return Err(SetCoverError::ElementOutOfRange {
                        subset: i,
                        element: e,
                    });
                }
                covered[e] = true;
            }
            cleaned.push(s);
        }
        if let Some(missing) = covered.iter().position(|&c| !c) {
            return Err(SetCoverError::NotCoverable(missing));
        }
        Ok(SetCoverInstance {
            universe,
            subsets: cleaned,
        })
    }

    /// The running example used in Figure 2 of the paper:
    /// `X = {X1..X8}`, `C = {{1,2,3,4}, {3,4,5}, {4,5,6}, {5,6,7,8}}`
    /// (re-indexed from 0 here).
    pub fn paper_example() -> Self {
        SetCoverInstance::new(
            8,
            vec![
                vec![0, 1, 2, 3],
                vec![2, 3, 4],
                vec![3, 4, 5],
                vec![4, 5, 6, 7],
            ],
        )
        .expect("paper example is a valid instance")
    }

    /// A random coverable instance (useful for property tests).
    pub fn random(universe: usize, num_subsets: usize, seed: u64) -> Self {
        assert!(universe >= 1 && num_subsets >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut subsets: Vec<Vec<usize>> = (0..num_subsets)
            .map(|_| {
                (0..universe)
                    .filter(|_| rng.gen_bool(0.4))
                    .collect::<Vec<_>>()
            })
            .collect();
        // Guarantee coverability by spreading the leftover elements.
        let mut covered = vec![false; universe];
        for s in &subsets {
            for &e in s {
                covered[e] = true;
            }
        }
        for (e, &c) in covered.iter().enumerate() {
            if !c {
                let idx = rng.gen_range(0..num_subsets);
                subsets[idx].push(e);
            }
        }
        SetCoverInstance::new(universe, subsets).expect("random instance is coverable")
    }

    /// Size of the universe `|X|`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The collection `C`.
    pub fn subsets(&self) -> &[Vec<usize>] {
        &self.subsets
    }

    /// Number of subsets `|C|`.
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    /// Whether the given selection of subset indices covers the universe.
    pub fn is_cover(&self, selection: &[usize]) -> bool {
        let mut covered = vec![false; self.universe];
        for &i in selection {
            if i >= self.subsets.len() {
                return false;
            }
            for &e in &self.subsets[i] {
                covered[e] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// The classical greedy cover: repeatedly pick the subset covering the
    /// most still-uncovered elements. Guarantees a `1 + ln |X|` approximation
    /// ratio.
    pub fn greedy_cover(&self) -> Vec<usize> {
        let mut covered = vec![false; self.universe];
        let mut remaining = self.universe;
        let mut picked = Vec::new();
        while remaining > 0 {
            let (best, gain) = self
                .subsets
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.iter().filter(|&&e| !covered[e]).count()))
                .max_by_key(|&(_, gain)| gain)
                .expect("instance is coverable");
            debug_assert!(gain > 0, "coverable instance always has positive gain");
            picked.push(best);
            for &e in &self.subsets[best] {
                if !covered[e] {
                    covered[e] = true;
                    remaining -= 1;
                }
            }
        }
        picked
    }

    /// The exact minimum cover, by branch and bound on the elements (always
    /// branching on the first uncovered element, over the subsets containing
    /// it). Exponential in the worst case: intended for the small instances
    /// used in tests and in the reduction experiments.
    pub fn minimum_cover(&self) -> Vec<usize> {
        let mut best: Vec<usize> = self.greedy_cover();
        let mut current: Vec<usize> = Vec::new();
        let mut covered = vec![0usize; self.universe];
        // containing[e] = subsets containing element e.
        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); self.universe];
        for (i, s) in self.subsets.iter().enumerate() {
            for &e in s {
                containing[e].push(i);
            }
        }
        self.branch(&containing, &mut covered, &mut current, &mut best);
        best
    }

    fn branch(
        &self,
        containing: &[Vec<usize>],
        covered: &mut Vec<usize>,
        current: &mut Vec<usize>,
        best: &mut Vec<usize>,
    ) {
        if current.len() + 1 > best.len() {
            return; // cannot improve
        }
        let first_uncovered = covered.iter().position(|&c| c == 0);
        let Some(e) = first_uncovered else {
            // Complete cover, strictly better than the incumbent.
            *best = current.clone();
            return;
        };
        for &s in &containing[e] {
            current.push(s);
            for &x in &self.subsets[s] {
                covered[x] += 1;
            }
            self.branch(containing, covered, current, best);
            for &x in &self.subsets[s] {
                covered[x] -= 1;
            }
            current.pop();
        }
    }

    /// Whether a cover of size at most `bound` exists (the decision problem
    /// MINIMUM-SET-COVER(`X`, `C`, `B`) used in the reductions).
    pub fn has_cover_of_size(&self, bound: usize) -> bool {
        self.minimum_cover().len() <= bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(matches!(
            SetCoverInstance::new(0, vec![]),
            Err(SetCoverError::EmptyUniverse)
        ));
        assert!(matches!(
            SetCoverInstance::new(3, vec![vec![0, 5]]),
            Err(SetCoverError::ElementOutOfRange { .. })
        ));
        assert!(matches!(
            SetCoverInstance::new(3, vec![vec![0, 1]]),
            Err(SetCoverError::NotCoverable(2))
        ));
        let inst = SetCoverInstance::new(3, vec![vec![0, 1, 1], vec![2]]).unwrap();
        assert_eq!(inst.subsets()[0], vec![0, 1]);
    }

    #[test]
    fn paper_example_minimum_cover_has_size_two() {
        let inst = SetCoverInstance::paper_example();
        assert_eq!(inst.universe(), 8);
        assert_eq!(inst.num_subsets(), 4);
        let exact = inst.minimum_cover();
        assert_eq!(exact.len(), 2, "C1 and C4 cover everything");
        assert!(inst.is_cover(&exact));
        assert!(inst.has_cover_of_size(2));
        assert!(!inst.has_cover_of_size(1));
    }

    #[test]
    fn greedy_is_a_cover_and_exact_is_no_larger() {
        for seed in 0..20u64 {
            let inst = SetCoverInstance::random(10, 6, seed);
            let greedy = inst.greedy_cover();
            let exact = inst.minimum_cover();
            assert!(inst.is_cover(&greedy), "seed {seed}");
            assert!(inst.is_cover(&exact), "seed {seed}");
            assert!(exact.len() <= greedy.len(), "seed {seed}");
        }
    }

    #[test]
    fn is_cover_rejects_partial_selections() {
        let inst = SetCoverInstance::paper_example();
        assert!(!inst.is_cover(&[0]));
        assert!(!inst.is_cover(&[99]));
        assert!(inst.is_cover(&[0, 1, 2, 3]));
    }
}
