//! Sparse revised simplex with pluggable basis factorizations and warm
//! starts.
//!
//! The engine never forms `B⁻¹` explicitly: all products go through a
//! [`crate::basis::BasisFactorization`]. The default is a sparse LU
//! factorization with Forrest–Tomlin pivot updates
//! ([`crate::basis::LuBasis`]); the historical product-form eta file
//! ([`crate::basis::EtaBasis`]) stays selectable with `PM_LP_BASIS=eta` as
//! a differential oracle. See [`crate::solver::BasisKind`].
//!
//! Each iteration works on sparse columns only:
//!
//! * BTRAN of the basic costs gives the pricing vector `y`,
//! * entering-column selection depends on the basis engine: the LU path
//!   prices with devex reference-framework weights over incrementally
//!   maintained reduced costs (recomputed from scratch whenever the
//!   factorization changes, and re-verified before declaring optimality);
//!   the eta path keeps the legacy Dantzig rule over rotating
//!   partial-pricing sections. Both switch to Bland's rule after a stall,
//! * FTRAN of the entering column feeds the ratio test.
//!
//! The anti-degeneracy toolkit of the dense engine is ported verbatim: the
//! shadow-RHS perturbation (inequality rows relaxed by a tiny seeded amount,
//! solution values read from an unperturbed shadow carried through the same
//! pivots), the Dantzig→Bland stall switch, and the seeded reservoir
//! tie-break in the ratio test — so solves stay bit-reproducible.
//!
//! **Warm starts**: [`solve_with_hint`] accepts the [`Basis`] returned by a
//! previous solve of a structurally identical problem and, when that basis
//! is still primal feasible, skips phase 1 entirely. [`WarmStartCache`]
//! automates this for solver-agnostic callers: inside a
//! [`WarmStartCache::scope`], every [`crate::LpProblem::solve`] call looks
//! up the basis of the last solve with the same constraint pattern.

use crate::basis::{BasisFactorization, BasisRepr};
use crate::chaos::{ChaosFault, ChaosPlan};
use crate::problem::{LpError, LpProblem, LpSolution, Objective, Relation, VarId};
use crate::solver::{
    effective_relation, perturb_rhs, phase1_budget, phase2_budget, splitmix64, stats_enabled,
    BasisKind, SolveBudget,
};
use crate::sparse::CscMatrix;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Numerical tolerance (same value as the dense engine).
const EPS: f64 = 1e-9;

/// Reduced-cost/ratio pivot element below this magnitude is numerically
/// untrustworthy: the solver refactorizes, and skips the column if the
/// fresh factorization agrees.
const PIVOT_TOL: f64 = 1e-7;

/// Consecutive non-improving pivots before switching Dantzig → Bland
/// (mirrors the dense engine).
const STALL_SWITCH: usize = 64;

/// Pivots between scheduled refactorizations.
const REFACTOR_EVERY: usize = 128;

/// Solution-vector increments smaller than this are skipped in pivot
/// updates (same drop tolerance the basis factorizations use for their
/// stored vectors).
const ETA_DROP: f64 = 1e-12;

/// An optimal basis, reusable as a warm-start hint for a structurally
/// identical problem.
///
/// One entry per constraint row: the column (structural variable or
/// slack/surplus) basic in that row, or [`Basis::REDUNDANT`] when the row's
/// artificial variable stayed basic at level zero (a redundant constraint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    cols: Vec<usize>,
}

impl Basis {
    /// Marker for rows whose artificial variable remained basic.
    pub const REDUNDANT: usize = usize::MAX;

    /// The basic column of each row (see the type-level docs).
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }
}

/// How a warm-start hint fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStatus {
    /// No hint was offered: a cold solve.
    None,
    /// The hinted basis was primal feasible (possibly after the bound-repair
    /// pivots of [`resolve_with_bounds`]) and phase 1 was skipped.
    Hit,
    /// A hint was offered but rejected (singular or infeasible): cold solve.
    Miss,
}

/// Bound and RHS updates applied on top of an [`LpProblem`] for one solve,
/// without mutating the problem.
///
/// This is the re-solve surface behind the masked sub-platform formulations:
/// one immutable template LP is shared (even across threads) and each
/// candidate sub-platform is expressed as an overlay — extra variables fixed
/// to zero plus RHS overrides — so every candidate keeps the template's
/// constraint pattern and can warm-start from any previous candidate's
/// basis.
///
/// RHS overrides must not flip the sign of the stored RHS: the sign decides
/// the row's slack/artificial layout, so a sign change builds a structurally
/// different standard form than the signature (and any basis hint) assumes.
/// Correctness is preserved regardless — a mismatched hint is rejected and
/// the solve falls back cold — but the warm start is lost.
#[derive(Debug, Clone, Default)]
pub struct BoundsOverlay {
    /// Variables fixed to zero for this solve (on top of the problem's own
    /// [`LpProblem::is_fixed`] marks).
    pub fix_zero: Vec<VarId>,
    /// `(row, rhs)` overrides of constraint right-hand sides.
    pub rhs: Vec<(usize, f64)>,
}

impl BoundsOverlay {
    /// An empty overlay (no fixes, no RHS overrides).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of installing a warm-start hint (see [`Engine::try_warm_start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarmInstall {
    /// Singular or primal infeasible: cold basis restored.
    Rejected,
    /// Feasible under the current bounds: phase 1 skipped.
    Ready,
    /// Non-negative but some basic artificial/fixed column is positive: the
    /// bound-repair phase runs before phase 2.
    NeedsRepair,
}

/// What tripped the recovery ladder into escalating past an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryTrigger {
    /// A basis refactorization reported a singular (or numerically
    /// collapsed) basis.
    SingularBasis,
    /// A NaN or infinity was detected in the solution vector or a pivot
    /// ratio.
    NonFinite,
    /// The pricing loop exhausted its internal iteration budget (a stall),
    /// or every improving column was numerically banned.
    IterationLimit,
}

/// The recovery-ladder rung that produced the final answer. Each rung is a
/// full deterministic solve attempt; healthy solves stop at
/// [`RecoveryRung::First`] with one attempt, byte-identical to a
/// ladder-less engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryRung {
    /// The ordinary first attempt (warm-started when a hint was given).
    First,
    /// The warm-start hint was discarded and the solve restarted cold.
    Cold,
    /// Cold restart under aggressive refactorization (every
    /// [`AGGRESSIVE_REFACTOR_EVERY`] pivots), to shed numerical drift.
    AggressiveRefactor,
    /// Cold restart on the *other* basis backend (LU↔eta, relative to the
    /// session default).
    SwappedBasis,
    /// Cold restart under Bland's rule from the first pivot (slow but
    /// cycling-proof).
    Bland,
    /// The dense-tableau oracle — the last resort, immune to every sparse
    /// failure mode.
    Dense,
}

impl RecoveryRung {
    /// The rung's position on the ladder (0 = first attempt, 5 = dense).
    pub fn index(self) -> usize {
        match self {
            RecoveryRung::First => 0,
            RecoveryRung::Cold => 1,
            RecoveryRung::AggressiveRefactor => 2,
            RecoveryRung::SwappedBasis => 3,
            RecoveryRung::Bland => 4,
            RecoveryRung::Dense => 5,
        }
    }
}

/// Refactorization cadence of the [`RecoveryRung::AggressiveRefactor`]
/// rung.
pub const AGGRESSIVE_REFACTOR_EVERY: usize = 16;

/// Per-solve diagnostics (printed on `PM_LP_STATS=1`, returned by
/// [`solve_with_hint`]).
#[derive(Debug, Clone, Copy)]
pub struct SolveStats {
    /// Constraint rows.
    pub m: usize,
    /// Total columns (structural + slack + artificial).
    pub n: usize,
    /// Stored nonzeros of the full constraint matrix.
    pub nnz: usize,
    /// Phase-1 pivots (0 when phase 1 was skipped).
    pub phase1_pivots: usize,
    /// Phase-2 pivots.
    pub phase2_pivots: usize,
    /// Basis refactorizations performed.
    pub refactorizations: usize,
    /// Which basis factorization ran the solve (see
    /// [`crate::solver::BasisKind`]).
    pub basis: BasisKind,
    /// Warm-start outcome.
    pub warm: WarmStatus,
    /// Wall-clock seconds spent in the solve.
    pub wall_s: f64,
    /// Total recovery-ladder attempts (1 for a healthy solve).
    pub attempts: usize,
    /// The ladder rung that produced the result.
    pub rung: RecoveryRung,
    /// What tripped the ladder, when more than one attempt ran.
    pub trigger: Option<RecoveryTrigger>,
    /// Whether the solution is a budget-degraded anytime point (see
    /// [`crate::solver::SolveBudget`]).
    pub degraded: bool,
}

/// A successful revised-simplex solve: the solution plus the optimal basis
/// (for warm-starting the next structurally identical problem) and the
/// solve diagnostics.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The optimal solution.
    pub solution: LpSolution,
    /// The optimal basis.
    pub basis: Basis,
    /// Solve diagnostics.
    pub stats: SolveStats,
}

/// Devex reference-framework pricing state (the LU path's entering rule).
///
/// Reduced costs are maintained incrementally across pivots — the exact
/// algebraic update `rc_j −= α_rj · rc_q / α_rq` over the pivot row `α` —
/// and recomputed from scratch (BTRAN of the basic costs + one pass over
/// the matrix) whenever the factorization changes or optimality is about to
/// be declared, so drift can never certify a wrong optimum. Weights follow
/// the classical devex reference-framework recurrence with the framework
/// reset whenever a weight overflows its trust range.
#[derive(Debug)]
struct DevexPricing {
    /// CSR mirror of the constraint matrix (row pointers, column indices,
    /// values) for gathering the pivot row `α = ρᵀA` sparsely.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
    /// Maintained reduced costs, one per column.
    rc: Vec<f64>,
    /// Devex reference weights, one per column.
    weights: Vec<f64>,
    /// Whether `rc` reflects the current basis (false forces a recompute).
    valid: bool,
    /// Whether any pivot was applied since the last full recompute (a dirty
    /// `rc` may have drifted and must be re-verified before concluding
    /// optimality or unboundedness).
    dirty: bool,
    /// Scratch: the pivot row `α` scattered by column, with its pattern in
    /// `acols` (deduplicated through `astamp`/`aepoch`).
    alpha: Vec<f64>,
    acols: Vec<u32>,
    astamp: Vec<u32>,
    aepoch: u32,
    /// Scratch: `ρ = B⁻ᵀ e_r` for the pivot row.
    rho: Vec<f64>,
}

impl DevexPricing {
    fn new(a: &CscMatrix, m: usize, n_total: usize) -> Self {
        let (row_ptr, col_idx, vals) = a.to_csr();
        DevexPricing {
            row_ptr,
            col_idx,
            vals,
            rc: vec![0.0; n_total],
            weights: vec![1.0; n_total],
            valid: false,
            dirty: false,
            alpha: vec![0.0; n_total],
            acols: Vec::new(),
            astamp: vec![0; n_total],
            aepoch: 0,
            rho: vec![0.0; m],
        }
    }

    /// The pivot-row entry for column `j` from the last
    /// [`Engine::compute_pivot_row`], respecting the scatter stamps.
    #[inline]
    fn alpha_at(&self, j: usize) -> f64 {
        if self.astamp[j] == self.aepoch {
            self.alpha[j]
        } else {
            0.0
        }
    }

    /// Resets to an all-ones reference framework with invalid reduced costs
    /// (done at phase boundaries: the cost vector changed wholesale).
    fn reset_phase(&mut self) {
        self.valid = false;
        self.dirty = false;
        self.weights.iter_mut().for_each(|w| *w = 1.0);
    }
}

/// Per-attempt engine configuration — the knobs the recovery ladder turns
/// between rungs. The default is byte-identical to the pre-ladder engine.
#[derive(Debug, Clone, Copy)]
struct EngineCfg {
    /// Basis backend (`None` = the session default, see
    /// [`crate::solver::default_basis`]).
    basis: Option<BasisKind>,
    /// Pivots between scheduled refactorizations.
    refactor_every: usize,
    /// Use Bland's rule from the first pivot.
    force_bland: bool,
    /// User-facing work caps (internal phase budgets always apply).
    budget: Option<SolveBudget>,
    /// A chaos fault armed for this attempt (consumed at the first
    /// optimization entry).
    chaos: Option<ChaosFault>,
}

impl EngineCfg {
    fn new(budget: Option<SolveBudget>) -> Self {
        EngineCfg {
            basis: None,
            refactor_every: REFACTOR_EVERY,
            force_bland: false,
            budget,
            chaos: None,
        }
    }
}

/// The revised-simplex working state.
struct Engine {
    a: CscMatrix,
    /// Perturbed RHS (drives ratio tests, never reported).
    b: Vec<f64>,
    /// Exact RHS (solution values are read from its transform).
    b_shadow: Vec<f64>,
    m: usize,
    n_user: usize,
    /// First artificial column; structural + slack columns are below.
    artificial_start: usize,
    n_total: usize,
    /// Per row: its slack/surplus column, if any.
    row_slack: Vec<Option<usize>>,
    /// Per row: its artificial column, if any.
    row_artificial: Vec<Option<usize>>,
    /// Per row: whether the `b ≥ 0` normalisation negated it (needed to map
    /// the standard-form duals back to the user's rows).
    row_flip: Vec<bool>,
    /// Basic column of each row.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Columns fixed to zero (problem marks + overlay): they may never enter
    /// the basis, and a hinted basis containing one at a positive level goes
    /// through the bound-repair phase before phase 2.
    fixed: Vec<bool>,
    /// Whether any column is fixed (skips the per-column test otherwise).
    any_fixed: bool,
    /// Entering-column restriction of the lexicographic phase 3 (empty
    /// outside it): only columns whose primary reduced cost was zero at the
    /// phase-2 optimum may enter, so pivots move along the optimal face.
    restrict: Vec<bool>,
    /// The basis factorization (LU by default, eta via `PM_LP_BASIS=eta`).
    fac: BasisRepr,
    /// Devex pricing state — present exactly on the LU path; `None` keeps
    /// the eta path on the legacy Dantzig partial pricing, byte-for-byte.
    pricing: Option<DevexPricing>,
    /// `B⁻¹ b` (perturbed), indexed by row.
    x_b: Vec<f64>,
    /// `B⁻¹ b_shadow` (exact), same pivots.
    x_shadow: Vec<f64>,
    /// Cost of the phase being optimized, per column.
    cost: Vec<f64>,
    /// Rotating partial-pricing cursor.
    price_ptr: usize,
    /// Ratio-test tie-break stream.
    rng: u64,
    refactorizations: usize,
    pivots: usize,
    /// Scratch dense vector for FTRANed columns. Invariant: entries not
    /// listed in `touched` are exactly `0.0`.
    work: Vec<f64>,
    /// Indices of (potentially) nonzero `work` entries, deduplicated via
    /// `stamp`/`epoch`.
    touched: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Scratch dense vector for the BTRANed pricing vector.
    price: Vec<f64>,
    /// Pivots between scheduled refactorizations (the aggressive rung
    /// tightens this).
    refactor_every: usize,
    /// Bland's rule from the first pivot (the anti-cycling rung).
    force_bland: bool,
    /// User-facing work caps for this attempt (`None` = unlimited).
    budget: Option<SolveBudget>,
    /// Set when a user cap (not an internal phase budget) stopped the
    /// iteration — the degradable-budget path, never a ladder trigger.
    budget_exhausted: bool,
    /// First failure cause observed by this attempt (drives the ladder).
    trigger: Option<RecoveryTrigger>,
    /// A chaos fault armed for this attempt, consumed at the first
    /// optimization entry (never at extraction, so injected faults cannot
    /// trip the final-refactorization invariants).
    chaos: Option<ChaosFault>,
}

impl Engine {
    /// Builds the standard-form matrix, mirroring the dense engine: rows are
    /// normalised to `b ≥ 0`, `Le` rows get a slack, `Ge` rows a surplus and
    /// an artificial, `Eq` rows an artificial; inequality RHS are relaxed by
    /// the seeded anti-degeneracy perturbation with an exact shadow. The
    /// overlay's RHS overrides are applied before normalisation and its
    /// fixed-variable marks are merged with the problem's own.
    fn new(problem: &LpProblem, overlay: Option<&BoundsOverlay>, cfg: EngineCfg) -> Engine {
        let n_user = problem.num_vars();
        let constraints = problem.constraints();
        let m = constraints.len();

        let mut rhs_override: Vec<Option<f64>> = Vec::new();
        if let Some(overlay) = overlay {
            if !overlay.rhs.is_empty() {
                rhs_override = vec![None; m];
                for &(r, v) in &overlay.rhs {
                    rhs_override[r] = Some(v);
                }
            }
        }
        let row_rhs = |r: usize, stored: f64| -> f64 {
            rhs_override.get(r).and_then(|o| *o).unwrap_or(stored)
        };

        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        let mut relations = Vec::with_capacity(m);
        for (r, c) in constraints.iter().enumerate() {
            let relation = effective_relation(c.relation, row_rhs(r, c.rhs) < 0.0);
            relations.push(relation);
            match relation {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                Relation::Eq => num_artificial += 1,
            }
        }
        let artificial_start = n_user + num_slack;
        let n_total = artificial_start + num_artificial;

        let nnz_guess: usize = constraints.iter().map(|c| c.terms.len()).sum();
        let mut triplets = Vec::with_capacity(nnz_guess + num_slack + num_artificial);
        let mut b = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut row_slack = vec![None; m];
        let mut row_artificial = vec![None; m];
        let mut row_flip = vec![false; m];
        let mut slack_idx = n_user;
        let mut art_idx = artificial_start;
        for (r, c) in constraints.iter().enumerate() {
            let rhs = row_rhs(r, c.rhs);
            let flip = rhs < 0.0;
            row_flip[r] = flip;
            let sign = if flip { -1.0 } else { 1.0 };
            for &(v, coeff) in &c.terms {
                triplets.push((r, v.index(), sign * coeff));
            }
            b[r] = sign * rhs;
            match relations[r] {
                Relation::Le => {
                    triplets.push((r, slack_idx, 1.0));
                    row_slack[r] = Some(slack_idx);
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    triplets.push((r, slack_idx, -1.0));
                    row_slack[r] = Some(slack_idx);
                    slack_idx += 1;
                    triplets.push((r, art_idx, 1.0));
                    row_artificial[r] = Some(art_idx);
                    basis[r] = art_idx;
                    art_idx += 1;
                }
                Relation::Eq => {
                    triplets.push((r, art_idx, 1.0));
                    row_artificial[r] = Some(art_idx);
                    basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }
        let a = CscMatrix::from_triplets(m, n_total, &triplets);

        // Anti-degeneracy RHS perturbation with exact shadow (shared scheme
        // and seed with the dense engine, see `solver::perturb_rhs`).
        let b_shadow = b.clone();
        perturb_rhs(&mut b, &relations, n_total);

        let mut in_basis = vec![false; n_total];
        for &j in &basis {
            in_basis[j] = true;
        }
        let mut fixed = vec![false; n_total];
        for (j, f) in fixed.iter_mut().take(n_user).enumerate() {
            *f = problem.is_fixed(VarId(j));
        }
        if let Some(overlay) = overlay {
            for &v in &overlay.fix_zero {
                fixed[v.index()] = true;
            }
        }
        let any_fixed = fixed.iter().any(|&f| f);
        let kind = cfg.basis.unwrap_or_else(crate::solver::default_basis);
        let pricing = match kind {
            BasisKind::Lu => Some(DevexPricing::new(&a, m, n_total)),
            BasisKind::Eta => None,
        };
        Engine {
            x_b: b.clone(),
            x_shadow: b_shadow.clone(),
            fac: BasisRepr::new(kind, m),
            pricing,
            a,
            b,
            b_shadow,
            m,
            n_user,
            artificial_start,
            n_total,
            row_slack,
            row_artificial,
            row_flip,
            basis,
            in_basis,
            fixed,
            any_fixed,
            restrict: Vec::new(),
            cost: vec![0.0; n_total],
            price_ptr: 0,
            rng: 0x9e37_79b9_7f4a_7c15 ^ ((m as u64) << 32) ^ n_total as u64,
            refactorizations: 0,
            pivots: 0,
            work: vec![0.0; m],
            touched: Vec::with_capacity(m),
            stamp: vec![0; m],
            epoch: 0,
            price: vec![0.0; m],
            refactor_every: cfg.refactor_every,
            force_bland: cfg.force_bland,
            budget: cfg.budget,
            budget_exhausted: false,
            trigger: None,
            chaos: cfg.chaos,
        }
    }

    /// Records a failure cause for the recovery ladder (the first one
    /// observed wins) and returns the matching structured error.
    fn fail(&mut self, trigger: RecoveryTrigger) -> LpError {
        self.trigger.get_or_insert(trigger);
        LpError::IterationLimit
    }

    /// Whether a user-facing work cap is spent (internal phase budgets are
    /// separate, see [`crate::solver::phase2_budget`]).
    fn user_budget_exhausted(&self) -> bool {
        let Some(budget) = self.budget else {
            return false;
        };
        budget
            .max_pivots
            .is_some_and(|cap| self.pivots as u64 >= cap)
            || budget
                .max_refactorizations
                .is_some_and(|cap| self.refactorizations as u64 >= cap)
    }

    /// Entry guard of both pricing loops (once per [`Engine::optimize`]
    /// call, off the per-pivot hot path): consumes an armed chaos fault and
    /// verifies the solution vector is finite. In-loop NaN creation is
    /// caught by the O(1) pivot-ratio check in [`Engine::apply_pivot`] —
    /// every NaN entering `x_b` flows through a theta.
    fn entry_guard(&mut self) -> Result<(), LpError> {
        if let Some(fault) = self.chaos.take() {
            match fault {
                ChaosFault::SingularBasis => {
                    return Err(self.fail(RecoveryTrigger::SingularBasis));
                }
                ChaosFault::PricingStall => {
                    return Err(self.fail(RecoveryTrigger::IterationLimit));
                }
                ChaosFault::NanInjection => {
                    // Poison the solution vector and fall through: the
                    // genuine non-finite guard below must catch it.
                    if let Some(v) = self.x_b.first_mut() {
                        *v = f64::NAN;
                    }
                }
                // Hint poisoning happens before the engine exists.
                ChaosFault::PoisonHint => {}
            }
        }
        if self.x_b.iter().any(|v| !v.is_finite()) {
            return Err(self.fail(RecoveryTrigger::NonFinite));
        }
        Ok(())
    }

    /// Per-iteration budget guard (two comparisons): flags user-cap
    /// exhaustion so the caller can degrade instead of escalating.
    fn budget_guard(&mut self) -> Result<(), LpError> {
        if self.user_budget_exhausted() {
            self.budget_exhausted = true;
            return Err(LpError::IterationLimit);
        }
        Ok(())
    }

    /// Rebuilds the basis factorization from scratch (the factorization may
    /// permute basis slots so slot `r` pivots on row `r`), refreshes the
    /// solution vectors from the RHS to shed accumulated drift, and
    /// invalidates the maintained reduced costs. Returns `false` when the
    /// basis is singular.
    fn refactorize(&mut self) -> bool {
        self.refactorizations += 1;
        if !self.fac.refactorize(&self.a, &mut self.basis) {
            return false;
        }
        self.recompute_solution_vectors();
        if let Some(p) = &mut self.pricing {
            p.valid = false;
        }
        true
    }

    /// Recomputes `x_b` and `x_shadow` from the RHS through the current
    /// factorization (used after refactorizations to shed accumulated
    /// drift).
    fn recompute_solution_vectors(&mut self) {
        self.x_b.copy_from_slice(&self.b);
        self.fac.ftran(&mut self.x_b);
        for v in &mut self.x_b {
            if v.abs() < EPS {
                *v = 0.0;
            }
        }
        self.x_shadow.copy_from_slice(&self.b_shadow);
        self.fac.ftran(&mut self.x_shadow);
    }

    /// FTRAN of column `j` into `self.work`, tracking its nonzero pattern
    /// in `self.touched` (previous contents are cleared sparsely).
    fn ftran_col(&mut self, j: usize) {
        for &i in &self.touched {
            self.work[i as usize] = 0.0;
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: reset every stale stamp (0 is never used as an epoch).
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        let (rows, vals) = self.a.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            self.stamp[r as usize] = self.epoch;
            self.touched.push(r);
            self.work[r as usize] = v;
        }
        self.fac.ftran_sparse(
            &mut self.work,
            &mut self.touched,
            &mut self.stamp,
            self.epoch,
        );
    }

    /// BTRAN of the basic costs into `self.price` (the pricing vector `y`).
    fn compute_pricing_vector(&mut self) {
        for r in 0..self.m {
            self.price[r] = self.cost[self.basis[r]];
        }
        self.fac.btran(&mut self.price);
    }

    /// Reduced cost of column `j` under the current pricing vector.
    #[inline]
    fn reduced_cost(&self, j: usize) -> f64 {
        self.cost[j] - self.a.col_dot(j, &self.price)
    }

    /// Whether column `j` may not enter the basis: already basic, fixed to
    /// zero by the problem/overlay bounds, or outside the optimal-face
    /// restriction of the lexicographic phase 3.
    #[inline]
    fn col_blocked(&self, j: usize) -> bool {
        self.in_basis[j]
            || (self.any_fixed && self.fixed[j])
            || (!self.restrict.is_empty() && !self.restrict[j])
    }

    /// Objective of the current phase at the current (perturbed) point.
    fn phase_objective(&self) -> f64 {
        let mut z = 0.0;
        for r in 0..self.m {
            let c = self.cost[self.basis[r]];
            if c != 0.0 {
                z += c * self.x_b[r];
            }
        }
        z
    }

    fn next_rand(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// Applies the pivot `(row, entering)` with `self.work` holding
    /// `B⁻¹ a_entering` (pattern in `self.touched`): updates the basis
    /// factorization, the basis and both solution vectors. When the
    /// factorization rejects the update as numerically untrustworthy (a
    /// vanishing Forrest–Tomlin diagonal), the basis is refactorized from
    /// scratch instead — an error there means the exchanged basis is
    /// singular beyond repair.
    fn apply_pivot(&mut self, row: usize, entering: usize) -> Result<(), LpError> {
        let w_r = self.work[row];
        let theta = self.x_b[row] / w_r;
        let theta_shadow = self.x_shadow[row] / w_r;
        if !theta.is_finite() || !theta_shadow.is_finite() {
            // A NaN/inf ratio would poison every touched row: stop on the
            // last consistent vertex and let the recovery ladder escalate.
            return Err(self.fail(RecoveryTrigger::NonFinite));
        }
        for &iu in &self.touched {
            let i = iu as usize;
            let w = self.work[i];
            if i == row || w.abs() <= ETA_DROP {
                continue;
            }
            self.x_b[i] -= theta * w;
            if self.x_b[i].abs() < EPS {
                self.x_b[i] = 0.0;
            }
            self.x_shadow[i] -= theta_shadow * w;
        }
        self.x_b[row] = theta;
        self.x_shadow[row] = theta_shadow;
        let clean = self.fac.update(row, &self.work, &self.touched);
        self.in_basis[self.basis[row]] = false;
        self.in_basis[entering] = true;
        self.basis[row] = entering;
        self.pivots += 1;
        if !clean && !self.refactorize() {
            return Err(self.fail(RecoveryTrigger::SingularBasis));
        }
        Ok(())
    }

    /// Scheduled refactorization: every [`REFACTOR_EVERY`] pivots (fewer on
    /// the aggressive recovery rung), or when the factorization's stored
    /// fill outgrows a small multiple of the matrix.
    fn maybe_refactorize(&mut self) -> Result<(), LpError> {
        let due = self.fac.updates_since_refactor() >= self.refactor_every
            || self.fac.wants_refactor(&self.a);
        if due && !self.refactorize() {
            return Err(self.fail(RecoveryTrigger::SingularBasis));
        }
        Ok(())
    }

    /// Chooses the entering column: Bland's rule (first negative reduced
    /// cost by index) when `use_bland`, otherwise Dantzig's rule over
    /// rotating partial-pricing sections. `banned` holds columns excluded
    /// for numerical reasons until the next successful pivot.
    fn choose_entering(
        &mut self,
        allowed_hi: usize,
        use_bland: bool,
        banned: &[usize],
    ) -> Option<usize> {
        if allowed_hi == 0 {
            return None;
        }
        if use_bland {
            for j in 0..allowed_hi {
                if self.col_blocked(j) || banned.contains(&j) {
                    continue;
                }
                if self.reduced_cost(j) < -EPS {
                    return Some(j);
                }
            }
            return None;
        }
        let section = (allowed_hi / 8).max(256).min(allowed_hi);
        let mut scanned = 0usize;
        let mut start = self.price_ptr % allowed_hi;
        while scanned < allowed_hi {
            let len = section.min(allowed_hi - scanned);
            let mut best: Option<usize> = None;
            let mut best_rc = -EPS;
            for offset in 0..len {
                let j = (start + offset) % allowed_hi;
                if self.col_blocked(j) || banned.contains(&j) {
                    continue;
                }
                let rc = self.reduced_cost(j);
                if rc < best_rc {
                    best_rc = rc;
                    best = Some(j);
                }
            }
            if let Some(j) = best {
                self.price_ptr = (j + 1) % allowed_hi;
                return Some(j);
            }
            scanned += len;
            start = (start + len) % allowed_hi;
        }
        None
    }

    /// The ratio test over `self.work` (the FTRANed entering column):
    /// smallest `x_b / w` over `w > EPS`, ties broken by smallest basis
    /// index under Bland and by seeded reservoir sampling otherwise
    /// (ported from the dense engine, same rationale).
    fn choose_leaving(&mut self, use_bland: bool) -> Option<usize> {
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        let mut ties = 0usize;
        // Only touched entries of the FTRANed column can be positive. The
        // traversal order (insertion order of the fill) is deterministic,
        // so the seeded reservoir tie-break stays reproducible.
        for ti in 0..self.touched.len() {
            let r = self.touched[ti] as usize;
            let w = self.work[r];
            if w > EPS {
                let ratio = self.x_b[r] / w;
                match leaving {
                    None => {
                        leaving = Some(r);
                        best_ratio = ratio;
                        ties = 1;
                    }
                    Some(lr) => {
                        if ratio < best_ratio - EPS {
                            leaving = Some(r);
                            best_ratio = ratio;
                            ties = 1;
                        } else if (ratio - best_ratio).abs() <= EPS {
                            if use_bland {
                                if self.basis[r] < self.basis[lr] {
                                    leaving = Some(r);
                                    best_ratio = ratio;
                                }
                            } else {
                                ties += 1;
                                if self.next_rand().is_multiple_of(ties as u64) {
                                    leaving = Some(r);
                                    best_ratio = ratio;
                                }
                            }
                        }
                    }
                }
            }
        }
        leaving
    }

    /// Runs simplex iterations on the current cost vector until optimal
    /// (all reduced costs ≥ −EPS over `0..allowed_hi`), unbounded, or out
    /// of budget. Returns the pivots performed. Dispatches on the pricing
    /// engine: devex with maintained reduced costs on the LU path, the
    /// legacy rotating Dantzig sections on the eta path.
    fn optimize(&mut self, allowed_hi: usize, budget: usize) -> Result<usize, LpError> {
        self.entry_guard()?;
        if self.pricing.is_some() {
            self.optimize_devex(allowed_hi, budget)
        } else {
            self.optimize_dantzig(allowed_hi, budget)
        }
    }

    /// The legacy pricing loop: BTRAN + Dantzig scan over rotating partial
    /// pricing sections every iteration (Bland's rule after a stall).
    fn optimize_dantzig(&mut self, allowed_hi: usize, budget: usize) -> Result<usize, LpError> {
        let mut stalled = 0usize;
        let mut last_obj = self.phase_objective();
        let mut performed = 0usize;
        // Columns skipped since the last successful pivot because their
        // FTRANed pivot element stayed tiny after a fresh factorization.
        let mut banned: Vec<usize> = Vec::new();
        while performed < budget {
            let use_bland = self.force_bland || stalled >= STALL_SWITCH;
            self.compute_pricing_vector();
            let Some(entering) = self.choose_entering(allowed_hi, use_bland, &banned) else {
                if banned.is_empty() {
                    return Ok(performed);
                }
                // Every remaining improving column is banned: this vertex
                // cannot be certified optimal (a banned column may still
                // price negative). Declaring optimality here would silently
                // return a suboptimal objective — or a spurious Infeasible
                // from phase 1 — so report numerical trouble instead.
                return Err(self.fail(RecoveryTrigger::IterationLimit));
            };
            // The user budget is checked only once an improving column
            // exists: certifying optimality is free, so a budget equal to
            // the exact pivot count still returns a certified optimum.
            self.budget_guard()?;
            self.ftran_col(entering);
            let Some(row) = self.choose_leaving(use_bland) else {
                return Err(LpError::Unbounded);
            };
            if self.work[row].abs() < PIVOT_TOL {
                // Numerically fragile pivot: refresh the factorization and
                // retry; if a fresh factorization still produces a tiny
                // pivot, exclude the column until the basis next changes.
                if self.fac.updates_since_refactor() > 0 {
                    if !self.refactorize() {
                        return Err(self.fail(RecoveryTrigger::SingularBasis));
                    }
                } else {
                    banned.push(entering);
                }
                continue;
            }
            self.apply_pivot(row, entering)?;
            performed += 1;
            banned.clear();
            self.maybe_refactorize()?;
            // Anti-stalling bookkeeping: both phases minimize, so a
            // productive pivot strictly decreases the phase objective.
            let obj = self.phase_objective();
            if obj < last_obj - EPS * (1.0 + last_obj.abs()) {
                stalled = 0;
                last_obj = obj;
            } else {
                stalled += 1;
                if stalled == STALL_SWITCH && self.fac.updates_since_refactor() > 0 {
                    // Entering Bland mode: shed drift first so its reduced
                    // costs are trustworthy.
                    if !self.refactorize() {
                        return Err(self.fail(RecoveryTrigger::SingularBasis));
                    }
                }
            }
        }
        Err(self.fail(RecoveryTrigger::IterationLimit))
    }

    /// Recomputes the maintained reduced costs from scratch: one BTRAN of
    /// the basic costs plus one pass over the matrix (`rc_j = c_j − yᵀa_j`).
    fn recompute_reduced_costs(&mut self) {
        self.compute_pricing_vector();
        let p = self.pricing.as_mut().expect("devex path");
        for j in 0..self.n_total {
            p.rc[j] = self.cost[j] - self.a.col_dot(j, &self.price);
        }
        p.valid = true;
        p.dirty = false;
    }

    /// Computes the pivot row `α = (B⁻ᵀ e_row)ᵀ A` into the pricing scratch
    /// (`ρ` dense, `α` scattered over the CSR mirror). Must run *before*
    /// the pivot is applied: the devex rc/weight recurrences are algebra on
    /// the pre-pivot basis.
    fn compute_pivot_row(&mut self, row: usize) {
        let p = self.pricing.as_mut().expect("devex path");
        p.rho.iter_mut().for_each(|v| *v = 0.0);
        p.rho[row] = 1.0;
        self.fac.btran(&mut p.rho);
        p.aepoch = p.aepoch.wrapping_add(1);
        if p.aepoch == 0 {
            p.astamp.iter_mut().for_each(|s| *s = 0);
            p.aepoch = 1;
        }
        p.acols.clear();
        for (i, &ri) in p.rho.iter().enumerate() {
            if ri.abs() <= 1e-12 {
                continue;
            }
            for e in p.row_ptr[i]..p.row_ptr[i + 1] {
                let j = p.col_idx[e] as usize;
                if p.astamp[j] != p.aepoch {
                    p.astamp[j] = p.aepoch;
                    p.alpha[j] = 0.0;
                    p.acols.push(j as u32);
                }
                p.alpha[j] += ri * p.vals[e];
            }
        }
    }

    /// The devex pricing loop (LU path). Reduced costs are maintained
    /// incrementally and re-verified by a full recompute before any
    /// optimality or unboundedness conclusion, so the incremental updates
    /// are a pure accelerator, never a correctness dependency.
    fn optimize_devex(&mut self, allowed_hi: usize, budget: usize) -> Result<usize, LpError> {
        let mut stalled = 0usize;
        let mut last_obj = self.phase_objective();
        let mut performed = 0usize;
        let mut banned: Vec<usize> = Vec::new();
        while performed < budget {
            let use_bland = self.force_bland || stalled >= STALL_SWITCH;
            if !self.pricing.as_ref().expect("devex path").valid {
                self.recompute_reduced_costs();
            }
            // Entering: max rc²/weight (Bland: first improving index), ties
            // to the smallest index for determinism.
            let entering = {
                let p = self.pricing.as_ref().expect("devex path");
                let mut best: Option<usize> = None;
                let mut best_score = 0.0;
                for j in 0..allowed_hi {
                    if self.col_blocked(j) || banned.contains(&j) {
                        continue;
                    }
                    let rc = p.rc[j];
                    if rc < -EPS {
                        if use_bland {
                            best = Some(j);
                            break;
                        }
                        let score = rc * rc / p.weights[j];
                        if score > best_score {
                            best_score = score;
                            best = Some(j);
                        }
                    }
                }
                best
            };
            let Some(entering) = entering else {
                // No improving column in the maintained rc. If pivots were
                // applied since the last full recompute the rc may have
                // drifted: re-verify before certifying this vertex.
                if self.pricing.as_ref().expect("devex path").dirty {
                    self.recompute_reduced_costs();
                    continue;
                }
                if banned.is_empty() {
                    return Ok(performed);
                }
                // Same reasoning as the Dantzig loop: banned columns may
                // still price negative, so this vertex cannot be certified.
                return Err(self.fail(RecoveryTrigger::IterationLimit));
            };
            // As in the Dantzig loop: only an actual pivot costs budget.
            self.budget_guard()?;
            self.ftran_col(entering);
            let Some(row) = self.choose_leaving(use_bland) else {
                // Unboundedness is only trustworthy under fresh reduced
                // costs (the FTRANed column is factual, the sign of its
                // reduced cost may have drifted).
                if self.pricing.as_ref().expect("devex path").dirty {
                    self.recompute_reduced_costs();
                    if self.pricing.as_ref().expect("devex path").rc[entering] < -EPS {
                        return Err(LpError::Unbounded);
                    }
                    continue;
                }
                return Err(LpError::Unbounded);
            };
            if self.work[row].abs() < PIVOT_TOL {
                if self.fac.updates_since_refactor() > 0 {
                    if !self.refactorize() {
                        return Err(self.fail(RecoveryTrigger::SingularBasis));
                    }
                } else {
                    banned.push(entering);
                }
                continue;
            }
            // Pivot row for the rc/weight recurrences, from the pre-pivot
            // basis. Its entry at the entering column must agree with the
            // FTRANed column's pivot element — a mismatch means the
            // factorization has drifted, so refresh and retry instead of
            // pivoting on inconsistent data.
            self.compute_pivot_row(row);
            let alpha_rq = self
                .pricing
                .as_ref()
                .expect("devex path")
                .alpha_at(entering);
            let w_r = self.work[row];
            if (alpha_rq - w_r).abs() > 1e-6 * w_r.abs().max(1.0) {
                if !self.refactorize() {
                    return Err(self.fail(RecoveryTrigger::SingularBasis));
                }
                continue;
            }
            let rc_q = self.pricing.as_ref().expect("devex path").rc[entering];
            let leaving_col = self.basis[row];
            self.apply_pivot(row, entering)?;
            performed += 1;
            banned.clear();
            // Devex recurrences over the pivot row's support (exact algebra
            // on the pre-pivot quantities; columns with α_rj = 0 keep their
            // reduced cost unchanged).
            {
                let p = self.pricing.as_mut().expect("devex path");
                let ratio = rc_q / alpha_rq;
                let wq = p.weights[entering].max(1.0);
                for idx in 0..p.acols.len() {
                    let j = p.acols[idx] as usize;
                    if j == entering || self.in_basis[j] {
                        continue;
                    }
                    let arj = p.alpha[j];
                    if arj == 0.0 {
                        continue;
                    }
                    p.rc[j] -= ratio * arj;
                    let r = arj / alpha_rq;
                    let cand = r * r * wq;
                    if cand > p.weights[j] {
                        p.weights[j] = cand;
                    }
                }
                p.rc[entering] = 0.0;
                p.rc[leaving_col] = -ratio;
                p.weights[leaving_col] = (wq / (alpha_rq * alpha_rq)).max(1.0);
                if p.weights[leaving_col] > 1e8 {
                    // The reference framework has degraded: restart it.
                    p.weights.iter_mut().for_each(|w| *w = 1.0);
                }
                p.dirty = true;
            }
            self.maybe_refactorize()?;
            // Anti-stalling bookkeeping, same as the Dantzig loop.
            let obj = self.phase_objective();
            if obj < last_obj - EPS * (1.0 + last_obj.abs()) {
                stalled = 0;
                last_obj = obj;
            } else {
                stalled += 1;
                if stalled == STALL_SWITCH
                    && self.fac.updates_since_refactor() > 0
                    && !self.refactorize()
                {
                    return Err(self.fail(RecoveryTrigger::SingularBasis));
                }
            }
        }
        Err(self.fail(RecoveryTrigger::IterationLimit))
    }

    /// Installs a warm-start basis hint.
    ///
    /// * [`WarmInstall::Ready`] — nonsingular and primal feasible under the
    ///   current bounds: phase 1 can be skipped outright.
    /// * [`WarmInstall::NeedsRepair`] — nonsingular and non-negative, but
    ///   some basic artificial or fixed-to-zero column sits at a positive
    ///   level (the RHS or the fixed set changed since the hint's solve).
    ///   The basis stays installed for [`Engine::repair_bounds`].
    /// * [`WarmInstall::Rejected`] — singular or primal infeasible: the
    ///   all-slack/artificial cold basis is restored.
    fn try_warm_start(&mut self, hint: &Basis) -> WarmInstall {
        if hint.cols.len() != self.m {
            return WarmInstall::Rejected;
        }
        let mut cols = Vec::with_capacity(self.m);
        let mut used = vec![false; self.n_total];
        for (r, &c) in hint.cols.iter().enumerate() {
            // Redundant rows re-enter on their own artificial (or slack for
            // an inequality row, which has one by construction).
            let col = if c == Basis::REDUNDANT {
                match self.row_artificial[r].or(self.row_slack[r]) {
                    Some(col) => col,
                    None => return WarmInstall::Rejected,
                }
            } else if c < self.artificial_start {
                c
            } else {
                return WarmInstall::Rejected;
            };
            if used[col] {
                return WarmInstall::Rejected;
            }
            used[col] = true;
            cols.push(col);
        }
        let saved_basis = std::mem::replace(&mut self.basis, cols);
        let saved_in_basis = std::mem::replace(&mut self.in_basis, used);
        if !self.refactorize() {
            // Singular: restore the all-slack/artificial cold basis.
            self.basis = saved_basis;
            self.in_basis = saved_in_basis;
            let ok = self.refactorize();
            debug_assert!(ok, "initial unit basis cannot be singular");
            return WarmInstall::Rejected;
        }
        if self.x_b.iter().any(|&v| v < -PIVOT_TOL) {
            self.basis = saved_basis;
            self.in_basis = saved_in_basis;
            let ok = self.refactorize();
            debug_assert!(ok, "initial unit basis cannot be singular");
            return WarmInstall::Rejected;
        }
        let violated = (0..self.m).any(|r| {
            let j = self.basis[r];
            (j >= self.artificial_start || (self.any_fixed && self.fixed[j]))
                && self.x_b[r] > PIVOT_TOL
        });
        if violated {
            WarmInstall::NeedsRepair
        } else {
            WarmInstall::Ready
        }
    }

    /// Phase-1-style bound repair from an installed (non-negative but
    /// bound-violating) hint basis: minimizes the total level of every
    /// artificial and fixed-to-zero column, entering only free structural
    /// and slack columns. Returns `Ok(true)` when the violation was driven
    /// to zero, `Ok(false)` when a positive residual remains (the hint
    /// cannot be repaired — the caller falls back to a cold solve, which
    /// also settles genuine infeasibility).
    fn repair_bounds(&mut self) -> Result<bool, LpError> {
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in self.artificial_start..self.n_total {
            self.cost[j] = 1.0;
        }
        if self.any_fixed {
            for j in 0..self.artificial_start {
                if self.fixed[j] {
                    self.cost[j] = 1.0;
                }
            }
        }
        self.price_ptr = 0;
        if let Some(p) = &mut self.pricing {
            p.reset_phase();
        }
        let budget = phase1_budget(self.m, self.n_total);
        self.optimize(self.artificial_start, budget)?;
        Ok(self.phase_objective() <= 1e-6)
    }

    /// Phase 1: minimize the sum of artificial variables from the unit
    /// basis.
    fn phase1(&mut self) -> Result<(), LpError> {
        if self.artificial_start == self.n_total {
            return Ok(());
        }
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in self.artificial_start..self.n_total {
            self.cost[j] = 1.0;
        }
        if let Some(p) = &mut self.pricing {
            p.reset_phase();
        }
        let budget = phase1_budget(self.m, self.n_total);
        self.optimize(self.n_total, budget)?;
        if self.phase_objective() > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive lingering artificial variables out of the basis where a
        // structural pivot exists (rows without one are redundant and keep
        // their artificial at level zero). No scheduled refactorization
        // inside this scan: `refactorize` re-derives the row ↔ basic-column
        // assignment by partial pivoting, which could move a still-basic
        // artificial to an already-visited row index and let it escape the
        // drive-out. The at most `m` extra etas are well within one
        // refactorization cycle, and phase 2 refactorizes on schedule.
        for r in 0..self.m {
            if self.basis[r] < self.artificial_start {
                continue;
            }
            // Row r of B⁻¹.
            self.price.iter_mut().for_each(|v| *v = 0.0);
            self.price[r] = 1.0;
            self.fac.btran(&mut self.price);
            let mut pivot_col = None;
            for j in 0..self.artificial_start {
                if self.col_blocked(j) {
                    continue;
                }
                if self.a.col_dot(j, &self.price).abs() > PIVOT_TOL {
                    pivot_col = Some(j);
                    break;
                }
            }
            if let Some(j) = pivot_col {
                self.ftran_col(j);
                // Same acceptance threshold as the dense engine's drive-out:
                // x_b[r] is ≤ the phase-1 tolerance here and there is no
                // ratio test, so theta = x_b[r] / work[r] must stay bounded
                // — a 1e-10 pivot would scatter O(1e4)-sized errors.
                if self.work[r].abs() > PIVOT_TOL {
                    self.apply_pivot(r, j)?;
                }
            }
        }
        Ok(())
    }

    /// Whether every artificial variable and every fixed-to-zero column
    /// still in the basis sits at level zero (exact shadow RHS). Called
    /// after [`Engine::extract`], whose final refactorization has just
    /// recomputed `x_shadow` to factorization accuracy.
    fn bounds_at_zero(&self) -> bool {
        (0..self.m).all(|r| {
            let j = self.basis[r];
            (j < self.artificial_start && !(self.any_fixed && self.fixed[j]))
                || self.x_shadow[r].abs() <= 1e-6
        })
    }

    /// Phase 2: minimize the (sense-normalised) user objective; artificial
    /// columns may never re-enter.
    fn phase2(&mut self, problem: &LpProblem) -> Result<usize, LpError> {
        let sense = match problem.objective() {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in 0..self.n_user {
            self.cost[j] = sense * problem.objective_coeff(VarId(j));
        }
        self.price_ptr = 0;
        if let Some(p) = &mut self.pricing {
            p.reset_phase();
        }
        let budget = phase2_budget(self.m, self.n_total);
        self.optimize(self.artificial_start, budget)
    }

    /// Phase 3 (lexicographic cleanup, run only when the problem carries a
    /// secondary objective): minimizes `Σ secondaryⱼ·xⱼ` over the phase-2
    /// optimal face. Only columns whose primary reduced cost is zero at the
    /// phase-2 optimum may enter, so every pivot keeps the primary objective
    /// value — in exact arithmetic the primary reduced costs are *invariant*
    /// under such pivots (`rc'ⱼ = rcⱼ − rc_q·αⱼ/α_q` with `rc_q = 0`), which
    /// also means the eligible set is fixed once at entry (a leaving basic
    /// column re-joins it with reduced cost zero). Whenever the secondary
    /// optimum is unique, every pivot path — cold, warm-started, eta or LU —
    /// lands on the same vertex, which is the whole point: downstream
    /// consumers that read the *values* (greedy node scores, tree
    /// decompositions) become independent of the solve history.
    ///
    /// Restores the phase-2 costs before returning so the dual extraction in
    /// [`Engine::extract`] keeps pricing the primary objective.
    fn phase3(&mut self, problem: &LpProblem) -> Result<usize, LpError> {
        // Shed factorization drift first: eligibility is decided by primary
        // reduced costs and a 1e-9 threshold needs trustworthy numbers.
        if self.fac.updates_since_refactor() > 0 && !self.refactorize() {
            return Err(self.fail(RecoveryTrigger::SingularBasis));
        }
        self.compute_pricing_vector();
        let mut restrict = vec![false; self.n_total];
        for (j, r) in restrict.iter_mut().enumerate().take(self.artificial_start) {
            if self.any_fixed && self.fixed[j] {
                continue;
            }
            if self.in_basis[j] || self.reduced_cost(j).abs() <= EPS {
                *r = true;
            }
        }
        // The secondary is always minimized as given (no sense flip).
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in 0..self.n_user {
            self.cost[j] = problem.secondary_coeff(VarId(j));
        }
        self.restrict = restrict;
        self.price_ptr = 0;
        if let Some(p) = &mut self.pricing {
            p.reset_phase();
        }
        let budget = phase2_budget(self.m, self.n_total);
        let out = match self.optimize(self.artificial_start, budget) {
            // A descent ray of the *secondary* does not make the problem
            // unbounded — the primary optimum is already certified, and the
            // current vertex is on the optimal face. Canonicalization is
            // best-effort: stop here. (Unreachable for the non-negative
            // secondaries pm-core emits, which are bounded below by zero.)
            Err(LpError::Unbounded) => Ok(self.pivots),
            other => other,
        };
        self.restrict = Vec::new();
        // Reinstall the phase-2 costs: `extract` derives the duals from
        // `self.cost` and they must certify the *primary* objective.
        let sense = match problem.objective() {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        self.cost.iter_mut().for_each(|c| *c = 0.0);
        for j in 0..self.n_user {
            self.cost[j] = sense * problem.objective_coeff(VarId(j));
        }
        out
    }

    /// Extracts the solution values from the exact shadow RHS after a final
    /// refactorization (so the reported point solves `B x_B = b` to
    /// factorization accuracy, not eta-accumulation accuracy).
    fn extract(&mut self, problem: &LpProblem) -> (LpSolution, Basis) {
        if self.fac.updates_since_refactor() > 0 {
            let ok = self.refactorize();
            debug_assert!(ok, "optimal basis cannot be singular");
        }
        let mut values = vec![0.0; self.n_user];
        for r in 0..self.m {
            let j = self.basis[r];
            if j < self.n_user && !(self.any_fixed && self.fixed[j]) {
                values[j] = self.x_shadow[r].max(0.0);
            }
            // A fixed column still basic is at level ~0 (enforced by the
            // caller's `bounds_at_zero` check); report it as exactly 0.
        }
        let objective = problem.objective_value_at(&values);
        // Duals: `y = B⁻ᵀ c_B` under the phase-2 costs still installed in
        // `self.cost`, mapped back to the user's rows by undoing the `b ≥ 0`
        // sign flips and the sense normalisation. The pricing vector never
        // sees the anti-degeneracy RHS perturbation (reduced costs are
        // independent of the RHS), so these are the duals of the *exact*
        // problem — strong duality holds against the unperturbed right-hand
        // sides.
        self.compute_pricing_vector();
        let sense = match problem.objective() {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        let duals: Vec<f64> = (0..self.m)
            .map(|r| {
                let y = if self.row_flip[r] {
                    -self.price[r]
                } else {
                    self.price[r]
                };
                sense * y
            })
            .collect();
        let cols = self
            .basis
            .iter()
            .map(|&j| {
                if j < self.artificial_start {
                    j
                } else {
                    Basis::REDUNDANT
                }
            })
            .collect();
        (
            LpSolution::with_duals(objective, values, duals),
            Basis { cols },
        )
    }
}

/// Solves a problem with the revised simplex, optionally warm-starting from
/// the basis of a previous structurally identical solve. The hint is only
/// ever an accelerator: a rejected hint falls back to a cold two-phase
/// solve, so correctness never depends on it.
pub fn solve_with_hint(problem: &LpProblem, hint: Option<&Basis>) -> Result<SolveOutcome, LpError> {
    solve_with_overlay(problem, None, hint, None)
}

/// [`solve_with_hint`] under explicit work caps; see
/// [`resolve_with_bounds_budgeted`] for the degradation semantics.
pub fn solve_with_hint_budgeted(
    problem: &LpProblem,
    hint: Option<&Basis>,
    budget: Option<SolveBudget>,
) -> Result<SolveOutcome, LpError> {
    solve_with_overlay(problem, None, hint, budget)
}

/// Re-solves a problem under a [`BoundsOverlay`] (extra variables fixed to
/// zero, RHS overrides), warm-starting from `hint` when given.
///
/// This is the masked-formulation fast path: when the hint basis contains
/// newly fixed columns (or the RHS overrides moved a hinted basis off its
/// old level), a deterministic *bound-repair* phase drives the violating
/// columns back to zero in a few pivots instead of discarding the hint and
/// paying a cold phase 1+2. Like plain warm starts, the repair is an
/// accelerator only — any failure falls back to a cold solve.
///
/// ```
/// use pm_lp::revised::{resolve_with_bounds, BoundsOverlay};
/// use pm_lp::{LpProblem, Objective, Relation};
///
/// // maximize x + y  s.t.  x + y <= 3,  x <= 2
/// let mut lp = LpProblem::new(Objective::Maximize);
/// let x = lp.add_var("x");
/// let y = lp.add_var("y");
/// lp.set_objective_coeff(x, 1.0);
/// lp.set_objective_coeff(y, 1.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
/// lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
///
/// // Cold solve of the unmodified problem; keep the optimal basis.
/// let cold = resolve_with_bounds(&lp, &BoundsOverlay::default(), None).unwrap();
/// assert!((cold.solution.objective - 3.0).abs() < 1e-9);
///
/// // Re-solve with y fixed to zero and a tightened RHS, warm-starting
/// // from the previous basis — the problem itself is untouched.
/// let mut overlay = BoundsOverlay::default();
/// overlay.fix_zero.push(y);
/// overlay.rhs.push((1, 1.5)); // row 1: x <= 1.5
/// let warm = resolve_with_bounds(&lp, &overlay, Some(&cold.basis)).unwrap();
/// assert!((warm.solution.objective - 1.5).abs() < 1e-9);
/// assert!((warm.solution.value(y)).abs() < 1e-9);
/// ```
pub fn resolve_with_bounds(
    problem: &LpProblem,
    overlay: &BoundsOverlay,
    hint: Option<&Basis>,
) -> Result<SolveOutcome, LpError> {
    solve_with_overlay(problem, Some(overlay), hint, None)
}

/// [`resolve_with_bounds`] under explicit work caps (see
/// [`crate::solver::SolveBudget`]): when phase 2 runs out of budget after
/// reaching feasibility, the current vertex is returned as an anytime
/// solution flagged [`LpSolution::degraded`] — its objective is a valid
/// bound on the optimum (primal feasibility is maintained throughout
/// phase 2). `budget: None` falls back to the `PM_LP_BUDGET` default.
pub fn resolve_with_bounds_budgeted(
    problem: &LpProblem,
    overlay: &BoundsOverlay,
    hint: Option<&Basis>,
    budget: Option<SolveBudget>,
) -> Result<SolveOutcome, LpError> {
    solve_with_overlay(problem, Some(overlay), hint, budget)
}

/// Deterministically corrupts a warm-start hint (the
/// [`crate::chaos::ChaosFault::PoisonHint`] injection): a few pseudo-random
/// rows are marked redundant, so their artificials re-enter the basis at
/// whatever level the RHS dictates — exactly the adversarial-hint shape the
/// post-phase-2 proof obligation exists to catch.
fn poison_hint(hint: &Basis, hash: u64) -> Basis {
    let mut cols = hint.cols.clone();
    if !cols.is_empty() {
        let mut h = hash;
        let strikes = 1 + (splitmix64(&mut h) as usize % cols.len().min(3));
        for _ in 0..strikes {
            let i = splitmix64(&mut h) as usize % cols.len();
            cols[i] = Basis::REDUNDANT;
        }
    }
    Basis { cols }
}

/// The [`RecoveryRung::Dense`] oracle: materializes the overlay into a
/// cloned problem and solves it with the dense tableau simplex, which
/// shares none of the sparse engine's failure modes (no factorization, no
/// incremental pricing) and ignores user budgets — the ladder's guaranteed
/// termination. The returned basis marks every row redundant: it installs
/// as the unit basis if ever used as a hint, which the repair phase handles
/// like any other stale hint. The dense oracle reports no duals.
fn dense_fallback(
    problem: &LpProblem,
    overlay: Option<&BoundsOverlay>,
) -> Result<(LpSolution, Basis), LpError> {
    let solution = match overlay {
        Some(overlay) if !overlay.fix_zero.is_empty() || !overlay.rhs.is_empty() => {
            let mut materialized = problem.clone();
            for &v in &overlay.fix_zero {
                materialized.fix_var(v);
            }
            for &(row, rhs) in &overlay.rhs {
                materialized.set_rhs(row, rhs);
            }
            crate::simplex::solve(&materialized)?
        }
        _ => crate::simplex::solve(problem)?,
    };
    let cols = vec![Basis::REDUNDANT; problem.num_constraints()];
    Ok((solution, Basis { cols }))
}

fn solve_with_overlay(
    problem: &LpProblem,
    overlay: Option<&BoundsOverlay>,
    hint: Option<&Basis>,
    budget: Option<SolveBudget>,
) -> Result<SolveOutcome, LpError> {
    let start = std::time::Instant::now();
    let budget = budget.or_else(crate::solver::default_budget);
    let plan: Option<ChaosPlan> = crate::chaos::plan(|| signature(problem));
    let swapped = match crate::solver::default_basis() {
        BasisKind::Lu => BasisKind::Eta,
        BasisKind::Eta => BasisKind::Lu,
    };

    // The deterministic recovery ladder. Rung 0 and rung 1 are byte-for-byte
    // the pre-ladder engine: the ordinary (possibly warm-started) attempt,
    // and the legacy hint-discarding cold fallback. A hinted basis skipped
    // phase 1, so its result carries an extra proof obligation — every
    // re-entered artificial and fixed column must have stayed at level zero
    // through phase 2 — and a violation (or any error: the hint can steer
    // the iteration budget into a corner the cold path avoids) discards the
    // hint entirely. Rungs 2–4 only run on failures the old engine would
    // have surfaced raw: tighter refactorization against drift, the other
    // basis backend against factorization bugs, Bland's rule against
    // cycling. The dense oracle terminates the ladder unconditionally.
    // Structured verdicts (Infeasible/Unbounded/InvalidModel) and exhausted
    // user budgets never escalate.
    const LADDER: [RecoveryRung; 5] = [
        RecoveryRung::First,
        RecoveryRung::Cold,
        RecoveryRung::AggressiveRefactor,
        RecoveryRung::SwappedBasis,
        RecoveryRung::Bland,
    ];
    let mut attempts = 0usize;
    let mut trigger: Option<RecoveryTrigger> = None;
    let mut chosen: Option<(Attempt, WarmStatus, RecoveryRung)> = None;
    let mut failed: Option<(Attempt, WarmStatus, LpError)> = None;
    let mut exhausted_sparse = true;
    let mut idx = 0usize;
    while idx < LADDER.len() {
        let rung = LADDER[idx];
        let mut cfg = EngineCfg::new(budget);
        match rung {
            RecoveryRung::AggressiveRefactor => cfg.refactor_every = AGGRESSIVE_REFACTOR_EVERY,
            RecoveryRung::SwappedBasis => cfg.basis = Some(swapped),
            RecoveryRung::Bland => cfg.force_bland = true,
            _ => {}
        }
        let attempt_hint = if rung == RecoveryRung::First {
            hint
        } else {
            None
        };
        // Chaos: the plan strikes the first `strikes` ladder attempts, so
        // injected faults are survivable by construction (the dense rung is
        // immune) and recovery is observable.
        let strike = plan.filter(|p| attempts < p.strikes);
        let poisoned: Option<Basis>;
        let attempt_hint = match (strike, attempt_hint) {
            (Some(p), Some(h)) if p.fault == ChaosFault::PoisonHint => {
                poisoned = Some(poison_hint(h, p.hash));
                poisoned.as_ref()
            }
            _ => attempt_hint,
        };
        if let Some(p) = strike {
            if p.fault != ChaosFault::PoisonHint {
                cfg.chaos = Some(p.fault);
            }
        }
        let (attempt, warm) = attempt_solve(problem, overlay, attempt_hint, cfg);
        attempts += 1;
        match &attempt.outcome {
            Ok(_) => {
                if rung == RecoveryRung::First
                    && warm == WarmStatus::Hit
                    && !attempt.engine.bounds_at_zero()
                {
                    idx = 1;
                    continue;
                }
                chosen = Some((attempt, warm, rung));
                exhausted_sparse = false;
                break;
            }
            Err(e) => {
                let e = e.clone();
                if attempt.engine.budget_exhausted {
                    // Out of user budget before feasibility: retrying under
                    // the same caps cannot help.
                    failed = Some((attempt, warm, e));
                    exhausted_sparse = false;
                    break;
                }
                match attempt.engine.trigger {
                    Some(t) => {
                        if trigger.is_none() {
                            trigger = Some(t);
                        }
                        let next = if rung == RecoveryRung::First && warm != WarmStatus::Hit {
                            // The first attempt already ran cold (no hint,
                            // or the hint was rejected before phase 1):
                            // rung 1 would repeat it verbatim.
                            2
                        } else {
                            idx + 1
                        };
                        failed = Some((attempt, warm, e));
                        idx = next;
                        continue;
                    }
                    None => {
                        if rung == RecoveryRung::First && warm == WarmStatus::Hit {
                            // Legacy fallback: any error on a warm hit
                            // discards the hint and re-solves cold.
                            failed = Some((attempt, warm, e));
                            idx = 1;
                            continue;
                        }
                        // A structured verdict from an (effectively) cold
                        // solve is final.
                        failed = Some((attempt, warm, e));
                        exhausted_sparse = false;
                        break;
                    }
                }
            }
        }
    }

    // Every sparse rung failed with a recoverable trigger: the dense
    // tableau oracle is the last resort.
    let mut dense_result: Option<Result<(LpSolution, Basis), LpError>> = None;
    if chosen.is_none() && exhausted_sparse {
        attempts += 1;
        dense_result = Some(dense_fallback(problem, overlay));
    }

    // Assemble the stats from the decisive attempt (the winning one, or the
    // last failure when everything failed). The dense rung reports the last
    // sparse attempt's dimensions with its own rung marker.
    let hint_offered = hint.is_some();
    let build_stats =
        |attempt: &Attempt, warm: WarmStatus, rung: RecoveryRung, degraded: bool| SolveStats {
            m: attempt.engine.m,
            n: attempt.engine.n_total,
            nnz: attempt.engine.a.nnz(),
            phase1_pivots: attempt.phase1_pivots,
            phase2_pivots: attempt.phase2_pivots,
            refactorizations: attempt.engine.refactorizations,
            basis: attempt.engine.fac.kind(),
            warm: if rung == RecoveryRung::First {
                warm
            } else if hint_offered {
                WarmStatus::Miss
            } else {
                WarmStatus::None
            },
            wall_s: start.elapsed().as_secs_f64(),
            attempts,
            rung,
            trigger,
            degraded,
        };

    let injected = plan.is_some();
    let outcome: Result<SolveOutcome, (SolveStats, LpError)> = match (chosen, dense_result) {
        (Some((attempt, warm, rung)), _) => {
            let degraded = matches!(&attempt.outcome, Ok((s, _)) if s.degraded());
            let stats = build_stats(&attempt, warm, rung, degraded);
            let (solution, basis) = attempt
                .outcome
                .expect("chosen attempt is the successful one");
            Ok(SolveOutcome {
                solution,
                basis,
                stats,
            })
        }
        (None, Some(Ok((solution, basis)))) => {
            let (last, warm, _) = failed
                .take()
                .expect("the dense rung only runs after a failure");
            let mut stats = build_stats(&last, warm, RecoveryRung::Dense, false);
            stats.phase1_pivots = 0;
            stats.phase2_pivots = 0;
            Ok(SolveOutcome {
                solution,
                basis,
                stats,
            })
        }
        (None, Some(Err(e))) => {
            let (last, warm, _) = failed
                .take()
                .expect("the dense rung only runs after a failure");
            let stats = build_stats(&last, warm, RecoveryRung::Dense, false);
            Err((stats, e))
        }
        (None, None) => {
            let (last, warm, e) = failed.expect("a failed ladder recorded its last attempt");
            let rung = if attempts > 1 {
                LADDER[(attempts - 1).min(LADDER.len() - 1)]
            } else {
                RecoveryRung::First
            };
            let stats = build_stats(&last, warm, rung, false);
            Err((stats, e))
        }
    };

    match outcome {
        Ok(out) => {
            crate::chaos::record_outcome(
                injected,
                Some(out.stats.rung.index()),
                out.stats.degraded,
                false,
            );
            if stats_enabled() {
                print_stats(&out.stats, "ok");
            }
            Ok(out)
        }
        Err((stats, e)) => {
            crate::chaos::record_outcome(injected, None, false, e == LpError::IterationLimit);
            if stats_enabled() {
                print_stats(&stats, &format!("{e:?}"));
            }
            Err(e)
        }
    }
}

/// One two-phase run, cold or from a hint.
struct Attempt {
    engine: Engine,
    phase1_pivots: usize,
    phase2_pivots: usize,
    outcome: Result<(LpSolution, Basis), LpError>,
}

fn attempt_solve(
    problem: &LpProblem,
    overlay: Option<&BoundsOverlay>,
    hint: Option<&Basis>,
    cfg: EngineCfg,
) -> (Attempt, WarmStatus) {
    let mut engine = Engine::new(problem, overlay, cfg);
    let mut warm = WarmStatus::None;
    if let Some(hint) = hint {
        warm = match engine.try_warm_start(hint) {
            WarmInstall::Ready => WarmStatus::Hit,
            WarmInstall::NeedsRepair => match engine.repair_bounds() {
                Ok(true) => WarmStatus::Hit,
                // Repair failed (positive residual or numerical trouble):
                // rebuild a fresh engine so the cold path starts from the
                // canonical unit basis with truthful pivot counters. An
                // armed chaos fault the repair already consumed stays
                // consumed (its strike was absorbed by the repair).
                _ => {
                    let mut fresh = cfg;
                    fresh.chaos = engine.chaos;
                    engine = Engine::new(problem, overlay, fresh);
                    WarmStatus::Miss
                }
            },
            WarmInstall::Rejected => WarmStatus::Miss,
        };
    }
    let mut phase1_pivots = 0;
    let mut degraded = false;
    let outcome = (|| {
        if warm != WarmStatus::Hit {
            let phase1 = engine.phase1();
            // Read the pivot counter before propagating a phase-1 error:
            // the split must stay truthful for infeasible/budget-exhausted
            // solves too (includes the artificial drive-out pivots).
            phase1_pivots = engine.pivots;
            phase1?;
        } else {
            // Bound-repair pivots (if any) belong to the phase-1 bucket.
            phase1_pivots = engine.pivots;
        }
        match engine.phase2(problem) {
            Ok(_) => {}
            Err(LpError::IterationLimit) if engine.budget_exhausted => {
                // Degradable budgets: phase 2 maintains primal feasibility,
                // so the current vertex is a certified-feasible anytime
                // answer; its objective bounds the optimum from the
                // feasible side. Only trust it if the warm-start proof
                // obligation holds (no artificial/fixed column drifted off
                // zero) — otherwise surface the budget error.
                let (solution, basis) = engine.extract(problem);
                if !engine.bounds_at_zero() {
                    return Err(LpError::IterationLimit);
                }
                degraded = true;
                return Ok((solution, basis));
            }
            Err(e) => return Err(e),
        }
        if problem.has_secondary() {
            match engine.phase3(problem) {
                Ok(_) => {}
                Err(LpError::IterationLimit) if engine.budget_exhausted => {
                    // The primary optimum is certified; only the
                    // canonicalizing secondary ran out of budget. The point
                    // is optimal but not canonical, so still flag it.
                    degraded = true;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(engine.extract(problem))
    })();
    let outcome = match outcome {
        Ok((mut solution, basis)) => {
            if degraded {
                solution.mark_degraded();
            }
            Ok((solution, basis))
        }
        Err(e) => Err(e),
    };
    let phase2_pivots = engine.pivots.saturating_sub(phase1_pivots);
    (
        Attempt {
            engine,
            phase1_pivots,
            phase2_pivots,
            outcome,
        },
        warm,
    )
}

fn print_stats(stats: &SolveStats, status: &str) {
    eprintln!(
        "pm-lp: engine=revised basis={} m={} n={} nnz={} phase1_pivots={} phase2_pivots={} \
         refactorizations={} warm={} elapsed={:.3}s status={status}",
        match stats.basis {
            BasisKind::Eta => "eta",
            BasisKind::Lu => "lu",
        },
        stats.m,
        stats.n,
        stats.nnz,
        stats.phase1_pivots,
        stats.phase2_pivots,
        stats.refactorizations,
        match stats.warm {
            WarmStatus::None => "none",
            WarmStatus::Hit => "hit",
            WarmStatus::Miss => "miss",
        },
        stats.wall_s,
    );
    if stats.attempts > 1 || stats.degraded {
        eprintln!(
            "pm-lp: recovery attempts={} rung={:?} trigger={:?} degraded={}",
            stats.attempts, stats.rung, stats.trigger, stats.degraded,
        );
    }
}

/// Structural signature of a problem: dimensions, objective sense, and the
/// per-row relation + term sparsity pattern (coefficient *values*, RHS
/// magnitudes and the fixed-to-zero variable set are excluded on purpose —
/// a basis is a valid warm-start hint for any problem with the same
/// pattern, and bound/RHS mismatches are settled by the repair phase or a
/// cold fallback). `DefaultHasher` uses fixed keys, so signatures are
/// stable across runs.
fn signature(problem: &LpProblem) -> u64 {
    let mut h = DefaultHasher::new();
    problem.num_vars().hash(&mut h);
    matches!(problem.objective(), Objective::Maximize).hash(&mut h);
    problem.num_constraints().hash(&mut h);
    for c in problem.constraints() {
        // The effective relation and flip decide the slack/artificial
        // layout, so they are part of the structure.
        let flip = c.rhs < 0.0;
        (match effective_relation(c.relation, flip) {
            Relation::Le => 0u8,
            Relation::Ge => 1,
            Relation::Eq => 2,
        })
        .hash(&mut h);
        c.terms.len().hash(&mut h);
        for &(v, _) in &c.terms {
            v.index().hash(&mut h);
        }
    }
    h.finish()
}

thread_local! {
    static ACTIVE_CACHE: RefCell<Option<WarmStartCache>> = const { RefCell::new(None) };
}

/// One cached basis plus its last-touched stamp (for LRU eviction under a
/// capacity bound).
#[derive(Debug)]
struct CacheEntry {
    basis: Basis,
    touched: u64,
}

/// A per-thread cache of optimal bases keyed by problem structure.
///
/// Inside a [`WarmStartCache::scope`], every [`crate::LpProblem::solve`]
/// call routed to the revised engine looks up the basis of the last solve
/// with the same constraint pattern and warm-starts from it; the cache is
/// updated with the new optimal basis afterwards. Sequences of structurally
/// identical solves (e.g. consecutive densities of a Figure-11 sweep, or the
/// iterated broadcast LPs inside the greedy heuristics) then skip most of
/// phase 1.
///
/// By default the cache is *unbounded* — every distinct constraint pattern
/// keeps its basis forever, which is right for one sweep but a slow leak
/// for thousands of long-lived sessions. [`WarmStartCache::with_capacity`]
/// (or [`WarmStartCache::set_capacity`]) bounds the number of retained
/// bases with least-recently-used eviction: every lookup or store touches
/// its entry, and a store that would exceed the bound evicts the
/// longest-untouched pattern first (counted in
/// [`WarmStartCache::evictions`]). Eviction order is deterministic: touch
/// stamps are a simple monotone counter, so two runs of the same solve
/// sequence evict identically.
#[derive(Debug, Default)]
pub struct WarmStartCache {
    map: HashMap<u64, CacheEntry>,
    /// Solves that reused a cached basis.
    pub hits: u64,
    /// Solves that started cold (no cached basis, or the hint was rejected).
    pub misses: u64,
    /// Bases evicted by the LRU bound (always 0 while unbounded).
    pub evictions: u64,
    /// Maximum number of retained bases (`None` = unbounded, the default).
    capacity: Option<usize>,
    /// Monotone touch counter driving the LRU order.
    clock: u64,
}

impl WarmStartCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache retaining at most `capacity` bases (LRU
    /// eviction). A capacity of zero caches nothing: every solve runs cold
    /// and counts a miss.
    pub fn with_capacity(capacity: usize) -> Self {
        WarmStartCache {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Total revised solves performed inside this cache's scopes.
    pub fn solves(&self) -> u64 {
        self.hits + self.misses
    }

    /// The capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of bases currently retained.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no basis.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (Re-)bounds the cache. Shrinking below the current population evicts
    /// least-recently-used entries immediately (counted in
    /// [`WarmStartCache::evictions`]); `None` lifts the bound.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        if let Some(cap) = capacity {
            while self.map.len() > cap {
                self.evict_lru();
            }
        }
    }

    /// Removes the least-recently-touched entry. Stamps are unique (a
    /// monotone counter), so the victim — and with it the whole eviction
    /// sequence — is deterministic.
    fn evict_lru(&mut self) {
        if let Some((&key, _)) = self.map.iter().min_by_key(|(_, e)| e.touched) {
            self.map.remove(&key);
            self.evictions += 1;
        }
    }

    /// The cached basis for `key`, touching its LRU stamp.
    fn lookup(&mut self, key: u64) -> Option<Basis> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&key).map(|entry| {
            entry.touched = clock;
            entry.basis.clone()
        })
    }

    /// Stores (or refreshes) the basis for `key`, evicting the
    /// least-recently-used entry if the capacity bound would be exceeded.
    fn store(&mut self, key: u64, basis: Basis) {
        if self.capacity == Some(0) {
            return;
        }
        self.clock += 1;
        let touched = self.clock;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.basis = basis;
            entry.touched = touched;
            return;
        }
        if let Some(cap) = self.capacity {
            while self.map.len() >= cap {
                self.evict_lru();
            }
        }
        self.map.insert(key, CacheEntry { basis, touched });
    }

    /// Runs `f` with this cache active for [`crate::LpProblem::solve`] calls
    /// on the current thread.
    ///
    /// Scopes nest LIFO: entering a scope while another is active shelves
    /// the outer cache and restores it when the inner scope ends. Besides
    /// deliberate nesting, this keeps a work-stealing scheduler safe — a
    /// thread whose scope blocks in a parallel section may start an
    /// unrelated task that opens its own scope on the same thread, and the
    /// stolen task completes before the blocked section resumes, exactly
    /// the LIFO discipline.
    pub fn scope<R>(&mut self, f: impl FnOnce() -> R) -> R {
        struct Restore<'a> {
            cache: &'a mut WarmStartCache,
            outer: Option<WarmStartCache>,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                ACTIVE_CACHE.with(|slot| {
                    let mut slot = slot.borrow_mut();
                    if let Some(cache) = slot.take() {
                        *self.cache = cache;
                    }
                    *slot = self.outer.take();
                });
            }
        }
        let outer = ACTIVE_CACHE.with(|slot| {
            let mut slot = slot.borrow_mut();
            let outer = slot.take();
            *slot = Some(std::mem::take(self));
            outer
        });
        let restore = Restore { cache: self, outer };
        let result = f();
        drop(restore);
        result
    }
}

/// The `(hits, misses)` counters of the thread's active [`WarmStartCache`]
/// scope, or `None` outside any scope. Callers that need per-phase
/// attribution of scoped solves (e.g. per-heuristic LP accounting in
/// `pm-core`) read the counters before and after a phase and keep the
/// delta.
pub fn scoped_cache_counts() -> Option<(u64, u64)> {
    ACTIVE_CACHE.with(|slot| slot.borrow().as_ref().map(|c| (c.hits, c.misses)))
}

/// Whether a [`WarmStartCache`] scope is active on the current thread.
/// `PM_LP_PRESOLVE=1` routing checks this: presolve changes the constraint
/// pattern, so scoped solves skip it to keep their warm-start signatures
/// stable.
pub(crate) fn scope_active() -> bool {
    ACTIVE_CACHE.with(|slot| slot.borrow().is_some())
}

/// Records a solve that bypassed the warm-start machinery (the dense
/// engine) in the thread's active cache, so `lp_solves` stays an honest
/// count of every LP solved inside the scope regardless of engine.
pub(crate) fn note_scoped_cold_solve() {
    ACTIVE_CACHE.with(|slot| {
        if let Some(cache) = slot.borrow_mut().as_mut() {
            cache.misses += 1;
        }
    });
}

/// The [`crate::LpProblem::solve`] entry point for the revised engine:
/// consults the thread's active [`WarmStartCache`] (if any) around
/// [`solve_with_hint`].
pub(crate) fn solve_scoped(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let key_and_hint = ACTIVE_CACHE.with(|slot| {
        slot.borrow_mut().as_mut().map(|cache| {
            let key = signature(problem);
            let hint = cache.lookup(key);
            (key, hint)
        })
    });
    let Some((key, hint)) = key_and_hint else {
        return solve_with_hint(problem, None).map(|o| o.solution);
    };
    let outcome = solve_with_hint(problem, hint.as_ref());
    ACTIVE_CACHE.with(|slot| {
        if let Some(cache) = slot.borrow_mut().as_mut() {
            match &outcome {
                Ok(o) => {
                    if o.stats.warm == WarmStatus::Hit {
                        cache.hits += 1;
                    } else {
                        cache.misses += 1;
                    }
                    cache.store(key, o.basis.clone());
                }
                Err(_) => cache.misses += 1,
            }
        }
    });
    outcome.map(|o| o.solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LpProblem, Objective, Relation};
    use crate::solver::SolverKind;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    fn sample_lp() -> LpProblem {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6)
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 3.0);
        lp.set_objective_coeff(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        lp
    }

    #[test]
    fn revised_matches_dense_on_the_textbook_lp() {
        let lp = sample_lp();
        let dense = lp.solve_with(SolverKind::Dense).unwrap();
        let revised = lp.solve_with(SolverKind::Revised).unwrap();
        approx(revised.objective, dense.objective);
    }

    /// A degenerate objective (`max x + y` over `x + y ≤ 1`) has every point
    /// of the constraint's facet optimal; the secondary picks one vertex
    /// canonically and keeps the primary objective exact.
    fn tied_face_lp() -> LpProblem {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 1.0);
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.set_secondary_coeff(x, 2.0);
        lp.set_secondary_coeff(y, 1.0);
        lp
    }

    #[test]
    fn secondary_objective_canonicalizes_the_optimal_vertex() {
        // (Engine-pair agreement on the canonical vertex is covered by the
        // serialized `lu_vs_eta` differential binary; flipping the global
        // default basis here would race the parallel lib tests.)
        let lp = tied_face_lp();
        let s = solve_with_hint(&lp, None).unwrap().solution;
        approx(s.objective, 1.0);
        // min 2x + y over the face x + y = 1 lands on (0, 1).
        approx(s.value(VarId(0)), 0.0);
        approx(s.value(VarId(1)), 1.0);
    }

    #[test]
    fn secondary_objective_survives_warm_starts_and_overlays() {
        let lp = tied_face_lp();
        let cold = solve_with_hint(&lp, None).unwrap();
        // Warm re-solve from the canonical basis: same vertex.
        let warm = solve_with_hint(&lp, Some(&cold.basis)).unwrap();
        assert_eq!(warm.stats.warm, WarmStatus::Hit);
        approx(warm.solution.value(VarId(0)), 0.0);
        approx(warm.solution.value(VarId(1)), 1.0);
        // Under an overlay fixing y, the face degenerates to x = 1: the
        // secondary must not block the (now unique) primary optimum.
        let mut overlay = BoundsOverlay::default();
        overlay.fix_zero.push(VarId(1));
        let o = resolve_with_bounds(&lp, &overlay, Some(&cold.basis)).unwrap();
        approx(o.solution.objective, 1.0);
        approx(o.solution.value(VarId(0)), 1.0);
    }

    #[test]
    fn secondary_objective_keeps_dual_certificates() {
        let lp = tied_face_lp();
        let s = solve_with_hint(&lp, None).unwrap().solution;
        // Strong duality against the primary: y·rhs = 1·1 = objective.
        let dual: f64 = s
            .duals()
            .iter()
            .zip(lp.constraints())
            .map(|(y, c)| y * c.rhs)
            .sum();
        approx(dual, s.objective);
    }

    #[test]
    fn phase1_paths_agree_with_dense() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> 23
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 2.0);
        lp.set_objective_coeff(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Ge, 3.0);
        let s = lp.solve_with(SolverKind::Revised).unwrap();
        approx(s.objective, 23.0);
        approx(s.value(x), 7.0);
        approx(s.value(y), 3.0);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve_with(SolverKind::Revised), Err(LpError::Infeasible));

        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, 5.0);
        assert_eq!(lp.solve_with(SolverKind::Revised), Err(LpError::Unbounded));
    }

    #[test]
    fn warm_start_skips_phase1_on_identical_problem() {
        // An LP with Ge rows so a cold solve needs phase 1.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 2.0);
        lp.set_objective_coeff(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let cold = solve_with_hint(&lp, None).unwrap();
        assert!(cold.stats.phase1_pivots > 0);
        assert_eq!(cold.stats.warm, WarmStatus::None);
        let warm = solve_with_hint(&lp, Some(&cold.basis)).unwrap();
        assert_eq!(warm.stats.warm, WarmStatus::Hit);
        assert_eq!(warm.stats.phase1_pivots, 0);
        approx(warm.solution.objective, cold.solution.objective);
    }

    #[test]
    fn warm_start_with_wrong_shape_is_rejected() {
        let lp = sample_lp();
        let bogus = Basis { cols: vec![0] };
        let out = solve_with_hint(&lp, Some(&bogus)).unwrap();
        assert_eq!(out.stats.warm, WarmStatus::Miss);
        approx(out.solution.objective, 36.0);
    }

    #[test]
    fn warm_start_with_changed_costs_still_reoptimizes() {
        let lp = sample_lp();
        let first = solve_with_hint(&lp, None).unwrap();
        // Same structure, different objective: the old basis is feasible
        // (structure and RHS unchanged) and phase 2 must re-optimize.
        let mut flipped = lp.clone();
        let x = VarId(0);
        let y = VarId(1);
        flipped.set_objective_coeff(x, 10.0);
        flipped.set_objective_coeff(y, 1.0);
        let warm = solve_with_hint(&flipped, Some(&first.basis)).unwrap();
        assert_eq!(warm.stats.warm, WarmStatus::Hit);
        let dense = flipped.solve_with(SolverKind::Dense).unwrap();
        approx(warm.solution.objective, dense.objective);
    }

    #[test]
    fn cache_scope_hits_on_repeated_patterns() {
        let lp = sample_lp();
        let mut cache = WarmStartCache::new();
        cache.scope(|| {
            for _ in 0..3 {
                let s = lp.solve_with(SolverKind::Revised).unwrap();
                approx(s.objective, 36.0);
            }
        });
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.solves(), 3);
    }

    #[test]
    fn cache_scope_restores_on_exit() {
        let mut cache = WarmStartCache::new();
        cache.scope(|| {
            sample_lp().solve().unwrap();
        });
        // Outside the scope solves do not touch the cache.
        sample_lp().solve().unwrap();
        assert_eq!(cache.solves(), 1);
    }

    #[test]
    fn cache_scopes_nest_lifo() {
        let mut outer = WarmStartCache::new();
        let mut inner = WarmStartCache::new();
        outer.scope(|| {
            sample_lp().solve().unwrap();
            inner.scope(|| {
                sample_lp().solve().unwrap();
                sample_lp().solve().unwrap();
            });
            // The outer cache is active again (and its map still warm).
            sample_lp().solve().unwrap();
        });
        assert_eq!(inner.solves(), 2);
        assert_eq!(outer.solves(), 2);
        assert_eq!(outer.hits, 1);
    }

    /// A family of structurally distinct LPs: `max x  s.t.  x <= 1` padded
    /// with `k` extra constrained variables, so each `k` has its own
    /// warm-start signature.
    fn patterned_lp(k: usize) -> LpProblem {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        for i in 0..k {
            let y = lp.add_var(&format!("y{i}"));
            lp.add_constraint(vec![(y, 1.0)], Relation::Le, 1.0);
        }
        lp
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used_patterns() {
        let mut cache = WarmStartCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        cache.scope(|| {
            // Three distinct patterns through a 2-slot cache: storing the
            // third evicts the first (least recently touched).
            patterned_lp(0).solve().unwrap();
            patterned_lp(1).solve().unwrap();
            patterned_lp(2).solve().unwrap();
        });
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 1);
        assert_eq!(cache.misses, 3);
        cache.scope(|| {
            // Patterns 1 and 2 survived; 0 was evicted and runs cold again.
            patterned_lp(1).solve().unwrap();
            patterned_lp(2).solve().unwrap();
            patterned_lp(0).solve().unwrap();
        });
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.misses, 4);
        // Re-inserting pattern 0 evicted pattern 1 (LRU after the touches).
        assert_eq!(cache.evictions, 2);
        cache.scope(|| {
            patterned_lp(2).solve().unwrap();
            patterned_lp(0).solve().unwrap();
        });
        assert_eq!(cache.hits, 4);
    }

    #[test]
    fn lookups_refresh_the_lru_order() {
        let mut cache = WarmStartCache::with_capacity(2);
        cache.scope(|| {
            patterned_lp(0).solve().unwrap();
            patterned_lp(1).solve().unwrap();
            // Touch 0 so 1 becomes the LRU victim of the next store.
            patterned_lp(0).solve().unwrap();
            patterned_lp(2).solve().unwrap();
            // 0 stayed cached, 1 was evicted.
            patterned_lp(0).solve().unwrap();
        });
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.evictions, 1);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately_and_zero_caches_nothing() {
        let mut cache = WarmStartCache::new();
        cache.scope(|| {
            for k in 0..4 {
                patterned_lp(k).solve().unwrap();
            }
        });
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions, 0);
        cache.set_capacity(Some(1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions, 3);
        cache.set_capacity(None);
        assert_eq!(cache.capacity(), None);

        let mut none = WarmStartCache::with_capacity(0);
        none.scope(|| {
            patterned_lp(0).solve().unwrap();
            patterned_lp(0).solve().unwrap();
        });
        assert!(none.is_empty());
        assert_eq!(none.misses, 2);
        assert_eq!(none.hits, 0);
    }

    #[test]
    fn redundant_equalities_keep_artificial_marker_and_warm_start() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Eq, 1.0);
        let cold = solve_with_hint(&lp, None).unwrap();
        approx(cold.solution.objective, 1.0);
        assert!(cold.basis.columns().contains(&Basis::REDUNDANT));
        let warm = solve_with_hint(&lp, Some(&cold.basis)).unwrap();
        assert_eq!(warm.stats.warm, WarmStatus::Hit);
        approx(warm.solution.objective, 1.0);
    }

    #[test]
    fn beale_example_terminates_on_revised_engine() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x1 = lp.add_var("x1");
        let x2 = lp.add_var("x2");
        let x3 = lp.add_var("x3");
        let x4 = lp.add_var("x4");
        lp.set_objective_coeff(x1, -0.75);
        lp.set_objective_coeff(x2, 150.0);
        lp.set_objective_coeff(x3, -0.02);
        lp.set_objective_coeff(x4, 6.0);
        lp.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(vec![(x3, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve_with(SolverKind::Revised).unwrap();
        approx(sol.objective, -0.05);
    }

    #[test]
    fn adversarial_redundant_hints_never_corrupt_results() {
        // Corrupt warm-start hints by marking arbitrary rows REDUNDANT (so
        // their artificial re-enters the basis): whatever the hint claims,
        // a successful solve must return a feasible point with the dense
        // oracle's objective — the post-phase-2 artificial check falls back
        // to a cold solve whenever a re-entered artificial drifts off zero.
        let mut rng_state = 0x1234_5678_9abc_def0u64;
        for case in 0..40u64 {
            let mut lp = LpProblem::new(if case % 2 == 0 {
                Objective::Maximize
            } else {
                Objective::Minimize
            });
            let n = 2 + (case as usize % 3);
            let vars: Vec<VarId> = (0..n).map(|i| lp.add_var(&format!("x{i}"))).collect();
            for &v in &vars {
                let c = (splitmix64(&mut rng_state) % 7) as f64 - 3.0;
                lp.set_objective_coeff(v, c);
                lp.add_constraint(vec![(v, 1.0)], Relation::Le, 4.0);
            }
            let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(terms.clone(), Relation::Eq, 3.0);
            lp.add_constraint(terms, Relation::Eq, 3.0); // redundant duplicate
            let dense = lp.solve_with(SolverKind::Dense).unwrap();
            let cold = solve_with_hint(&lp, None).unwrap();
            // Corrupt: mark a pseudo-random subset of rows REDUNDANT.
            let mut cols = cold.basis.columns().to_vec();
            for c in cols.iter_mut() {
                if splitmix64(&mut rng_state).is_multiple_of(3) {
                    *c = Basis::REDUNDANT;
                }
            }
            let hint = Basis { cols };
            let warm = solve_with_hint(&lp, Some(&hint)).unwrap();
            assert!(
                (warm.solution.objective - dense.objective).abs() <= 1e-6,
                "case {case}: corrupted hint changed the objective: {} vs {}",
                warm.solution.objective,
                dense.objective
            );
            assert!(
                lp.is_feasible(warm.solution.values(), 1e-6),
                "case {case}: corrupted hint produced an infeasible point"
            );
        }
    }

    #[test]
    fn fixed_vars_are_held_at_zero_by_both_engines() {
        // max 3x + 5y, same constraints as `sample_lp`: with y fixed to
        // zero the optimum moves to x = 4 (objective 12).
        let mut lp = sample_lp();
        lp.fix_var(VarId(1));
        for kind in [SolverKind::Revised, SolverKind::Dense] {
            let s = lp.solve_with(kind).unwrap();
            approx(s.objective, 12.0);
            approx(s.value(VarId(0)), 4.0);
            approx(s.value(VarId(1)), 0.0);
        }
        lp.unfix_var(VarId(1));
        approx(lp.solve().unwrap().objective, 36.0);
    }

    #[test]
    fn overlay_fixes_without_mutating_the_problem() {
        let lp = sample_lp();
        let overlay = BoundsOverlay {
            fix_zero: vec![VarId(1)],
            rhs: vec![],
        };
        let out = resolve_with_bounds(&lp, &overlay, None).unwrap();
        approx(out.solution.objective, 12.0);
        approx(out.solution.value(VarId(1)), 0.0);
        // The template itself is untouched.
        assert!(!lp.is_fixed(VarId(1)));
        approx(lp.solve().unwrap().objective, 36.0);
    }

    #[test]
    fn repair_path_recovers_a_basis_with_a_newly_fixed_column() {
        // Solve unmasked: y = 6 is basic in the optimal basis. Re-solving
        // with y fixed to zero from that basis must go through the bound
        // repair (or a cold fallback) and still land on the dense oracle's
        // masked optimum.
        let lp = sample_lp();
        let cold = solve_with_hint(&lp, None).unwrap();
        approx(cold.solution.objective, 36.0);
        let overlay = BoundsOverlay {
            fix_zero: vec![VarId(1)],
            rhs: vec![],
        };
        let warm = resolve_with_bounds(&lp, &overlay, Some(&cold.basis)).unwrap();
        approx(warm.solution.objective, 12.0);
        approx(warm.solution.value(VarId(1)), 0.0);
        // And back: the masked basis warm-starts the unmasked problem.
        let back = solve_with_hint(&lp, Some(&warm.basis)).unwrap();
        approx(back.solution.objective, 36.0);
    }

    #[test]
    fn rhs_overrides_resolve_with_the_same_pattern() {
        // min x + y s.t. x + y >= d, x >= 1: warm-startable across d.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 1.0);
        lp.set_objective_coeff(y, 1.0);
        let demand = lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        let first = solve_with_hint(&lp, None).unwrap();
        approx(first.solution.objective, 10.0);
        for d in [4.0, 7.5, 0.0] {
            let overlay = BoundsOverlay {
                fix_zero: vec![],
                rhs: vec![(demand, d)],
            };
            let out = resolve_with_bounds(&lp, &overlay, Some(&first.basis)).unwrap();
            approx(out.solution.objective, d.max(1.0));
            // The in-place API agrees.
            let mut inplace = lp.clone();
            inplace.set_rhs(demand, d);
            approx(inplace.solve().unwrap().objective, d.max(1.0));
        }
    }

    #[test]
    fn fixing_every_path_makes_the_lp_infeasible_not_wrong() {
        // x must be >= 2 but is fixed at zero: infeasible from both the
        // cold path and the warm repair path.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let cold = solve_with_hint(&lp, None).unwrap();
        let overlay = BoundsOverlay {
            fix_zero: vec![x],
            rhs: vec![],
        };
        assert_eq!(
            resolve_with_bounds(&lp, &overlay, Some(&cold.basis)).unwrap_err(),
            LpError::Infeasible
        );
        assert_eq!(
            resolve_with_bounds(&lp, &overlay, None).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn signature_ignores_fixed_marks() {
        let a = sample_lp();
        let mut b = sample_lp();
        b.fix_var(VarId(0));
        assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn signature_ignores_values_but_not_structure() {
        let a = sample_lp();
        let mut b = sample_lp();
        b.set_objective_coeff(VarId(0), 7.0);
        assert_eq!(signature(&a), signature(&b));
        let mut c = sample_lp();
        c.add_constraint(vec![(VarId(0), 1.0)], Relation::Le, 100.0);
        assert_ne!(signature(&a), signature(&c));
    }

    /// An LP that needs several phase-2 pivots, so that intermediate pivot
    /// budgets genuinely interrupt phase 2 mid-climb.
    fn climbing_lp() -> LpProblem {
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<VarId> = (0..12).map(|i| lp.add_var(&format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coeff(v, 1.0 + i as f64 * 0.1);
            lp.add_constraint(vec![(v, 1.0)], Relation::Le, 1.0);
        }
        let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(all, Relation::Le, 6.0);
        lp
    }

    #[test]
    fn exhausted_phase2_budget_returns_a_degraded_anytime_point() {
        let lp = climbing_lp();
        let full = solve_with_hint(&lp, None).unwrap();
        assert!(!full.solution.degraded());
        let total = full.stats.phase1_pivots + full.stats.phase2_pivots;
        let mut seen_degraded = false;
        for b in 0..=total {
            match solve_with_hint_budgeted(&lp, None, Some(SolveBudget::pivots(b as u64))) {
                Ok(o) => {
                    assert!(lp.is_feasible(o.solution.values(), 1e-6));
                    assert!(o.solution.objective <= full.solution.objective + 1e-6);
                    if o.solution.degraded() {
                        // A degraded point may even be the optimum (budget
                        // exhausted after the last pivot, before the
                        // certifying pricing pass) — only certification is
                        // lost, feasibility and the bound always hold.
                        seen_degraded = true;
                        assert!(o.stats.degraded);
                    }
                }
                Err(e) => assert_eq!(e, LpError::IterationLimit),
            }
        }
        assert!(
            seen_degraded,
            "no intermediate budget exercised the degraded path"
        );
        // The full budget reproduces the unbudgeted solve bit for bit.
        let exact =
            solve_with_hint_budgeted(&lp, None, Some(SolveBudget::pivots(total as u64))).unwrap();
        assert_eq!(
            exact.solution.objective.to_bits(),
            full.solution.objective.to_bits()
        );
        assert!(!exact.solution.degraded());
    }

    #[test]
    fn refactorization_budgets_cap_and_degrade_too() {
        let lp = climbing_lp();
        let budget = SolveBudget {
            max_pivots: None,
            max_refactorizations: Some(0),
        };
        // Zero refactorizations still allows the initial pivots up to the
        // first forced refactorization; whatever comes back must be a
        // feasible anytime point or a structured error.
        match solve_with_hint_budgeted(&lp, None, Some(budget)) {
            Ok(o) => assert!(lp.is_feasible(o.solution.values(), 1e-6)),
            Err(e) => assert_eq!(e, LpError::IterationLimit),
        }
    }

    #[test]
    fn chaos_singular_fault_recovers_and_reports_the_rung() {
        let lp = climbing_lp();
        let clean = solve_with_hint(&lp, None).unwrap();
        let mut recovered_late = false;
        for seed in 0..200 {
            let cfg = crate::chaos::ChaosConfig::only(ChaosFault::SingularBasis, seed);
            let out = crate::chaos::with_chaos(Some(cfg), || solve_with_hint(&lp, None)).unwrap();
            assert_eq!(
                out.solution.objective.to_bits(),
                clean.solution.objective.to_bits(),
                "seed {seed}: recovery changed the optimum"
            );
            if out.stats.rung > RecoveryRung::First {
                recovered_late = true;
                assert!(out.stats.attempts > 1);
                assert_eq!(out.stats.trigger, Some(RecoveryTrigger::SingularBasis));
            }
        }
        assert!(recovered_late, "no seed in 0..200 struck this solve");
    }
}
