//! Presolve: LP reductions with full primal/dual postsolve recovery.
//!
//! [`presolve`] applies a fixpoint of cheap, provably safe reductions to an
//! [`LpProblem`] and returns a [`Presolved`] handle that solves the reduced
//! problem and maps its solution — values *and* duals — back to the original
//! index space:
//!
//! * **fixed columns** ([`LpProblem::fix_var`]) are eliminated at value 0,
//! * **empty rows** are checked against their relation and dropped (or
//!   reported [`LpError::Infeasible`]),
//! * **singleton rows** are either redundant (dropped with dual 0), forcing
//!   (`a·x ≤ 0` with `a > 0` fixes `x = 0`; `a·x ≥ 0` with `a < 0`
//!   likewise), or solving (`a·x = b` pins `x = b/a` and substitutes it
//!   away),
//! * **implied-free column singletons** (a column appearing in exactly one
//!   equality row whose other coefficients cannot push it negative) are
//!   substituted out together with their row,
//! * **empty columns** with a non-improving objective are fixed at 0
//!   (improving ones are *kept* so the solver itself settles unbounded
//!   versus infeasible).
//!
//! The masked sub-platform templates of `pm-core` generate many of these —
//! every masked-out candidate fixes a batch of columns whose rows then
//! collapse — but note that their skip-variable rows
//! (`Σ in-flow + w = 1`) are deliberately *not* eliminable: `w` is not
//! implied free (the in-flows could exceed 1), which is exactly why the
//! skip-variable trick keeps the constraint pattern stable for warm starts.
//!
//! Presolve is **opt-in** (`PM_LP_PRESOLVE=1` routes
//! [`LpProblem::solve`]/[`LpProblem::solve_with`] through it) and is
//! bypassed inside a [`crate::revised::WarmStartCache`] scope: eliminating
//! rows/columns changes the constraint pattern, which would defeat the
//! structural-signature warm-start reuse those scopes exist for.
//!
//! Dual recovery works in the minimization normal form (`ĉ = sense · c`,
//! `ŷ = sense · y`). Each eliminating action snapshots the objective
//! coefficient and the still-active column/row terms *at elimination time*;
//! replaying the actions in reverse then only ever needs duals that are
//! already known (kept rows first, later eliminations before earlier ones),
//! the same telescoping that makes textbook postsolve exact.

use crate::problem::{LpError, LpProblem, LpSolution, Objective, Relation, VarId};
use crate::solver::SolverKind;

/// Feasibility tolerance for presolve decisions (matches the engines' EPS).
const TOL: f64 = 1e-9;

/// One eliminating reduction, with the snapshots postsolve needs.
#[derive(Debug, Clone)]
enum Action {
    /// Column `col` eliminated at a known value (fixed marks, forced
    /// zeros, solved singleton rows). Pure primal: no dual attached.
    FixCol { col: usize, value: f64 },
    /// Row `row` dropped as redundant (empty, or a never-binding singleton):
    /// its dual is 0.
    DropRow { row: usize },
    /// A forcing singleton row (`a·x ≤ 0, a > 0` or `a·x ≥ 0, a < 0`)
    /// fixed `col` to 0 and supplies the row's dual
    /// `ŷ = clamp(ĉ_x / a)` against the row's sign constraint, where
    /// `ĉ_x` is the snapshot objective coefficient minus the contribution
    /// of the already-recovered duals on `col_terms`.
    ZeroBoundRow {
        row: usize,
        col: usize,
        coeff: f64,
        relation: Relation,
        obj: f64,
        /// `(row, coeff)` of `col` in the rows still active at elimination.
        col_terms: Vec<(usize, f64)>,
    },
    /// A solving singleton row `a·x = b` pinned `col = value` and was
    /// substituted into the remaining rows' RHS. Dual:
    /// `ŷ_row = (ĉ_x − Σ ŷ_i a_i) / a` over the snapshot column.
    SingletonEqRow {
        row: usize,
        col: usize,
        coeff: f64,
        value: f64,
        obj: f64,
        col_terms: Vec<(usize, f64)>,
    },
    /// Implied-free column singleton: `col` appeared only in equality `row`
    /// (coefficient `coeff > 0`, RHS ≥ 0, all other coefficients ≤ 0), so
    /// `col = (rhs − Σ row_terms) / coeff` and `ŷ_row = ĉ_x / coeff`.
    FreeColSingleton {
        row: usize,
        col: usize,
        coeff: f64,
        rhs: f64,
        obj: f64,
        /// `(col, coeff)` of the row's other active terms at elimination.
        row_terms: Vec<(usize, f64)>,
    },
}

/// Reduction counts of a [`presolve`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Constraint rows eliminated.
    pub rows_removed: usize,
    /// Columns eliminated.
    pub cols_removed: usize,
}

/// A presolved problem: the reduced [`LpProblem`] plus everything needed to
/// map a reduced solution back to the original index space.
///
/// ```
/// use pm_lp::problem::{LpProblem, Objective, Relation};
/// use pm_lp::presolve::presolve;
///
/// // min x + 2y  s.t.  x = 3 (singleton eq),  x + y >= 4
/// let mut lp = LpProblem::new(Objective::Minimize);
/// let x = lp.add_var("x");
/// let y = lp.add_var("y");
/// lp.set_objective_coeff(x, 1.0);
/// lp.set_objective_coeff(y, 2.0);
/// lp.add_constraint(vec![(x, 1.0)], Relation::Eq, 3.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
/// let p = presolve(&lp).unwrap();
/// assert!(p.is_reduced());
/// let sol = p.solve().unwrap();
/// assert!((sol.objective - 5.0).abs() < 1e-6); // x = 3, y = 1
/// assert!((sol.value(x) - 3.0).abs() < 1e-6);
/// assert!((sol.value(y) - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Presolved {
    original: LpProblem,
    reduced: LpProblem,
    actions: Vec<Action>,
    /// Original row index of each reduced row.
    kept_rows: Vec<usize>,
    /// Original column index of each reduced column.
    kept_cols: Vec<usize>,
    stats: PresolveStats,
}

/// Mutable working state of the reduction fixpoint.
struct Reducer {
    sense: f64,
    /// Coalesced row terms (duplicate variables summed, zeros dropped);
    /// entries whose row or column has been eliminated are skipped lazily.
    row_terms: Vec<Vec<(usize, f64)>>,
    rel: Vec<Relation>,
    rhs: Vec<f64>,
    /// Objective in minimization normal form, updated by substitutions.
    cmin: Vec<f64>,
    /// Rows containing each column (original pattern, filtered lazily).
    col_rows: Vec<Vec<usize>>,
    row_alive: Vec<bool>,
    col_alive: Vec<bool>,
    /// Active-term counts, maintained eagerly.
    row_count: Vec<usize>,
    col_count: Vec<usize>,
    actions: Vec<Action>,
}

impl Reducer {
    fn new(problem: &LpProblem) -> Reducer {
        let m = problem.num_constraints();
        let n = problem.num_vars();
        let sense = match problem.objective() {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        let mut row_terms: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut rel = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (r, c) in problem.constraints().iter().enumerate() {
            // Coalesce duplicate variables; drop exact zeros.
            let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len());
            for &(v, coeff) in &c.terms {
                match terms.iter_mut().find(|(j, _)| *j == v.index()) {
                    Some(t) => t.1 += coeff,
                    None => terms.push((v.index(), coeff)),
                }
            }
            terms.retain(|&(_, coeff)| coeff != 0.0);
            for &(j, _) in &terms {
                col_rows[j].push(r);
            }
            rel.push(c.relation);
            rhs.push(c.rhs);
            row_terms.push(terms);
        }
        let row_count: Vec<usize> = row_terms.iter().map(Vec::len).collect();
        let col_count: Vec<usize> = col_rows.iter().map(Vec::len).collect();
        let cmin = (0..n)
            .map(|j| sense * problem.objective_coeff(VarId(j)))
            .collect();
        Reducer {
            sense,
            row_terms,
            rel,
            rhs,
            cmin,
            col_rows,
            row_alive: vec![true; m],
            col_alive: vec![true; n],
            row_count,
            col_count,
            actions: Vec::new(),
        }
    }

    /// The single active term of a singleton row.
    fn active_term(&self, r: usize) -> Option<(usize, f64)> {
        self.row_terms[r]
            .iter()
            .copied()
            .find(|&(j, _)| self.col_alive[j])
    }

    /// Snapshot of column `j`'s active cells, excluding row `skip`.
    fn col_snapshot(&self, j: usize, skip: usize) -> Vec<(usize, f64)> {
        self.col_rows[j]
            .iter()
            .filter(|&&r| r != skip && self.row_alive[r])
            .map(|&r| {
                let coeff = self.row_terms[r]
                    .iter()
                    .find(|&&(c, _)| c == j)
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                (r, coeff)
            })
            .filter(|&(_, v)| v != 0.0)
            .collect()
    }

    /// Eliminates column `j` at `value`, updating the RHS of every row it
    /// appears in (bookkeeping only for `value == 0`).
    fn eliminate_col(&mut self, j: usize, value: f64) {
        debug_assert!(self.col_alive[j]);
        self.col_alive[j] = false;
        for ri in 0..self.col_rows[j].len() {
            let r = self.col_rows[j][ri];
            if !self.row_alive[r] {
                continue;
            }
            if value != 0.0 {
                let coeff = self.row_terms[r]
                    .iter()
                    .find(|&&(c, _)| c == j)
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                self.rhs[r] -= coeff * value;
            }
            self.row_count[r] -= 1;
        }
    }

    /// Eliminates row `r`, decrementing the active counts of its columns.
    fn eliminate_row(&mut self, r: usize) {
        debug_assert!(self.row_alive[r]);
        self.row_alive[r] = false;
        for ti in 0..self.row_terms[r].len() {
            let j = self.row_terms[r][ti].0;
            if self.col_alive[j] {
                self.col_count[j] -= 1;
            }
        }
    }

    /// One pass over rows and columns; returns whether anything reduced.
    fn pass(&mut self, fixed: &[bool]) -> Result<bool, LpError> {
        let mut changed = false;

        // Fixed columns first: they seed most of the row collapses on the
        // masked templates.
        for (j, &is_fixed) in fixed.iter().enumerate().take(self.col_alive.len()) {
            if self.col_alive[j] && is_fixed {
                self.eliminate_col(j, 0.0);
                self.actions.push(Action::FixCol { col: j, value: 0.0 });
                changed = true;
            }
        }

        // Rows: empty checks, singleton handling.
        for r in 0..self.row_alive.len() {
            if !self.row_alive[r] {
                continue;
            }
            if self.row_count[r] == 0 {
                let b = self.rhs[r];
                let ok = match self.rel[r] {
                    Relation::Le => b >= -TOL,
                    Relation::Ge => b <= TOL,
                    Relation::Eq => b.abs() <= TOL,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
                self.eliminate_row(r);
                self.actions.push(Action::DropRow { row: r });
                changed = true;
                continue;
            }
            if self.row_count[r] != 1 {
                continue;
            }
            let Some((j, a)) = self.active_term(r) else {
                continue;
            };
            let b = self.rhs[r];
            match self.rel[r] {
                Relation::Le => {
                    if a < 0.0 && b >= -TOL {
                        // a·x ≤ b holds for every x ≥ 0: redundant.
                        self.eliminate_row(r);
                        self.actions.push(Action::DropRow { row: r });
                        changed = true;
                    } else if a > 0.0 && b.abs() <= TOL {
                        // a·x ≤ 0 forces x = 0; the row may carry a dual.
                        let col_terms = self.col_snapshot(j, r);
                        let obj = self.cmin[j];
                        self.eliminate_row(r);
                        self.eliminate_col(j, 0.0);
                        self.actions.push(Action::ZeroBoundRow {
                            row: r,
                            col: j,
                            coeff: a,
                            relation: Relation::Le,
                            obj,
                            col_terms,
                        });
                        changed = true;
                    } else if a > 0.0 && b < -TOL {
                        return Err(LpError::Infeasible);
                    }
                }
                Relation::Ge => {
                    if a > 0.0 && b <= TOL {
                        // a·x ≥ b ≤ 0 holds for every x ≥ 0: redundant.
                        self.eliminate_row(r);
                        self.actions.push(Action::DropRow { row: r });
                        changed = true;
                    } else if a < 0.0 && b.abs() <= TOL {
                        // a·x ≥ 0 with a < 0 forces x = 0.
                        let col_terms = self.col_snapshot(j, r);
                        let obj = self.cmin[j];
                        self.eliminate_row(r);
                        self.eliminate_col(j, 0.0);
                        self.actions.push(Action::ZeroBoundRow {
                            row: r,
                            col: j,
                            coeff: a,
                            relation: Relation::Ge,
                            obj,
                            col_terms,
                        });
                        changed = true;
                    } else if a < 0.0 && b > TOL {
                        return Err(LpError::Infeasible);
                    }
                }
                Relation::Eq => {
                    let v = b / a;
                    if v < -TOL {
                        return Err(LpError::Infeasible);
                    }
                    let v = v.max(0.0);
                    let col_terms = self.col_snapshot(j, r);
                    let obj = self.cmin[j];
                    self.eliminate_row(r);
                    self.eliminate_col(j, v);
                    self.actions.push(Action::SingletonEqRow {
                        row: r,
                        col: j,
                        coeff: a,
                        value: v,
                        obj,
                        col_terms,
                    });
                    changed = true;
                }
            }
        }

        // Columns: empty columns and implied-free column singletons.
        for j in 0..self.col_alive.len() {
            if !self.col_alive[j] {
                continue;
            }
            if self.col_count[j] == 0 {
                if self.cmin[j] >= 0.0 {
                    // Non-improving empty column: optimal at its bound.
                    self.eliminate_col(j, 0.0);
                    self.actions.push(Action::FixCol { col: j, value: 0.0 });
                    changed = true;
                }
                // Improving empty columns stay: the solver must settle
                // unbounded vs infeasible itself.
                continue;
            }
            if self.col_count[j] != 1 {
                continue;
            }
            let Some(&r) = self.col_rows[j].iter().find(|&&r| self.row_alive[r]) else {
                continue;
            };
            if self.rel[r] != Relation::Eq || self.rhs[r] < 0.0 {
                continue;
            }
            let a = self.row_terms[r]
                .iter()
                .find(|&&(c, _)| c == j)
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            if a <= TOL {
                continue;
            }
            // Implied free: with rhs ≥ 0 and every other coefficient ≤ 0,
            // x = (rhs − Σ others) / a is non-negative at every feasible
            // point, so the explicit x ≥ 0 bound is redundant and both the
            // column and the row can be substituted out.
            let others: Vec<(usize, f64)> = self.row_terms[r]
                .iter()
                .copied()
                .filter(|&(c, v)| c != j && self.col_alive[c] && v != 0.0)
                .collect();
            if others.iter().any(|&(_, v)| v > 0.0) {
                continue;
            }
            let obj = self.cmin[j];
            let rhs = self.rhs[r];
            // Substitute into the objective: ĉ_k −= ĉ_j a_k / a.
            for &(k, ak) in &others {
                self.cmin[k] -= obj * ak / a;
            }
            self.eliminate_row(r);
            self.eliminate_col(j, 0.0); // bookkeeping only; value recovered later
            self.actions.push(Action::FreeColSingleton {
                row: r,
                col: j,
                coeff: a,
                rhs,
                obj,
                row_terms: others,
            });
            changed = true;
        }
        Ok(changed)
    }
}

/// Runs the reduction fixpoint on `problem`. Returns
/// [`LpError::Infeasible`] when a reduction proves the problem infeasible
/// outright; otherwise the returned [`Presolved`] solves the reduced
/// problem and recovers the original solution.
pub fn presolve(problem: &LpProblem) -> Result<Presolved, LpError> {
    problem.validate()?;
    let fixed: Vec<bool> = (0..problem.num_vars())
        .map(|j| problem.is_fixed(VarId(j)))
        .collect();
    let mut red = Reducer::new(problem);
    while red.pass(&fixed)? {}

    // Build the reduced problem over the surviving rows/columns.
    let kept_cols: Vec<usize> = (0..problem.num_vars())
        .filter(|&j| red.col_alive[j])
        .collect();
    let kept_rows: Vec<usize> = (0..problem.num_constraints())
        .filter(|&r| red.row_alive[r])
        .collect();
    let mut col_map = vec![usize::MAX; problem.num_vars()];
    for (nj, &j) in kept_cols.iter().enumerate() {
        col_map[j] = nj;
    }
    let mut reduced = LpProblem::new(problem.objective());
    for &j in &kept_cols {
        let id = reduced.add_var(problem.var_name(VarId(j)));
        reduced.set_objective_coeff(id, red.sense * red.cmin[j]);
    }
    for &r in &kept_rows {
        let terms: Vec<(VarId, f64)> = red.row_terms[r]
            .iter()
            .filter(|&&(j, _)| red.col_alive[j])
            .map(|&(j, v)| (VarId(col_map[j]), v))
            .collect();
        reduced.add_constraint(terms, red.rel[r], red.rhs[r]);
    }
    let stats = PresolveStats {
        rows_removed: problem.num_constraints() - kept_rows.len(),
        cols_removed: problem.num_vars() - kept_cols.len(),
    };
    Ok(Presolved {
        original: problem.clone(),
        reduced,
        actions: red.actions,
        kept_rows,
        kept_cols,
        stats,
    })
}

impl Presolved {
    /// The reduced problem (no fixed marks: fixed columns were eliminated).
    pub fn reduced(&self) -> &LpProblem {
        &self.reduced
    }

    /// Reduction counts.
    pub fn stats(&self) -> PresolveStats {
        self.stats
    }

    /// Whether any row or column was eliminated.
    pub fn is_reduced(&self) -> bool {
        self.stats.rows_removed > 0 || self.stats.cols_removed > 0
    }

    /// Solves the reduced problem with the default engine and postsolves.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with(crate::solver::default_solver())
    }

    /// Solves the reduced problem with an explicit engine and postsolves.
    /// Dispatches to the engines directly (not through
    /// [`LpProblem::solve_with`]), so `PM_LP_PRESOLVE=1` cannot recurse.
    pub fn solve_with(&self, solver: SolverKind) -> Result<LpSolution, LpError> {
        let reduced_solution = if self.reduced.num_vars() == 0 {
            // Fully eliminated: nothing to solve (any remaining rows would
            // have been empty and thus dropped or reported infeasible).
            if !self.kept_rows.is_empty() {
                return Err(LpError::InvalidModel(format!(
                    "presolve eliminated every column but kept {} rows",
                    self.kept_rows.len()
                )));
            }
            LpSolution::with_duals(0.0, Vec::new(), Vec::new())
        } else {
            match solver {
                SolverKind::Dense => crate::simplex::solve(&self.reduced)?,
                SolverKind::Revised => {
                    crate::revised::solve_with_hint(&self.reduced, None)?.solution
                }
            }
        };
        self.postsolve(&reduced_solution)
    }

    /// Maps a reduced solution back to the original index space: primal
    /// values always; duals whenever the reduced solution carries them
    /// (the dense oracle reports none — then neither does the postsolved
    /// solution).
    ///
    /// Returns [`LpError::InvalidModel`] when the reduced solution's
    /// dimensions do not match this reduction (a foreign or corrupted
    /// solution), instead of panicking mid-recovery.
    pub fn postsolve(&self, reduced: &LpSolution) -> Result<LpSolution, LpError> {
        if reduced.values().len() != self.kept_cols.len() {
            return Err(LpError::InvalidModel(format!(
                "postsolve dimension mismatch: reduced solution has {} values, \
                 reduction kept {} columns",
                reduced.values().len(),
                self.kept_cols.len()
            )));
        }
        if !reduced.duals().is_empty() && reduced.duals().len() != self.kept_rows.len() {
            return Err(LpError::InvalidModel(format!(
                "postsolve dimension mismatch: reduced solution has {} duals, \
                 reduction kept {} rows",
                reduced.duals().len(),
                self.kept_rows.len()
            )));
        }
        let n = self.original.num_vars();
        let m = self.original.num_constraints();
        let sense = match self.original.objective() {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };

        let mut values = vec![0.0; n];
        for (nj, &j) in self.kept_cols.iter().enumerate() {
            values[j] = reduced.values()[nj];
        }
        let with_duals = !reduced.duals().is_empty() || self.kept_rows.is_empty();
        // Duals in minimization normal form.
        let mut yhat = vec![0.0; m];
        if with_duals {
            for (nr, &r) in self.kept_rows.iter().enumerate() {
                yhat[r] = sense * reduced.duals()[nr];
            }
        }

        // Replay in reverse: each action only needs values/duals recovered
        // by later eliminations or by the reduced solve.
        for action in self.actions.iter().rev() {
            match *action {
                Action::FixCol { col, value } => values[col] = value,
                Action::DropRow { row } => yhat[row] = 0.0,
                Action::ZeroBoundRow {
                    row,
                    col,
                    coeff,
                    relation,
                    obj,
                    ref col_terms,
                } => {
                    values[col] = 0.0;
                    if with_duals {
                        let mut adj = obj;
                        for &(i, a) in col_terms {
                            adj -= yhat[i] * a;
                        }
                        // Dual feasibility for the nonbasic column
                        // (ĉ − ŷa ≥ 0) intersected with the row's sign
                        // constraint (Le: ŷ ≤ 0, Ge: ŷ ≥ 0).
                        yhat[row] = match relation {
                            Relation::Le => (adj / coeff).min(0.0),
                            Relation::Ge => (adj / coeff).max(0.0),
                            Relation::Eq => adj / coeff,
                        };
                    }
                }
                Action::SingletonEqRow {
                    row,
                    col,
                    coeff,
                    value,
                    obj,
                    ref col_terms,
                } => {
                    values[col] = value;
                    if with_duals {
                        let mut adj = obj;
                        for &(i, a) in col_terms {
                            adj -= yhat[i] * a;
                        }
                        yhat[row] = adj / coeff;
                    }
                }
                Action::FreeColSingleton {
                    row,
                    col,
                    coeff,
                    rhs,
                    obj,
                    ref row_terms,
                } => {
                    let mut acc = rhs;
                    for &(k, a) in row_terms {
                        acc -= a * values[k];
                    }
                    values[col] = (acc / coeff).max(0.0);
                    if with_duals {
                        yhat[row] = obj / coeff;
                    }
                }
            }
        }

        let objective = self.original.objective_value_at(&values);
        let duals = if with_duals {
            yhat.iter().map(|&y| sense * y).collect()
        } else {
            Vec::new()
        };
        Ok(LpSolution::with_duals(objective, values, duals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// Checks the postsolved duals: strong duality against the original
    /// RHS plus dual feasibility on every original column at zero.
    fn check_duals(lp: &LpProblem, sol: &LpSolution) {
        let duals = sol.duals();
        assert_eq!(duals.len(), lp.num_constraints());
        let sense = match lp.objective() {
            Objective::Minimize => 1.0,
            Objective::Maximize => -1.0,
        };
        // Strong duality: Σ y_i b_i = objective.
        let dual_obj: f64 = lp
            .constraints()
            .iter()
            .zip(duals)
            .map(|(c, &y)| y * c.rhs)
            .sum();
        approx(dual_obj, sol.objective);
        // Dual feasibility (min space): ĉ_j − Σ ŷ_i a_ij ≥ 0 for columns at
        // zero, = 0 for strictly positive columns. Fixed columns are exempt:
        // their reduced cost may stay negative (they cannot enter).
        for j in 0..lp.num_vars() {
            let v = VarId(j);
            if lp.is_fixed(v) {
                continue;
            }
            let mut rc = sense * lp.objective_coeff(v);
            for (c, &y) in lp.constraints().iter().zip(duals) {
                for &(var, a) in &c.terms {
                    if var == v {
                        rc -= sense * y * a;
                    }
                }
            }
            if sol.value(v) > 1e-6 {
                assert!(
                    rc.abs() < 1e-6,
                    "basic column {j} has nonzero reduced cost {rc}"
                );
            } else {
                assert!(rc > -1e-6, "column {j} has infeasible reduced cost {rc}");
            }
        }
        // Complementary slackness: nonzero dual ⇒ tight row.
        for (c, &y) in lp.constraints().iter().zip(duals) {
            if y.abs() > 1e-6 {
                let lhs: f64 = c.terms.iter().map(|&(v, a)| a * sol.value(v)).sum();
                approx(lhs, c.rhs);
            }
        }
    }

    #[test]
    fn singleton_eq_rows_are_substituted() {
        // min x + 2y  s.t.  x = 3,  x + y >= 4  → x = 3, y = 1, obj 5.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 1.0);
        lp.set_objective_coeff(y, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        let p = presolve(&lp).unwrap();
        assert_eq!(p.stats().rows_removed, 1);
        assert_eq!(p.stats().cols_removed, 1);
        let sol = p.solve().unwrap();
        approx(sol.objective, 5.0);
        approx(sol.value(x), 3.0);
        approx(sol.value(y), 1.0);
        assert!(lp.is_feasible(sol.values(), 1e-6));
        check_duals(&lp, &sol);
        // The direct solve agrees.
        approx(lp.solve().unwrap().objective, 5.0);
    }

    #[test]
    fn fixed_columns_and_collapsed_rows() {
        // max 3x + 5y with y fixed: rows referencing y collapse.
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 3.0);
        lp.set_objective_coeff(y, 5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        lp.fix_var(y);
        let p = presolve(&lp).unwrap();
        assert!(p.is_reduced());
        let sol = p.solve().unwrap();
        approx(sol.objective, 12.0);
        approx(sol.value(x), 4.0);
        approx(sol.value(y), 0.0);
        assert!(lp.is_feasible(sol.values(), 1e-6));
        check_duals(&lp, &sol);
    }

    #[test]
    fn empty_and_redundant_rows_drop_with_zero_duals() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![], Relation::Le, 5.0); // empty, satisfiable
        lp.add_constraint(vec![(x, -2.0)], Relation::Le, 3.0); // redundant
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let p = presolve(&lp).unwrap();
        assert_eq!(p.stats().rows_removed, 2);
        let sol = p.solve().unwrap();
        approx(sol.objective, 2.0);
        check_duals(&lp, &sol);
    }

    #[test]
    fn infeasible_empty_row_is_detected() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 1.0);
        lp.add_constraint(vec![], Relation::Ge, 1.0);
        assert_eq!(presolve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn forcing_singleton_le_fixes_to_zero() {
        // min -x + y  s.t.  2x ≤ 0 (forces x = 0), x + y ≥ 1.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, -1.0);
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 2.0)], Relation::Le, 0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        let p = presolve(&lp).unwrap();
        let sol = p.solve().unwrap();
        approx(sol.objective, 1.0);
        approx(sol.value(x), 0.0);
        approx(sol.value(y), 1.0);
        assert!(lp.is_feasible(sol.values(), 1e-6));
        check_duals(&lp, &sol);
    }

    #[test]
    fn implied_free_column_singleton_is_substituted() {
        // min y + z  s.t.  w − y = 0 is NOT eliminable for w (coeff of y is
        // negative… w = y ≥ 0: eliminable!), plus a demand row.
        // w appears only in the Eq row, coeff 1 > 0, rhs 0 ≥ 0, other
        // coefficient −1 ≤ 0 → substituted out with its row.
        let mut lp = LpProblem::new(Objective::Minimize);
        let w = lp.add_var("w");
        let y = lp.add_var("y");
        lp.set_objective_coeff(w, 3.0);
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(w, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Ge, 2.0);
        let p = presolve(&lp).unwrap();
        assert!(p.is_reduced());
        let sol = p.solve().unwrap();
        // w = y = 2, obj = 3·2 + 1·2 = 8.
        approx(sol.objective, 8.0);
        approx(sol.value(w), 2.0);
        approx(sol.value(y), 2.0);
        assert!(lp.is_feasible(sol.values(), 1e-6));
        check_duals(&lp, &sol);
    }

    #[test]
    fn skip_variable_rows_are_not_eliminated() {
        // The masked-template shape: Σ in-flow + w = 1 with all-positive
        // coefficients. w is NOT implied free (in-flow could exceed 1), so
        // the row must survive presolve untouched.
        let mut lp = LpProblem::new(Objective::Maximize);
        let f1 = lp.add_var("f1");
        let f2 = lp.add_var("f2");
        let w = lp.add_var("w");
        lp.set_objective_coeff(f1, 1.0);
        lp.set_objective_coeff(f2, 1.0);
        lp.add_constraint(vec![(f1, 1.0), (f2, 1.0), (w, 1.0)], Relation::Eq, 1.0);
        lp.add_constraint(vec![(f1, 1.0)], Relation::Le, 0.4);
        lp.add_constraint(vec![(f2, 1.0)], Relation::Le, 0.8);
        let p = presolve(&lp).unwrap();
        assert!(!p.is_reduced());
        let sol = p.solve().unwrap();
        approx(sol.objective, 1.0);
        check_duals(&lp, &sol);
    }

    #[test]
    fn postsolve_matches_direct_solve_with_duals() {
        // A mixed model exercising several reductions at once.
        let mut lp = LpProblem::new(Objective::Maximize);
        let a = lp.add_var("a");
        let b = lp.add_var("b");
        let c = lp.add_var("c");
        let d = lp.add_var("d");
        lp.set_objective_coeff(a, 2.0);
        lp.set_objective_coeff(b, 1.0);
        lp.set_objective_coeff(c, 4.0);
        lp.set_objective_coeff(d, -1.0);
        lp.add_constraint(vec![(a, 1.0)], Relation::Eq, 1.5); // singleton eq
        lp.add_constraint(vec![(d, 1.0)], Relation::Le, 0.0); // forces d = 0
        lp.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 2.0)], Relation::Le, 7.5);
        lp.add_constraint(vec![(b, 1.0), (c, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(d, -3.0)], Relation::Le, 2.0); // redundant
        let direct = lp.solve().unwrap();
        let p = presolve(&lp).unwrap();
        assert!(p.is_reduced());
        let sol = p.solve().unwrap();
        approx(sol.objective, direct.objective);
        assert!(lp.is_feasible(sol.values(), 1e-6));
        check_duals(&lp, &sol);
    }

    #[test]
    fn postsolve_rejects_mismatched_solutions() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective_coeff(x, 1.0);
        lp.set_objective_coeff(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        let p = presolve(&lp).unwrap();
        // A solution shaped for some other problem must be rejected, not
        // replayed into an out-of-bounds index.
        let foreign = LpSolution::with_duals(0.0, vec![0.0; 7], Vec::new());
        assert!(matches!(
            p.postsolve(&foreign),
            Err(LpError::InvalidModel(_))
        ));
        let bad_duals =
            LpSolution::with_duals(0.0, vec![0.0; p.reduced().num_vars()], vec![0.0; 9]);
        assert!(matches!(
            p.postsolve(&bad_duals),
            Err(LpError::InvalidModel(_))
        ));
    }

    #[test]
    fn fully_eliminated_problem_short_circuits() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_var("x");
        lp.set_objective_coeff(x, 5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Eq, 2.0);
        let p = presolve(&lp).unwrap();
        assert_eq!(p.reduced().num_vars(), 0);
        let sol = p.solve().unwrap();
        approx(sol.objective, 10.0);
        approx(sol.value(x), 2.0);
        check_duals(&lp, &sol);
    }
}
